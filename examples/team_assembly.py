"""Team assembly — the paper's second motivating scenario.

A project manager needs a consortium covering a set of skills, with the
partners close to the manager's office and close to one another so the
project can meet in person.  Objects are specialists with skills as
keywords; CoSKQ with the Dia cost bounds the farthest trip anyone (the
manager included) must make.

This example also demonstrates the extension costs: MinMax for a team
with a fast first responder, and the unified cost function instantiated
directly.

Run with::

    python examples/team_assembly.py
"""

import random

from repro import (
    Dataset,
    DiaExact,
    Query,
    SearchContext,
    UnifiedAppro,
    UnifiedCost,
    UnifiedExact,
)
from repro.cost.base import Combiner, QueryAggregate

SKILLS = ["backend", "frontend", "ml", "design", "ops", "legal", "sales"]


def build_specialists(count: int, seed: int) -> Dataset:
    rng = random.Random(seed)
    records = []
    for _ in range(count):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        skills = rng.sample(SKILLS, rng.randint(1, 3))
        records.append((x, y, skills))
    return Dataset.from_records(records, name="specialists")


def main() -> None:
    dataset = build_specialists(400, seed=7)
    context = SearchContext(dataset)
    office = (50.0, 50.0)
    needed = ["backend", "ml", "design", "legal"]
    query = Query.from_words(office[0], office[1], needed, dataset.vocabulary)
    print("office at %s; skills needed: %s\n" % (office, needed))

    def show(title, result):
        print(title)
        for person in result.objects:
            skills = sorted(dataset.vocabulary.word_of(k) for k in person.keywords)
            print(
                "  specialist #%d at (%.0f, %.0f): %s"
                % (person.oid, person.location.x, person.location.y, ", ".join(skills))
            )
        print("  cost = %.2f km\n" % result.cost)

    # Dia: nobody (manager included) travels farther than the cost.
    show("tight consortium (Dia, exact):", DiaExact(context).solve(query))

    # MinMax via the unified machinery: one partner very close to the
    # office (first point of contact) + a compact team.
    minmax = UnifiedCost(0.5, QueryAggregate.MIN, Combiner.ADD)
    show(
        "first-responder consortium (MinMax, exact):",
        UnifiedExact(context, minmax).solve(query),
    )

    # The same cost served by the one-size-fits-all approximation.
    minmax2 = UnifiedCost(0.5, QueryAggregate.MIN, Combiner.MAX)
    show(
        "balanced consortium (MinMax2, unified approximation):",
        UnifiedAppro(context, minmax2).solve(query),
    )


if __name__ == "__main__":
    main()
