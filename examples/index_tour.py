"""A tour of the spatial-textual index substrate.

Shows the building blocks the CoSKQ algorithms run on: the R-tree, the
IR-tree with keyword-aware pruning, keyword nearest neighbors, the
nearest-neighbor set N(q) and region queries — and measures how much
keyword summaries prune versus a linear scan.

Run with::

    python examples/index_tour.py
"""

import time

from repro import (
    Circle,
    IRTree,
    LinearScanIndex,
    Point,
    Query,
    RTree,
    gn_like,
)


def main() -> None:
    dataset = gn_like(scale=0.003, seed=1)  # ~5.6k objects
    print("dataset:", dataset)

    # Plain R-tree over the locations.
    rtree = RTree.bulk_load([(o.location, o.oid) for o in dataset])
    print("r-tree: %d entries, height %d" % (len(rtree), rtree.height()))
    here = Point(500.0, 500.0)
    nearest5 = rtree.nearest(here, k=5)
    print("5 nearest objects to (500, 500):", [oid for _, oid in nearest5])
    in_range = rtree.range_search(Circle(here, 25.0))
    print("objects within 25 units: %d" % len(in_range))

    # IR-tree: the keyword-aware version the paper uses.
    irtree = IRTree.build(dataset)
    keyword = dataset.keywords_by_frequency()[10]
    word = dataset.vocabulary.word_of(keyword)
    hit = irtree.keyword_nn(here, keyword)
    assert hit is not None
    print(
        "\nnearest object containing %r: #%d at distance %.2f"
        % (word, hit[1].oid, hit[0])
    )

    # N(q): one nearest carrier per query keyword — the seed of every
    # CoSKQ algorithm and the source of the d_f bound.
    frequent = dataset.keywords_by_frequency()[:4]
    query = Query(here, frozenset(frequent))
    nn_set = irtree.nearest_neighbor_set(query)
    d_f = max(d for d, _ in nn_set.values())
    print("N(q) over %d keywords: d_f = %.2f" % (len(nn_set), d_f))

    # Keyword-filtered region query.
    relevant = irtree.relevant_in_circle(Circle(here, 50.0), query.keywords)
    print("relevant objects within 50 units: %d" % len(relevant))

    # IR-tree vs linear scan on the same query mix.
    linear = LinearScanIndex(dataset)
    rounds = 300
    started = time.perf_counter()
    for i in range(rounds):
        irtree.keyword_nn(Point(i % 1000, (i * 37) % 1000), keyword)
    tree_time = time.perf_counter() - started
    started = time.perf_counter()
    for i in range(rounds):
        linear.keyword_nn(Point(i % 1000, (i * 37) % 1000), keyword)
    scan_time = time.perf_counter() - started
    print(
        "\nkeyword-NN microbenchmark (%d lookups): ir-tree %.3fs, "
        "linear scan %.3fs (%.1fx)"
        % (rounds, tree_time, scan_time, scan_time / max(tree_time, 1e-9))
    )


if __name__ == "__main__":
    main()
