"""CoSKQ over a road network — the paper's future-work extension.

Distances become shortest paths on a street graph, which changes answers:
an object that looks close on the map can be far by road.  This example
builds a perturbed-grid street network, runs the network solvers, and
contrasts the result with the Euclidean answer on identical objects.

Run with::

    python examples/road_network.py
"""

from repro import MaxSumCost, MaxSumExact, Query, SearchContext
from repro.network import (
    NetworkBnBExact,
    NetworkContext,
    NetworkGreedyAppro,
    NetworkNNSetAlgorithm,
    random_network_dataset,
)


def main() -> None:
    dataset = random_network_dataset(
        rows=15, cols=15, num_objects=250, vocabulary_size=25, seed=11
    )
    network = dataset.network
    print(
        "street network: %d junctions, %d road segments"
        % (len(network), network.edge_count())
    )
    print("objects on the network: %d" % len(dataset))

    context = NetworkContext(dataset)
    query = Query.create(70.0, 70.0, [0, 1, 2, 3])
    query_node = context.query_node(query)
    print(
        "query snapped to junction %d at %s\n"
        % (query_node, network.location(query_node))
    )

    for algorithm in (
        NetworkNNSetAlgorithm(context, MaxSumCost()),
        NetworkGreedyAppro(context, MaxSumCost()),
        NetworkBnBExact(context, MaxSumCost()),
    ):
        result = algorithm.solve(query)
        legs = ", ".join(
            "#%d (%.1f by road)"
            % (
                o.oid,
                network.distance(query_node, dataset.node_of[o.oid]),
            )
            for o in result.objects
        )
        print("%-18s cost=%7.2f  %s" % (algorithm.name, result.cost, legs))

    # Same objects, Euclidean metric — often a different winner.
    euclidean = SearchContext(dataset.as_euclidean_dataset())
    flat = MaxSumExact(euclidean).solve(query)
    print("\neuclidean answer on the same objects: %s (cost %.2f)" % (
        list(flat.object_ids), flat.cost,
    ))
    road = NetworkBnBExact(context, MaxSumCost()).solve(query)
    if set(road.object_ids) != set(flat.object_ids):
        print("→ the road metric changed the optimal set (detours matter).")
    else:
        print("→ same set this time; the road costs are still larger:")
    print(
        "  road cost of the euclidean set: %.2f vs optimal road cost %.2f"
        % (
            context.evaluate(MaxSumCost(), query_node, list(flat.objects)),
            road.cost,
        )
    )


if __name__ == "__main__":
    main()
