"""Gallery: how each cost function shapes the answer set.

Runs every cost in the library over the same query on the same dataset
(using the exact solver dispatched per cost) and prints the selected
sets side by side, so the semantic differences the paper discusses are
visible: MaxSum compacts the set, Dia bounds the worst leg, Sum ignores
pairwise spread, MinMax wants a close first stop.

Run with::

    python examples/cost_function_gallery.py
"""

from repro import (
    SearchContext,
    UnifiedExact,
    cost_by_name,
    uniform_dataset,
)
from repro.data.queries import generate_queries


def main() -> None:
    dataset = uniform_dataset(1500, 40, mean_keywords=3.0, seed=13)
    context = SearchContext(dataset)
    query = generate_queries(dataset, 5, 1, seed=14)[0]
    words = sorted(dataset.vocabulary.word_of(k) for k in query.keywords)
    print(
        "query at (%.0f, %.0f) for %s\n"
        % (query.location.x, query.location.y, words)
    )

    print(
        "%-9s %-9s %8s  %s"
        % ("cost", "combiner", "value", "selected objects (id@distance)")
    )
    for name in ("maxsum", "dia", "sum", "summax", "minmax", "minmax2", "max"):
        cost = cost_by_name(name)
        result = UnifiedExact(context, cost).solve(query)
        members = " ".join(
            "%d@%.0f" % (o.oid, query.location.distance_to(o.location))
            for o in result.objects
        )
        print(
            "%-9s %-9s %8.2f  %s"
            % (name, cost.combiner.value, result.cost, members)
        )

    print(
        "\nreading guide: 'sum' minimizes total travel and may scatter;"
        "\n'maxsum'/'dia' pull the set together; 'minmax*' admit a close"
        "\nfirst stop while keeping the group compact."
    )


if __name__ == "__main__":
    main()
