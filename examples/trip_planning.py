"""Trip planning — the paper's motivating scenario.

A tourist at their hotel wants one set of nearby POIs that together offer
sight-seeing, shopping and dining.  The MaxSum cost keeps the whole set
close to the hotel *and* mutually close (one walkable excursion); the Dia
cost additionally treats the hotel itself as part of the tour and bounds
the worst leg.

Run with::

    python examples/trip_planning.py
"""

from repro import (
    Dataset,
    DiaExact,
    MaxSumAppro,
    MaxSumExact,
    Query,
    SearchContext,
    SumGreedy,
)

# A hand-crafted downtown: coordinates are in hundreds of meters.
POIS = [
    # (x, y, amenities)
    (1.0, 1.0, ["museum", "cafe"]),
    (1.2, 0.8, ["shopping"]),
    (0.9, 1.3, ["restaurant"]),
    (5.0, 5.0, ["museum", "shopping", "restaurant"]),  # far mega-mall
    (2.2, 2.4, ["park", "museum"]),
    (2.0, 2.0, ["shopping", "cafe"]),
    (2.4, 2.1, ["restaurant", "bar"]),
    (8.0, 1.0, ["restaurant"]),
    (0.5, 6.5, ["park"]),
    (3.1, 2.8, ["theater", "bar"]),
]


def main() -> None:
    dataset = Dataset.from_records(POIS, name="downtown")
    context = SearchContext(dataset)

    hotel = (1.8, 1.9)  # where the tourist is staying
    wanted = ["museum", "shopping", "restaurant"]
    query = Query.from_words(hotel[0], hotel[1], wanted, dataset.vocabulary)

    print("hotel at %s, looking for %s\n" % (hotel, wanted))
    for algorithm, blurb in (
        (MaxSumExact(context), "optimal single-excursion plan (MaxSum)"),
        (MaxSumAppro(context), "fast 1.375-approximate plan"),
        (DiaExact(context), "optimal worst-leg plan (Dia)"),
        (SumGreedy(context), "cheapest total travel from hotel (Sum, greedy)"),
    ):
        result = algorithm.solve(query)
        print("%s:" % blurb)
        for poi in result.objects:
            words = sorted(dataset.vocabulary.word_of(k) for k in poi.keywords)
            print(
                "  POI #%d at (%.1f, %.1f): %s"
                % (poi.oid, poi.location.x, poi.location.y, ", ".join(words))
            )
        print("  cost = %.3f\n" % result.cost)

    # The far mega-mall covers everything alone but is a bad plan — the
    # collective query prefers the cluster of specialized POIs.
    maxsum = MaxSumExact(context).solve(query)
    assert 3 not in maxsum.object_ids, "mega-mall should lose to the cluster"
    print("note: the single mega-mall (POI #3) loses to the downtown cluster.")


if __name__ == "__main__":
    main()
