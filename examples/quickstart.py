"""Quickstart: build a dataset, index it, run every CoSKQ flavor.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DiaAppro,
    DiaExact,
    ExecutionPolicy,
    FallbackChain,
    MaxSumAppro,
    MaxSumExact,
    Query,
    ResilientExecutor,
    SearchContext,
    hotel_like,
)


def main() -> None:
    # 1. A synthetic stand-in for the paper's Hotel dataset (scale it up
    #    to 1.0 for the full 20,790 objects).
    dataset = hotel_like(scale=0.1, seed=42)
    print("dataset:", dataset)
    print("statistics:", dataset.statistics().as_row())

    # 2. One SearchContext builds and shares the IR-tree + inverted index.
    context = SearchContext(dataset)

    # 3. A query: a location plus keywords to cover collectively.
    #    Keywords here are drawn from the generated vocabulary; with your
    #    own data you would use the real words.
    frequent = dataset.keywords_by_frequency()[:3]
    words = [dataset.vocabulary.word_of(k) for k in frequent]
    query = Query.from_words(500.0, 500.0, words, dataset.vocabulary)
    print("\nquery at (500, 500) for keywords:", words)

    # 4. The paper's four algorithms.
    for algorithm in (
        MaxSumExact(context),
        MaxSumAppro(context),
        DiaExact(context),
        DiaAppro(context),
    ):
        result = algorithm.solve(query)
        members = ", ".join(
            "#%d@(%.0f,%.0f)" % (o.oid, o.location.x, o.location.y)
            for o in result.objects
        )
        print(
            "%-13s cost=%8.3f  objects: %s" % (algorithm.name, result.cost, members)
        )

    # 5. Serving-grade execution: bound the exact search and degrade
    #    gracefully to the approximations when it blows the budget.
    #    (work_budget=25 is deliberately tiny so the degradation shows.)
    chain = FallbackChain.of(context, "maxsum-exact", "maxsum-appro", "nn-set")
    executor = ResilientExecutor(
        chain, ExecutionPolicy(deadline_ms=250.0, work_budget=25)
    )
    result = executor.solve(query)
    print("\nresilient: cost=%.3f" % result.cost)
    print("provenance:", result.provenance.describe())


if __name__ == "__main__":
    main()
