"""Extension: top-k CoSKQ (the k cheapest sets, Cao et al. variation).

Measures how the ranked enumeration scales with k relative to the
single-best search it generalizes.
"""

import pytest

from conftest import queries_for, write_report
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.algorithms.topk import TopKCoSKQ
from repro.bench.report import format_kv_table
from repro.cost.functions import cost_by_name

K_QUERY = 6


@pytest.mark.parametrize("k", [1, 3, 10])
def test_topk_cell(benchmark, hotel_context, hotel_dataset, k):
    algorithm = TopKCoSKQ(hotel_context, cost_by_name("maxsum"), k=k)
    queries = queries_for(hotel_dataset, K_QUERY)

    def unit():
        return [algorithm.solve_topk(q) for q in queries]

    rankings = benchmark.pedantic(unit, rounds=2, iterations=1)
    for ranking, query in zip(rankings, queries):
        assert 1 <= len(ranking) <= k
        costs = [r.cost for r in ranking]
        assert costs == sorted(costs)
        assert all(r.is_feasible_for(query) for r in ranking)


def test_topk_first_matches_exact(benchmark, hotel_context, hotel_dataset):
    queries = queries_for(hotel_dataset, K_QUERY)
    exact = OwnerDrivenExact(hotel_context, cost_by_name("maxsum"))
    optima = [exact.solve(q).cost for q in queries]

    def unit():
        algorithm = TopKCoSKQ(hotel_context, cost_by_name("maxsum"), k=3)
        return [algorithm.solve_topk(q)[0].cost for q in queries]

    firsts = benchmark.pedantic(unit, rounds=1)
    rows = []
    for i, (first, optimum) in enumerate(zip(firsts, optima)):
        assert abs(first - optimum) <= 1e-6 * max(1.0, optimum)
        rows.append({"query": i, "top1_cost": round(first, 4), "exact_cost": round(optimum, 4)})
    write_report("topk", format_kv_table("top-k vs single-best (maxsum)", rows, key="query"))
