"""Extension: the unified cost function served by one algorithm pair.

DESIGN.md §6 artifact: Unified-E (structure-dispatched exact) and
Unified-A (one approximation for every cost) across the seven
interesting unified-cost instantiations.
"""

import pytest

from conftest import BENCH_SCALE, queries_for, run_workload, write_report
from repro.algorithms.unified_appro import UnifiedAppro
from repro.algorithms.unified_exact import UnifiedExact
from repro.bench.experiments import run_experiment
from repro.cost.unified import INTERESTING_SETTINGS, UnifiedCost

K = 3

SETTINGS = {
    (UnifiedCost(a, p1, p2).named_equivalent() or "unnamed"): (a, p1, p2)
    for a, p1, p2 in INTERESTING_SETTINGS
}


@pytest.mark.parametrize("cost_name", sorted(SETTINGS))
@pytest.mark.parametrize("kind", ["exact", "appro"])
def test_unified_cell(benchmark, hotel_context, hotel_dataset, cost_name, kind):
    alpha, phi1, phi2 = SETTINGS[cost_name]
    cost = UnifiedCost(alpha, phi1, phi2)
    if kind == "exact":
        algorithm = UnifiedExact(hotel_context, cost)
    else:
        algorithm = UnifiedAppro(hotel_context, cost)
    queries = queries_for(hotel_dataset, K)
    results = benchmark.pedantic(
        run_workload, args=(algorithm, queries), rounds=2, iterations=1
    )
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


def test_unified_report(benchmark):
    report = benchmark.pedantic(
        run_experiment, args=("unified",), kwargs={"scale": BENCH_SCALE}, rounds=1
    )
    write_report("unified", report)
    assert "appro_ratio_avg" in report
