"""Extension: sensitivity to the query-keyword frequency band.

The paper draws query keywords from the most frequent 40% of the
vocabulary.  This bench sweeps that band: frequent keywords mean many
relevant objects (dense candidate regions, cheap coverage), rare
keywords mean sparse carriers and wider rings.  Useful for judging how
workload construction influences the headline timings.
"""

import pytest

from conftest import queries_for, run_workload, write_report
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.bench.report import SeriesTable
from repro.cost.functions import cost_by_name
from repro.data.queries import generate_queries

K = 6
BANDS = {
    "head-0-20": (0.0, 0.2),
    "paper-0-40": (0.0, 0.4),
    "mid-40-70": (0.4, 0.7),
    "tail-60-95": (0.6, 0.95),
}


@pytest.mark.parametrize("band", list(BANDS))
@pytest.mark.parametrize("kind", ["exact", "appro"])
def test_percentile_cell(benchmark, hotel_context, hotel_dataset, band, kind):
    queries = generate_queries(
        hotel_dataset, K, 3, percentile_range=BANDS[band], seed=11
    )
    if kind == "exact":
        algorithm = OwnerDrivenExact(hotel_context, cost_by_name("maxsum"))
    else:
        algorithm = OwnerRingApproximation(hotel_context, cost_by_name("maxsum"))
    results = benchmark.pedantic(
        run_workload, args=(algorithm, queries), rounds=2, iterations=1
    )
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


def test_percentile_report(benchmark, hotel_context, hotel_dataset):
    def unit():
        table = SeriesTable(
            title="effect of query-keyword frequency band (maxsum, |q.psi|=%d)" % K,
            x_label="band",
            unit="s/query",
        )
        from repro.bench.runner import time_algorithm

        for band, percentiles in BANDS.items():
            queries = generate_queries(
                hotel_dataset, K, 3, percentile_range=percentiles, seed=11
            )
            table.x_values.append(band)
            exact = OwnerDrivenExact(hotel_context, cost_by_name("maxsum"))
            table.add("maxsum-exact", time_algorithm(exact, queries, keep_results=False).mean_time)
            appro = OwnerRingApproximation(hotel_context, cost_by_name("maxsum"))
            appro.name = "maxsum-appro"
            table.add("maxsum-appro", time_algorithm(appro, queries, keep_results=False).mean_time)
        return table.render()

    report = benchmark.pedantic(unit, rounds=1)
    write_report("percentile", report)
    assert "paper-0-40" in report
