"""Table 1: dataset statistics (generation + statistics pass).

Paper artifact: the dataset-statistics table (#objects, #unique words,
#words per dataset).  The benchmark measures generating each synthetic
stand-in and computing its statistics; the report artifact records the
table itself.
"""

import pytest

from conftest import BENCH_SCALE, write_report
from repro.bench.experiments import run_experiment
from repro.data.generators import gn_like, hotel_like, web_like


@pytest.mark.parametrize(
    "factory,scale",
    [
        (hotel_like, BENCH_SCALE.hotel_scale),
        (gn_like, BENCH_SCALE.gn_scale),
        (web_like, BENCH_SCALE.web_scale),
    ],
    ids=["hotel", "gn", "web"],
)
def test_generate_and_stats(benchmark, factory, scale):
    def unit():
        dataset = factory(scale=scale, seed=BENCH_SCALE.seed)
        return dataset.statistics()

    stats = benchmark.pedantic(unit, rounds=3, iterations=1)
    assert stats.num_objects > 0


def test_table1_report(benchmark):
    report = benchmark.pedantic(
        run_experiment, args=("table1",), kwargs={"scale": BENCH_SCALE}, rounds=1
    )
    write_report("table1", report)
    assert "hotel" in report
