"""Figure: scalability — running time vs dataset size |O|.

Paper artifact: the scalability test on synthetic datasets grown from GN
(2M..10M in the paper; bench scale sweeps proportionally smaller sizes
built with the same augmentation recipe).  Benchmarks time exact and
approximate solvers per size; the report artifact records the series.
"""

import pytest

from conftest import BENCH_SCALE, queries_for, run_workload, write_report
from repro.algorithms.base import SearchContext
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.bench.experiments import run_experiment
from repro.cost.functions import cost_by_name
from repro.data.augment import scale_dataset
from repro.data.generators import gn_like

K = 6


@pytest.fixture(scope="module", params=BENCH_SCALE.scalability_sizes)
def sized_context(request):
    base = gn_like(scale=BENCH_SCALE.gn_scale, seed=BENCH_SCALE.seed)
    size = request.param
    if size > len(base):
        dataset = scale_dataset(base, size, seed=BENCH_SCALE.seed)
    else:
        from repro.model.dataset import Dataset

        dataset = Dataset(base.objects[:size], base.vocabulary, name="gn-%d" % size)
    context = SearchContext(dataset)
    context.index
    return dataset, context


@pytest.mark.parametrize("algo", ["maxsum-exact", "maxsum-appro"])
def test_scalability_cell(benchmark, sized_context, algo):
    dataset, context = sized_context
    if algo == "maxsum-exact":
        algorithm = OwnerDrivenExact(context, cost_by_name("maxsum"))
    else:
        algorithm = OwnerRingApproximation(context, cost_by_name("maxsum"))
    queries = queries_for(dataset, K)
    results = benchmark.pedantic(
        run_workload, args=(algorithm, queries), rounds=2, iterations=1
    )
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


def test_scalability_report(benchmark):
    report = benchmark.pedantic(
        run_experiment, args=("scalability",), kwargs={"scale": BENCH_SCALE}, rounds=1
    )
    write_report("scalability", report)
    assert "|O|" in report
