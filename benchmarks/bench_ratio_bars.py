"""Figure: approximation-ratio bar charts (avg/min/max per algorithm).

Paper artifact: the ratio bars comparing MaxSum-Appro / Dia-Appro with
Cao-Appro1 / Cao-Appro2, including the fraction of queries answered
exactly.  The benchmark times a full ratio study; the report artifact
records the bars.
"""

from conftest import BENCH_SCALE, write_report
from repro.bench.experiments import run_experiment


def test_ratio_bars_report(benchmark):
    report = benchmark.pedantic(
        run_experiment, args=("ratio_bars",), kwargs={"scale": BENCH_SCALE}, rounds=1
    )
    write_report("ratio_bars", report)
    assert "optimal_fraction" in report
    assert "maxsum-appro" in report and "dia-appro" in report
