"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*.py`` file regenerates one paper table/figure (DESIGN.md
§5) at *bench scale* — datasets a few thousand objects strong so the
whole suite runs in minutes.  The full paper-shaped sweeps run through
``coskq-bench <id>``; the artifact written by each bench file under
``benchmarks/reports/`` shows the same rows at bench scale.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.algorithms.base import SearchContext
from repro.bench.experiments import Scale
from repro.data.generators import gn_like, hotel_like, web_like
from repro.data.queries import generate_queries

#: Sizing used by every benchmark file.  The keyword sweep reaches 12
#: because that is where the paper's exact-algorithm crossover lives
#: (set-space branch-and-bound explodes, owner-driven search does not).
BENCH_SCALE = Scale(
    hotel_scale=0.25,   # ~5.2k objects
    gn_scale=0.002,     # ~3.7k objects
    web_scale=0.005,    # ~2.9k objects
    queries=3,
    keyword_sweep=(3, 6, 9, 12),
    scalability_sizes=(2_000, 4_000, 6_000),
    okeyword_sweep=(4.0, 8.0),
    seed=7,
)

REPORTS_DIR = pathlib.Path(__file__).resolve().parent / "reports"


def write_report(experiment_id: str, report: str) -> None:
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / ("%s.txt" % experiment_id)).write_text(report + "\n")


@pytest.fixture(scope="session")
def hotel_dataset():
    return hotel_like(scale=BENCH_SCALE.hotel_scale, seed=BENCH_SCALE.seed)


@pytest.fixture(scope="session")
def gn_dataset():
    return gn_like(scale=BENCH_SCALE.gn_scale, seed=BENCH_SCALE.seed)


@pytest.fixture(scope="session")
def web_dataset():
    return web_like(scale=BENCH_SCALE.web_scale, seed=BENCH_SCALE.seed)


@pytest.fixture(scope="session")
def hotel_context(hotel_dataset):
    context = SearchContext(hotel_dataset)
    context.index  # build outside the timed region
    return context


@pytest.fixture(scope="session")
def gn_context(gn_dataset):
    context = SearchContext(gn_dataset)
    context.index
    return context


@pytest.fixture(scope="session")
def web_context(web_dataset):
    context = SearchContext(web_dataset)
    context.index
    return context


def queries_for(dataset, num_keywords: int):
    return generate_queries(
        dataset, num_keywords, BENCH_SCALE.queries, seed=BENCH_SCALE.seed
    )


def run_workload(algorithm, queries):
    """The benchmarked unit: solve a whole small workload."""
    return [algorithm.solve(query) for query in queries]


def cost_sweep_algorithms(context, cost_name: str):
    """The five algorithms of a per-cost paper figure, by report label."""
    from repro.algorithms.cao_appro import CaoAppro1, CaoAppro2
    from repro.algorithms.cao_exact import CaoExact
    from repro.algorithms.owner_appro import OwnerRingApproximation
    from repro.algorithms.owner_exact import OwnerDrivenExact
    from repro.cost.functions import cost_by_name

    appro = OwnerRingApproximation(context, cost_by_name(cost_name))
    appro.name = "%s-appro" % cost_name
    return {
        "%s-exact" % cost_name: OwnerDrivenExact(context, cost_by_name(cost_name)),
        "cao-exact": CaoExact(
            context, cost_by_name(cost_name), max_expansions=500_000
        ),
        "%s-appro" % cost_name: appro,
        "cao-appro1": CaoAppro1(context, cost_by_name(cost_name)),
        "cao-appro2": CaoAppro2(context, cost_by_name(cost_name)),
    }
