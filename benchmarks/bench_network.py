"""Extension: CoSKQ under road-network distance (the paper's future work).

Times the network solver line-up on a perturbed-grid street network and
records how often the road metric changes the optimal set relative to
the Euclidean metric on identical objects.
"""

import pytest

from conftest import write_report
from repro.algorithms.base import SearchContext
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.bench.report import format_kv_table
from repro.cost.functions import cost_by_name
from repro.model.query import Query
from repro.network import (
    NetworkBnBExact,
    NetworkContext,
    NetworkGreedyAppro,
    NetworkNNSetAlgorithm,
    random_network_dataset,
)

QUERIES = [(30.0, 30.0), (70.0, 90.0), (120.0, 40.0)]
KEYWORDS = [0, 1, 2, 3]


@pytest.fixture(scope="module")
def network_setup():
    dataset = random_network_dataset(
        rows=14, cols=14, num_objects=260, vocabulary_size=25, seed=3
    )
    return dataset, NetworkContext(dataset)


@pytest.mark.parametrize(
    "algo_cls",
    [NetworkNNSetAlgorithm, NetworkGreedyAppro, NetworkBnBExact],
    ids=lambda c: c.name,
)
def test_network_solver(benchmark, network_setup, algo_cls):
    dataset, context = network_setup
    algorithm = algo_cls(context, cost_by_name("maxsum"))
    queries = [Query.create(x, y, KEYWORDS) for x, y in QUERIES]

    def unit():
        return [algorithm.solve(q) for q in queries]

    results = benchmark.pedantic(unit, rounds=2, iterations=1)
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


def test_network_vs_euclidean_report(benchmark, network_setup):
    dataset, context = network_setup
    euclidean = SearchContext(dataset.as_euclidean_dataset())
    queries = [Query.create(x, y, KEYWORDS) for x, y in QUERIES]

    def unit():
        rows = []
        for i, query in enumerate(queries):
            road = NetworkBnBExact(context, cost_by_name("maxsum")).solve(query)
            # The network solver measures from the snapped junction, so
            # pose the Euclidean query from that same junction.
            snapped = dataset.network.location(context.query_node(query))
            flat_query = Query(snapped, query.keywords)
            flat = OwnerDrivenExact(euclidean, cost_by_name("maxsum")).solve(flat_query)
            rows.append(
                {
                    "query": i,
                    "road_cost": round(road.cost, 3),
                    "euclidean_cost": round(flat.cost, 3),
                    "same_set": set(road.object_ids) == set(flat.object_ids),
                }
            )
        return rows

    rows = benchmark.pedantic(unit, rounds=1)
    for row in rows:
        # Road distances dominate Euclidean ones, so the optimal road
        # cost can never undercut the optimal Euclidean cost.
        assert row["road_cost"] >= row["euclidean_cost"] - 1e-6
    write_report(
        "network", format_kv_table("road vs euclidean CoSKQ (maxsum)", rows, key="query")
    )
