"""Appro-seeded exact pruning on the adversarial ladder (docs/ADAPTIVE.md).

Times the owner-driven exact search plain and seeded with its appro
counterpart's feasible cost over the same prebuilt ladder index,
asserting bit-identical answers before any timing is trusted, plus the
``adaptive_study`` report artifact.  ``make adaptive-bench`` writes the
same study to ``BENCH_adaptive.json``.
"""

import pytest

from conftest import BENCH_SCALE, write_report
from repro.adaptive import AdaptivePlanner
from repro.adaptive.seeding import compute_seed
from repro.algorithms.base import SearchContext
from repro.algorithms.registry import make_algorithm
from repro.bench.experiments import run_experiment
from repro.data.generators import WORLD_SIZE, ladder_dataset, ladder_keywords
from repro.model.query import Query

K = 9


@pytest.fixture(scope="module")
def ladder_context():
    context = SearchContext(ladder_dataset(seed=BENCH_SCALE.seed))
    context.index  # build outside the timed region
    return context


@pytest.fixture(scope="module")
def ladder_query(ladder_context):
    center = WORLD_SIZE / 2.0
    return Query.create(
        center, center, ladder_keywords(ladder_context.dataset, K)
    )


@pytest.mark.parametrize("mode", ["plain", "seeded"])
def test_exact_by_seeding_mode(benchmark, ladder_context, ladder_query, mode):
    exact = make_algorithm("maxsum-exact", ladder_context)

    def timed():
        if mode == "plain":
            return exact.solve(ladder_query)
        seed = compute_seed(ladder_context, exact.cost, ladder_query)
        return exact.solve(ladder_query, initial_upper_bound=seed.cost)

    result = benchmark.pedantic(timed, rounds=3, iterations=1)
    assert result.is_feasible_for(ladder_query)


def test_planner_end_to_end(benchmark, ladder_context, ladder_query):
    planner = AdaptivePlanner(ladder_context, algorithm="maxsum-exact")
    result = benchmark.pedantic(
        planner.solve, args=(ladder_query,), rounds=3, iterations=1
    )
    assert result.is_feasible_for(ladder_query)


def test_seeding_is_bit_identical(ladder_context, ladder_query):
    exact = make_algorithm("maxsum-exact", ladder_context)
    plain = exact.solve(ladder_query)
    seed = compute_seed(ladder_context, exact.cost, ladder_query)
    seeded = exact.solve(ladder_query, initial_upper_bound=seed.cost)
    assert seeded.cost == plain.cost
    assert sorted(o.oid for o in seeded.objects) == sorted(
        o.oid for o in plain.objects
    )


def test_adaptive_study_report(benchmark):
    report = benchmark.pedantic(
        run_experiment,
        args=("adaptive_study",),
        kwargs={"scale": BENCH_SCALE},
        rounds=1,
    )
    write_report("adaptive_study", report)
    assert "seeded speedup" in report
