"""Ablation: the IR-tree versus a linear scan under the same algorithms.

DESIGN.md §7 artifact: the keyword-aware index is a substrate claim of
the paper — this benchmark quantifies it by running the identical
approximation over both index implementations, plus a keyword-NN
microbenchmark.
"""

import pytest

from conftest import BENCH_SCALE, queries_for, run_workload, write_report
from repro.algorithms.base import SearchContext
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.bench.experiments import run_experiment
from repro.cost.functions import cost_by_name
from repro.geometry.point import Point
from repro.index.irtree import IRTree
from repro.index.neighbors import LinearScanIndex

K = 6


@pytest.mark.parametrize("index_kind", ["ir-tree", "linear-scan"])
def test_appro_with_index(benchmark, hotel_dataset, index_kind):
    index_cls = IRTree if index_kind == "ir-tree" else LinearScanIndex
    context = SearchContext(hotel_dataset, index_cls=index_cls)
    context.index
    algorithm = OwnerRingApproximation(context, cost_by_name("maxsum"))
    queries = queries_for(hotel_dataset, K)
    results = benchmark.pedantic(
        run_workload, args=(algorithm, queries), rounds=2, iterations=1
    )
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


@pytest.mark.parametrize("index_kind", ["ir-tree", "linear-scan"])
def test_keyword_nn_microbenchmark(benchmark, hotel_dataset, index_kind):
    index_cls = IRTree if index_kind == "ir-tree" else LinearScanIndex
    index = index_cls.build(hotel_dataset)
    keyword = hotel_dataset.keywords_by_frequency()[5]

    def lookups():
        hits = 0
        for i in range(50):
            if index.keyword_nn(Point(i * 19.0 % 1000, i * 37.0 % 1000), keyword):
                hits += 1
        return hits

    assert benchmark.pedantic(lookups, rounds=3, iterations=1) == 50


def test_ablation_index_report(benchmark):
    report = benchmark.pedantic(
        run_experiment,
        args=("ablation_index",),
        kwargs={"scale": BENCH_SCALE},
        rounds=1,
    )
    write_report("ablation_index", report)
    assert "ir-tree" in report
