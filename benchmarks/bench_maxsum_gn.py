"""Figure: maxsum cost on the gn-like dataset, vs |q.psi|.

Paper artifact: running time (exact and approximate algorithms) and
approximation ratios for the maxsum cost on gn, swept over the
number of query keywords.  Each benchmark times one (algorithm, |q.psi|)
cell over a small query workload; the report artifact reproduces the
figure's series at bench scale.
"""

import pytest

from conftest import BENCH_SCALE, cost_sweep_algorithms, queries_for, run_workload, write_report
from repro.bench.experiments import run_experiment

ALGORITHMS = ("maxsum-exact", "cao-exact", "maxsum-appro", "cao-appro1", "cao-appro2")


@pytest.mark.parametrize("k", BENCH_SCALE.keyword_sweep)
@pytest.mark.parametrize("name", ALGORITHMS)
def test_maxsum_gn(benchmark, gn_context, gn_dataset, name, k):
    algorithm = cost_sweep_algorithms(gn_context, "maxsum")[name]
    queries = queries_for(gn_dataset, k)
    results = benchmark.pedantic(run_workload, args=(algorithm, queries), rounds=2, iterations=1)
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


def test_maxsum_gn_report(benchmark):
    report = benchmark.pedantic(
        run_experiment, args=("maxsum_gn",), kwargs={"scale": BENCH_SCALE}, rounds=1
    )
    write_report("maxsum_gn", report)
    assert "maxsum-exact" in report and "approximation ratio" in report
