"""Figure: effect of the average number of keywords per object.

Paper-adjacent artifact (the |o.psi| sensitivity experiment of the
follow-up literature, DESIGN.md §5): hold the spatial layout fixed,
densify each object's keyword set, and watch exact search slow while the
approximation stays flat.
"""

import pytest

from conftest import BENCH_SCALE, queries_for, run_workload, write_report
from repro.algorithms.base import SearchContext
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.bench.experiments import run_experiment
from repro.cost.functions import cost_by_name
from repro.data.augment import densify_keywords
from repro.data.generators import hotel_like

K = 6


@pytest.fixture(scope="module", params=BENCH_SCALE.okeyword_sweep)
def densified(request):
    base = hotel_like(scale=BENCH_SCALE.hotel_scale, seed=BENCH_SCALE.seed)
    dataset = densify_keywords(base, request.param, seed=BENCH_SCALE.seed)
    context = SearchContext(dataset)
    context.index
    return dataset, context


@pytest.mark.parametrize("algo", ["maxsum-exact", "maxsum-appro"])
def test_okeywords_cell(benchmark, densified, algo):
    dataset, context = densified
    if algo == "maxsum-exact":
        algorithm = OwnerDrivenExact(context, cost_by_name("maxsum"))
    else:
        algorithm = OwnerRingApproximation(context, cost_by_name("maxsum"))
    queries = queries_for(dataset, K)
    results = benchmark.pedantic(
        run_workload, args=(algorithm, queries), rounds=2, iterations=1
    )
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


def test_okeywords_report(benchmark):
    report = benchmark.pedantic(
        run_experiment, args=("okeywords",), kwargs={"scale": BENCH_SCALE}, rounds=1
    )
    write_report("okeywords", report)
    assert "avg|o.psi|" in report
