"""Ablation: what each pruning component buys the exact search.

DESIGN.md §7 artifact: MaxSum-Exact with the appro seeding, the
candidate lens filter and the d_f ring pruning individually disabled.
The full-pruning variant should be the fastest; dropping everything
should cost the most.
"""

import pytest

from conftest import BENCH_SCALE, queries_for, run_workload, write_report
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.bench.experiments import run_experiment
from repro.cost.functions import cost_by_name

K = 6

VARIANTS = {
    "full-pruning": {},
    "appro-seeded": {"seed_with_appro": True},
    "no-candidate-filter": {"filter_candidates": False},
    "no-ring-pruning": {"ring_pruning": False},
    "no-pruning-at-all": {
        "filter_candidates": False,
        "ring_pruning": False,
    },
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_pruning_variant(benchmark, hotel_context, hotel_dataset, variant):
    algorithm = OwnerDrivenExact(
        hotel_context, cost_by_name("maxsum"), **VARIANTS[variant]
    )
    queries = queries_for(hotel_dataset, K)
    results = benchmark.pedantic(
        run_workload, args=(algorithm, queries), rounds=2, iterations=1
    )
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


def test_variants_agree_on_cost(hotel_context, hotel_dataset, benchmark):
    queries = queries_for(hotel_dataset, K)
    reference = [
        OwnerDrivenExact(hotel_context, cost_by_name("maxsum")).solve(q).cost
        for q in queries
    ]

    def check_all():
        for variant, kwargs in VARIANTS.items():
            algorithm = OwnerDrivenExact(hotel_context, cost_by_name("maxsum"), **kwargs)
            for query, expected in zip(queries, reference):
                got = algorithm.solve(query).cost
                assert abs(got - expected) <= 1e-6 * max(1.0, expected), variant
        return True

    assert benchmark.pedantic(check_all, rounds=1)


def test_ablation_pruning_report(benchmark):
    report = benchmark.pedantic(
        run_experiment,
        args=("ablation_pruning",),
        kwargs={"scale": BENCH_SCALE},
        rounds=1,
    )
    write_report("ablation_pruning", report)
    assert "full-pruning" in report
