"""Meta-benchmark: the macro harness itself, at smoke scale.

Times one end-to-end `run_profile("smoke")` (dataset materialization,
index builds, every workload cell) against a warm dataset cache, plus
the diff gate over the produced summary — the two paths `make
bench-check` takes, so a slowdown here is a slowdown of the perf gate
itself.  The report artifact records the per-workload throughput the
run measured (docs/BENCHMARKS.md).
"""

from __future__ import annotations

import pytest

from conftest import write_report
from repro.bench.macro import diff_summaries, run_profile


@pytest.fixture(scope="module")
def smoke_summary(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("macro_cache")
    summary = run_profile("smoke", cache_dir=cache_dir)
    return cache_dir, summary


def test_macro_smoke_profile(benchmark, smoke_summary):
    cache_dir, _ = smoke_summary  # warm: datasets already materialized
    summary = benchmark.pedantic(
        run_profile, args=("smoke",), kwargs={"cache_dir": cache_dir}, rounds=2
    )
    assert summary["totals"]["workloads"] >= 9
    lines = [
        "%-40s %10.1f qps" % (w["id"], w["throughput_qps"])
        for w in summary["workloads"]
    ]
    write_report("bench_macro", "\n".join(lines))


def test_macro_diff_gate(benchmark, smoke_summary):
    _, summary = smoke_summary
    report = benchmark.pedantic(
        diff_summaries, args=(summary, summary), rounds=5
    )
    assert report.ok
