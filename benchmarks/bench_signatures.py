"""The keyword-signature speedup, measured honestly (docs/PERFORMANCE.md).

Times the owner-driven solvers with the signatures forced off and
forced on over the same prebuilt index and queries, asserting the two
modes return bit-identical answers before any timing is trusted, plus
the ``signatures_study`` report artifact.  ``make signatures-bench``
writes the same study to ``BENCH_signatures.json``.
"""

import pytest

from conftest import BENCH_SCALE, queries_for, run_workload, write_report
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.bench.experiments import run_experiment
from repro.cost.functions import cost_by_name
from repro.index import signatures

K = 9


@pytest.mark.parametrize("mode", ["frozensets", "signatures"])
@pytest.mark.parametrize("cost_name", ["maxsum", "dia"])
def test_owner_exact_by_mode(benchmark, hotel_context, mode, cost_name):
    queries = queries_for(hotel_context.dataset, K)
    algorithm = OwnerDrivenExact(hotel_context, cost_by_name(cost_name))

    def timed():
        signatures.set_enabled(mode == "signatures")
        try:
            return run_workload(algorithm, queries)
        finally:
            signatures.set_enabled(None)

    results = benchmark.pedantic(timed, rounds=3, iterations=1)
    assert all(r.is_feasible_for(q) for r, q in zip(results, queries))


@pytest.mark.parametrize("cost_name", ["maxsum", "dia"])
def test_modes_are_bit_identical(hotel_context, cost_name):
    queries = queries_for(hotel_context.dataset, K)
    algorithm = OwnerDrivenExact(hotel_context, cost_by_name(cost_name))
    outcomes = {}
    for enabled in (False, True):
        signatures.set_enabled(enabled)
        try:
            outcomes[enabled] = [
                (r.cost, tuple(sorted(o.oid for o in r.objects)))
                for r in run_workload(algorithm, queries)
            ]
        finally:
            signatures.set_enabled(None)
    assert outcomes[False] == outcomes[True]


def test_signatures_study_report(benchmark):
    report = benchmark.pedantic(
        run_experiment,
        args=("signatures_study",),
        kwargs={"scale": BENCH_SCALE},
        rounds=1,
    )
    write_report("signatures_study", report)
    assert "bit-identical" in report
