# Convenience targets for the CoSKQ reproduction.

.PHONY: install test lint lint-fast check chaos serve-check parallel-check parallel-bench kernels-check kernels-bench signatures-check signatures-bench shard-check shard-bench adaptive-check adaptive-bench bench bench-reports bench-smoke bench-check figures full-experiments clean

install:
	pip install -e .

test:
	pytest tests/

# Repo-specific static analysis, including the interprocedural dataflow
# pass R10-R12 (docs/STATIC_ANALYSIS.md).  Per-module summaries are
# cached in .coskq_lint_cache.json, so warm runs stay fast.
lint:
	PYTHONPATH=src python -m repro.analysis --strict

# Syntactic rules only (R1-R9): skips the dataflow pass for quick loops.
lint-fast:
	PYTHONPATH=src python -m repro.analysis --no-dataflow

# Everything a PR must keep green: the linter (incl. R6) plus the tier-1 suite.
check: lint
	PYTHONPATH=src python -m pytest -x -q

# The resilience/chaos suite alone (docs/ROBUSTNESS.md).
chaos:
	PYTHONPATH=src python -m pytest -q tests/test_exec_policy.py \
		tests/test_exec_fallback.py tests/test_exec_chaos.py

# The serving gate (docs/SERVING.md): boots the daemon on an ephemeral
# port and drives a mixed clean + chaos load through the real HTTP
# stack — zero 5xx-without-taxonomy, zero infeasible answers, and
# /stats totals reconciling bit-for-bit with the client-side tally.
serve-check:
	PYTHONPATH=src python -m pytest -q tests/test_serve_http.py \
		tests/test_serve_client.py tests/test_serve_chaos.py \
		tests/test_cache_concurrency.py

# The parallel-engine gate: differential + metamorphic + property suites
# (docs/PARALLELISM.md).
parallel-check:
	PYTHONPATH=src python -m pytest -q tests/test_differential_parallel.py \
		tests/test_metamorphic_cache.py tests/test_exec_batch_properties.py \
		tests/test_exec_chaos.py

# Regenerate BENCH_parallel.json (quick-scale parallel_study).
parallel-bench:
	PYTHONPATH=src python -c "import pathlib; \
		from repro.bench import experiments; \
		experiments.PARALLEL_JSON_PATH = pathlib.Path('BENCH_parallel.json'); \
		print(experiments.run_experiment('parallel_study', quick=True))"

# The kernels gate: flat-kernel property suite + the solver differential
# suite proving kernels on/off bit-identity (docs/PERFORMANCE.md).
kernels-check:
	PYTHONPATH=src python -m pytest -q tests/test_kernels_flat.py \
		tests/test_kernels_differential.py

# Regenerate BENCH_kernels.json (quick-scale kernels_study).
kernels-bench:
	PYTHONPATH=src python -c "import pathlib; \
		from repro.bench import experiments; \
		experiments.KERNELS_JSON_PATH = pathlib.Path('BENCH_kernels.json'); \
		print(experiments.run_experiment('kernels_study', quick=True))"

# The signatures gate: mask/set bijection properties, the three-backend
# index parity suite, and the solver differential suite proving
# signatures on/off bit-identity (docs/PERFORMANCE.md).
signatures-check:
	PYTHONPATH=src python -m pytest -q tests/test_signatures.py \
		tests/test_index_parity.py tests/test_signatures_differential.py

# Regenerate BENCH_signatures.json (quick-scale signatures_study).
signatures-bench:
	PYTHONPATH=src python -c "import pathlib; \
		from repro.bench import experiments; \
		experiments.SIGNATURES_JSON_PATH = pathlib.Path('BENCH_signatures.json'); \
		print(experiments.run_experiment('signatures_study', quick=True))"

# The sharding gate: the differential suite proving the scatter-gather
# engine and the ShardedIndex facade bit-identical to a single IR-tree
# for every solver and cost, under per-shard chaos and across threads
# (docs/SHARDING.md).
shard-check:
	PYTHONPATH=src python -m pytest -q tests/test_differential_shard.py \
		tests/test_bench_macro_diff.py

# Regenerate BENCH_shard.json: paired sharded-vs-single cells at
# GN-100k and GN-1M (several minutes; ~80 MB of dataset cache).
shard-bench:
	PYTHONPATH=src python -m repro.tools.macro_cli run --profile shard \
		--out BENCH_shard.json

# The adaptive gate: seeding soundness (seeded == unseeded costs for
# every exact solver, toggles and shards), planner/feature/model units,
# and the CLI surfaces (docs/ADAPTIVE.md).
adaptive-check:
	PYTHONPATH=src python -m pytest -q tests/test_adaptive_seeding.py \
		tests/test_adaptive_planner.py tests/test_adaptive_cli.py

# Regenerate BENCH_adaptive.json (quick-scale adaptive_study: the
# seeded-vs-plain exact ladder plus planner routing).
adaptive-bench:
	PYTHONPATH=src python -c "import pathlib; \
		from repro.bench import experiments; \
		experiments.ADAPTIVE_JSON_PATH = pathlib.Path('BENCH_adaptive.json'); \
		print(experiments.run_experiment('adaptive_study', quick=True))"

bench:
	pytest benchmarks/ --benchmark-only

# Record a macro-benchmark baseline: the pinned smoke profile through
# the whole stack (solvers, kNN, fallback chain, parallel batches, cache
# and toggle ablations), one summary JSON out (docs/BENCHMARKS.md).
bench-smoke:
	PYTHONPATH=src python -m repro.tools.macro_cli run --profile smoke \
		--out bench_macro_smoke.json

# The perf gate: re-run the smoke profile and diff against the recorded
# baseline.  Exit 1 when a latency percentile or throughput regresses
# past the noise threshold; run `make bench-smoke` first to (re)record.
bench-check:
	PYTHONPATH=src python -m repro.tools.macro_cli run --profile smoke \
		--out bench_macro_candidate.json --quiet
	PYTHONPATH=src python -m repro.tools.macro_cli diff \
		bench_macro_smoke.json bench_macro_candidate.json

# Quick-scale paper reports + SVG figures under docs/figures/.
figures:
	coskq-bench all --quick --svg docs/figures

# Full paper-shaped sweeps (an hour-plus; writes to bench_full/).
full-experiments:
	mkdir -p bench_full
	for e in $$(coskq-bench list); do \
		coskq-bench $$e > bench_full/$$e.txt 2>&1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/reports
	find . -name __pycache__ -type d -exec rm -rf {} +
