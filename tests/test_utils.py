"""Tests for the shared numeric and randomness helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import make_rng, substream
from repro.utils.stats import Summary, harmonic_number, percentile, summarize


class TestHarmonicNumber:
    def test_known_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_negative_is_zero(self):
        assert harmonic_number(-5) == 0.0

    @given(st.integers(1, 200))
    def test_close_to_log(self, k):
        # H_k ≈ ln k + γ, within 1/k of it.
        gamma = 0.5772156649
        assert harmonic_number(k) == pytest.approx(math.log(k) + gamma, abs=1.0 / k + 1e-9)


class TestPercentile:
    def test_basic(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 1.0) == 4.0

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 2.0)


class TestSummarize:
    def test_basic(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s == Summary(mean=4.0, minimum=2.0, maximum=6.0, count=3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row(self):
        row = summarize([1.0]).as_row()
        assert row == {"avg": 1.0, "min": 1.0, "max": 1.0, "n": 1}

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
    def test_bounds(self, values):
        s = summarize(values)
        assert s.minimum <= s.mean <= s.maximum
        assert s.count == len(values)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_substreams_independent(self):
        a = substream(1, "spatial").random()
        b = substream(1, "text").random()
        assert a != b

    def test_substreams_deterministic(self):
        assert substream(2, "x").random() == substream(2, "x").random()
