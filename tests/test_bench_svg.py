"""Tests for the stdlib SVG figure renderer."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.bench.report import SeriesTable
from repro.bench.svg import render_bar_chart, render_line_chart


def sample_table(**kwargs):
    table = SeriesTable(title="time vs k", x_label="|q.psi|", unit="s", **kwargs)
    table.x_values = [3, 6, 9]
    table.series = {
        "exact": [0.01, 0.1, 1.0],
        "appro": [0.001, 0.004, 0.02],
    }
    return table


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_xml(self):
        root = parse(render_line_chart(sample_table()))
        assert root.tag.endswith("svg")

    def test_series_names_in_legend(self):
        svg = render_line_chart(sample_table())
        assert "exact" in svg and "appro" in svg

    def test_title_rendered(self):
        assert "time vs k" in render_line_chart(sample_table())

    def test_polylines_present(self):
        svg = render_line_chart(sample_table())
        assert svg.count("<polyline") == 2

    def test_log_scale(self):
        svg = render_line_chart(sample_table(), log_y=True)
        parse(svg)  # still valid
        # Log ticks include powers of ten covering [0.001, 1].
        assert "1e-03" in svg and "0.1" in svg

    def test_nan_leaves_gap(self):
        table = sample_table()
        table.series["dnf"] = [0.5, math.nan, 0.7]
        svg = render_line_chart(table)
        parse(svg)
        assert "nan" not in svg.lower() or "dnf" in svg  # no NaN coordinates
        assert "NaN" not in svg

    def test_empty_table(self):
        table = SeriesTable(title="empty", x_label="x")
        svg = render_line_chart(table)
        assert "no data" in svg

    def test_title_escaped(self):
        table = sample_table()
        table.title = "a < b & c"
        svg = render_line_chart(table)
        parse(svg)
        assert "a &lt; b &amp; c" in svg


class TestBarChart:
    BARS = {
        "maxsum-appro": (1.01, 1.0, 1.05),
        "cao-appro1": (1.4, 1.0, 2.0),
        "cao-appro2": (1.07, 1.0, 1.4),
    }

    def test_valid_xml(self):
        parse(render_bar_chart("ratios", self.BARS))

    def test_all_series_labelled(self):
        svg = render_bar_chart("ratios", self.BARS)
        for name in self.BARS:
            assert name in svg

    def test_bar_and_whisker_counts(self):
        svg = render_bar_chart("ratios", self.BARS)
        assert svg.count("<rect") == 1 + len(self.BARS)  # background + bars
        # Each bar carries one vertical whisker and two caps.
        assert svg.count("<line") >= 3 * len(self.BARS)

    def test_empty_bars(self):
        assert "no data" in render_bar_chart("ratios", {})
