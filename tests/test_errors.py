"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CoSKQError,
    DatasetFormatError,
    InfeasibleQueryError,
    InvalidParameterError,
    UnknownKeywordError,
)


class TestHierarchy:
    def test_all_derive_from_coskq_error(self):
        for exc_type in (
            UnknownKeywordError,
            InfeasibleQueryError,
            DatasetFormatError,
            InvalidParameterError,
        ):
            assert issubclass(exc_type, CoSKQError)

    def test_unknown_keyword_is_key_error(self):
        assert issubclass(UnknownKeywordError, KeyError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(InvalidParameterError, ValueError)


class TestMessages:
    def test_unknown_keyword_message(self):
        err = UnknownKeywordError("pool")
        assert err.keyword == "pool"
        assert "pool" in str(err)

    def test_infeasible_query_records_missing(self):
        err = InfeasibleQueryError([3, 1, 2])
        assert err.missing_keywords == frozenset({1, 2, 3})
        assert "[1, 2, 3]" in str(err)

    def test_catchable_as_base(self):
        with pytest.raises(CoSKQError):
            raise InfeasibleQueryError([1])
