"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceededError,
    CoSKQError,
    DatasetFormatError,
    DeadlineExceededError,
    ExecutionError,
    ExecutionFailedError,
    InfeasibleQueryError,
    InjectedFaultError,
    InvalidParameterError,
    SearchAbortedError,
    UnknownKeywordError,
)


class TestHierarchy:
    def test_all_derive_from_coskq_error(self):
        for exc_type in (
            UnknownKeywordError,
            InfeasibleQueryError,
            DatasetFormatError,
            InvalidParameterError,
            ExecutionError,
            SearchAbortedError,
            BudgetExceededError,
            DeadlineExceededError,
            InjectedFaultError,
            ExecutionFailedError,
        ):
            assert issubclass(exc_type, CoSKQError)

    def test_execution_taxonomy_nests_under_execution_error(self):
        for exc_type in (
            SearchAbortedError,
            BudgetExceededError,
            DeadlineExceededError,
            InjectedFaultError,
            ExecutionFailedError,
        ):
            assert issubclass(exc_type, ExecutionError)
        for exc_type in (BudgetExceededError, DeadlineExceededError):
            assert issubclass(exc_type, SearchAbortedError)

    def test_taxonomy_never_masquerades_as_runtime_error(self):
        # The robustness contract: callers distinguishing operational
        # aborts from bugs must never have to catch RuntimeError.
        for exc_type in (
            SearchAbortedError,
            BudgetExceededError,
            DeadlineExceededError,
            InjectedFaultError,
            ExecutionFailedError,
        ):
            assert not issubclass(exc_type, RuntimeError)

    def test_unknown_keyword_is_key_error(self):
        assert issubclass(UnknownKeywordError, KeyError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(InvalidParameterError, ValueError)


class TestMessages:
    def test_unknown_keyword_message(self):
        err = UnknownKeywordError("pool")
        assert err.keyword == "pool"
        assert "pool" in str(err)

    def test_infeasible_query_records_missing(self):
        err = InfeasibleQueryError([3, 1, 2])
        assert err.missing_keywords == frozenset({1, 2, 3})
        assert "[1, 2, 3]" in str(err)

    def test_catchable_as_base(self):
        with pytest.raises(CoSKQError):
            raise InfeasibleQueryError([1])


class TestExecutionTaxonomy:
    def test_search_aborted_snapshots_counters(self):
        counters = {"states_expanded": 7}
        err = SearchAbortedError("stopped", counters=counters)
        counters["states_expanded"] = 99  # the snapshot must not alias
        assert err.counters == {"states_expanded": 7}
        assert SearchAbortedError("stopped").counters == {}

    def test_budget_exceeded_records_the_breach(self):
        err = BudgetExceededError(
            "states_expanded", 100, 103, counters={"states_expanded": 103}
        )
        assert err.counter == "states_expanded"
        assert err.limit == 100
        assert err.spent == 103
        assert err.counters == {"states_expanded": 103}
        assert "states_expanded budget exceeded (103 spent, limit 100)" in str(err)

    def test_deadline_exceeded_records_timing(self):
        err = DeadlineExceededError(deadline_ms=50.0, elapsed_ms=61.5)
        assert err.deadline_ms == 50.0
        assert err.elapsed_ms == 61.5
        assert "61.500 ms elapsed" in str(err)
        assert "deadline 50.000 ms" in str(err)

    def test_injected_fault_identifies_the_call(self):
        err = InjectedFaultError("keyword_nn", 17)
        assert err.method == "keyword_nn"
        assert err.call_number == 17
        assert "keyword_nn() (call #17)" in str(err)

    def test_execution_failed_aggregates_causes(self):
        err = ExecutionFailedError(["stage-a: boom", "stage-b: bust"])
        assert len(err.failures) == 2
        assert "all 2 fallback stages failed" in str(err)
        assert "stage-a: boom" in str(err)

    def test_execution_failed_on_empty_chain(self):
        err = ExecutionFailedError([])
        assert err.failures == ()
        assert "empty chain" in str(err)
