"""End-to-end integration tests across the whole stack."""

import pytest

from repro import (
    ALGORITHM_NAMES,
    Dataset,
    DiaAppro,
    DiaExact,
    MaxSumAppro,
    MaxSumExact,
    Query,
    SearchContext,
    cost_by_name,
    generate_queries,
    gn_like,
    make_algorithm,
    scale_dataset,
)


class TestEndToEnd:
    def test_full_pipeline_on_generated_data(self):
        # generate → index → query → validate, across all four paper
        # algorithms, on a mid-sized clustered dataset.
        dataset = gn_like(scale=0.0015, seed=5)  # ~2.8k objects
        context = SearchContext(dataset)
        queries = generate_queries(dataset, 5, 5, seed=6)
        for query in queries:
            exact = MaxSumExact(context).solve(query)
            appro = MaxSumAppro(context).solve(query)
            dia_exact = DiaExact(context).solve(query)
            dia_appro = DiaAppro(context).solve(query)
            for result in (exact, appro, dia_exact, dia_appro):
                assert result.is_feasible_for(query)
                assert len(result) <= query.size
            assert exact.cost <= appro.cost + 1e-9
            assert dia_exact.cost <= dia_appro.cost + 1e-9
            # Dia of a set is never above its MaxSum (max ≤ sum of the
            # unweighted components; with the 0.5-weighted MaxSum this
            # reads max(a, b) ≥ (a + b) / 2).
            assert dia_exact.cost <= 2.0 * exact.cost + 1e-9

    def test_pipeline_survives_dataset_round_trip(self, tmp_path):
        dataset = gn_like(scale=0.001, seed=9)
        path = tmp_path / "gn.tsv"
        dataset.save(path)
        reloaded = Dataset.load(path)
        # Keyword ids permute across a reload, so pose the *same* query
        # by words against both datasets and compare optimal costs.
        words = [
            dataset.vocabulary.word_of(k)
            for k in dataset.keywords_by_frequency()[:4]
        ]
        c1, c2 = SearchContext(dataset), SearchContext(reloaded)
        for x, y in ((100.0, 100.0), (500.0, 500.0), (900.0, 300.0)):
            a = Query.from_words(x, y, words, dataset.vocabulary)
            b = Query.from_words(x, y, words, reloaded.vocabulary)
            ra = MaxSumExact(c1).solve(a)
            rb = MaxSumExact(c2).solve(b)
            assert ra.cost == pytest.approx(rb.cost, rel=1e-9)

    def test_scaled_dataset_still_queryable(self):
        base = gn_like(scale=0.0008, seed=11)
        grown = scale_dataset(base, 2 * len(base), seed=12)
        context = SearchContext(grown)
        for query in generate_queries(grown, 4, 3, seed=13):
            result = MaxSumAppro(context).solve(query)
            assert result.is_feasible_for(query)

    def test_growing_dataset_never_increases_optimal_cost(self):
        # Adding objects can only add candidate sets, so the optimum can
        # only improve (the original sets all still exist).
        base = gn_like(scale=0.0008, seed=21)
        grown = scale_dataset(base, 2 * len(base), seed=22)
        queries = generate_queries(base, 4, 3, seed=23)
        small = SearchContext(base)
        large = SearchContext(grown)
        for query in queries:
            cost_small = MaxSumExact(small).solve(query).cost
            cost_large = MaxSumExact(large).solve(query).cost
            assert cost_large <= cost_small + 1e-9

    def test_every_registered_algorithm_end_to_end(self):
        dataset = gn_like(scale=0.0008, seed=31)
        context = SearchContext(dataset)
        query = generate_queries(dataset, 3, 1, seed=32)[0]
        exact_costs = {}
        for name in ALGORITHM_NAMES:
            algorithm = make_algorithm(name, context)
            result = algorithm.solve(query)
            assert result.is_feasible_for(query), name
            if algorithm.exact:
                exact_costs.setdefault(algorithm.cost.name, set()).add(
                    round(result.cost, 6)
                )
        # All exact algorithms configured with the same cost agree.
        for cost_name, costs in exact_costs.items():
            assert len(costs) == 1, (cost_name, costs)

    def test_query_built_from_words(self):
        dataset = gn_like(scale=0.0008, seed=41)
        context = SearchContext(dataset)
        frequent = dataset.keywords_by_frequency()[:3]
        words = [dataset.vocabulary.word_of(k) for k in frequent]
        query = Query.from_words(500, 500, words, dataset.vocabulary)
        result = MaxSumExact(context).solve(query)
        covered_words = {
            dataset.vocabulary.word_of(k) for k in result.covered_keywords()
        }
        assert set(words) <= covered_words

    def test_cost_override_changes_optimum_shape(self):
        # Sum ignores pairwise spread, so its optimal set can be more
        # scattered but never totals more distance than the MaxSum set.
        dataset = gn_like(scale=0.0008, seed=51)
        context = SearchContext(dataset)
        sum_cost = cost_by_name("sum")
        for query in generate_queries(dataset, 4, 3, seed=52):
            sum_best = make_algorithm("sum-exact", context).solve(query)
            maxsum_best = MaxSumExact(context).solve(query)
            total = sum(
                query.location.distance_to(o.location) for o in maxsum_best.objects
            )
            assert sum_best.cost <= total + 1e-9
            assert sum_best.cost == pytest.approx(
                sum_cost.evaluate(query, sum_best.objects)
            )
