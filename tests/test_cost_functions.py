"""Tests for the cost functions and the unified form."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.base import Combiner, QueryAggregate, pairwise_max_distance
from repro.cost.functions import (
    ALL_COSTS,
    DiaCost,
    MaxCost,
    MaxSumCost,
    MinCost,
    MinMax2Cost,
    MinMaxCost,
    SumCost,
    SumMaxCost,
    cost_by_name,
)
from repro.cost.unified import INTERESTING_SETTINGS, UnifiedCost
from repro.errors import InvalidParameterError
from repro.geometry.point import Point
from repro.model.objects import SpatialObject
from repro.model.query import Query


def obj(oid, x, y):
    return SpatialObject(oid, Point(x, y), frozenset({oid}))


QUERY = Query.create(0.0, 0.0, [0, 1, 2])
TRIANGLE = [obj(0, 3, 0), obj(1, 0, 4), obj(2, 3, 4)]
# query distances: 3, 4, 5 ; pairwise: d(0,1)=5, d(0,2)=4, d(1,2)=3 → diam 5


class TestNamedCosts:
    def test_maxsum_default_alpha(self):
        assert MaxSumCost().evaluate(QUERY, TRIANGLE) == pytest.approx(0.5 * 5 + 0.5 * 5)

    def test_maxsum_alpha_one_ignores_pairwise(self):
        assert MaxSumCost(alpha=1.0).evaluate(QUERY, TRIANGLE) == pytest.approx(5.0)

    def test_maxsum_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            MaxSumCost(alpha=0.0)
        with pytest.raises(InvalidParameterError):
            MaxSumCost(alpha=1.5)

    def test_dia(self):
        assert DiaCost().evaluate(QUERY, TRIANGLE) == pytest.approx(5.0)

    def test_dia_dominated_by_pairwise(self):
        members = [obj(0, 1, 0), obj(1, -1, 0)]
        # query distances 1,1 ; pairwise 2
        assert DiaCost().evaluate(QUERY, members) == pytest.approx(2.0)

    def test_sum(self):
        assert SumCost().evaluate(QUERY, TRIANGLE) == pytest.approx(12.0)

    def test_summax(self):
        assert SumMaxCost(alpha=0.5).evaluate(QUERY, TRIANGLE) == pytest.approx(
            0.5 * 12 + 0.5 * 5
        )

    def test_minmax(self):
        assert MinMaxCost(alpha=0.5).evaluate(QUERY, TRIANGLE) == pytest.approx(
            0.5 * 3 + 0.5 * 5
        )

    def test_minmax2(self):
        assert MinMax2Cost().evaluate(QUERY, TRIANGLE) == pytest.approx(5.0)

    def test_max_and_min(self):
        assert MaxCost().evaluate(QUERY, TRIANGLE) == pytest.approx(5.0)
        assert MinCost().evaluate(QUERY, TRIANGLE) == pytest.approx(3.0)

    def test_singleton_set_has_zero_pairwise(self):
        member = [obj(0, 3, 4)]
        assert MaxSumCost().evaluate(QUERY, member) == pytest.approx(2.5)
        assert DiaCost().evaluate(QUERY, member) == pytest.approx(5.0)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            MaxSumCost().evaluate(QUERY, [])

    def test_pairwise_max_distance(self):
        assert pairwise_max_distance(TRIANGLE) == pytest.approx(5.0)
        assert pairwise_max_distance(TRIANGLE[:1]) == 0.0


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in ALL_COSTS:
            cost = cost_by_name(name)
            assert cost.name == name
            assert cost.evaluate(QUERY, TRIANGLE) >= 0.0

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            cost_by_name("nope")

    def test_monotonicity_flags(self):
        assert MaxSumCost().is_monotone
        assert SumCost().is_monotone
        assert not MinMaxCost().is_monotone


class TestAggregates:
    def test_apply(self):
        values = [3.0, 1.0, 2.0]
        assert QueryAggregate.SUM.apply(values) == 6.0
        assert QueryAggregate.MAX.apply(values) == 3.0
        assert QueryAggregate.MIN.apply(values) == 1.0

    def test_apply_empty_raises(self):
        with pytest.raises(ValueError):
            QueryAggregate.SUM.apply([])

    def test_combiner(self):
        assert Combiner.ADD.apply(2.0, 3.0) == 5.0
        assert Combiner.MAX.apply(2.0, 3.0) == 3.0


coords = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def object_sets():
    return st.lists(
        st.tuples(coords, coords), min_size=1, max_size=6
    ).map(
        lambda pts: [
            SpatialObject(i, Point(x, y), frozenset({i})) for i, (x, y) in enumerate(pts)
        ]
    )


class TestUnifiedEquivalence:
    """cost_unified instantiations match the named costs numerically.

    Additive settings are numerically identical; max-combined settings
    carry the α = 0.5 weight the named (unweighted) costs drop, so they
    match up to the constant factor 2 — same ranking either way.
    """

    NAMED = {
        ("sum", 1.0, QueryAggregate.SUM, Combiner.ADD): (SumCost(), 1.0),
        ("max", 1.0, QueryAggregate.MAX, Combiner.ADD): (MaxCost(), 1.0),
        ("min", 1.0, QueryAggregate.MIN, Combiner.ADD): (MinCost(), 1.0),
        ("maxsum", 0.5, QueryAggregate.MAX, Combiner.ADD): (MaxSumCost(), 1.0),
        ("summax", 0.5, QueryAggregate.SUM, Combiner.ADD): (SumMaxCost(), 1.0),
        ("minmax", 0.5, QueryAggregate.MIN, Combiner.ADD): (MinMaxCost(), 1.0),
        ("dia", 0.5, QueryAggregate.MAX, Combiner.MAX): (DiaCost(), 2.0),
        ("minmax2", 0.5, QueryAggregate.MIN, Combiner.MAX): (MinMax2Cost(), 2.0),
    }

    @given(object_sets())
    @settings(max_examples=40)
    def test_equivalences(self, objects):
        query = Query.create(1.0, -1.0, [0])
        for (name, alpha, phi1, phi2), (named, factor) in self.NAMED.items():
            unified = UnifiedCost(alpha, phi1, phi2)
            assert unified.evaluate(query, objects) * factor == pytest.approx(
                named.evaluate(query, objects), abs=1e-9
            ), name

    def test_named_equivalent_mapping(self):
        for (name, alpha, phi1, phi2), _ in self.NAMED.items():
            assert UnifiedCost(alpha, phi1, phi2).named_equivalent() == name

    def test_interesting_settings_are_valid(self):
        for alpha, phi1, phi2 in INTERESTING_SETTINGS:
            cost = UnifiedCost(alpha, phi1, phi2)
            assert cost.evaluate(QUERY, TRIANGLE) > 0.0

    def test_unnamed_setting(self):
        cost = UnifiedCost(0.3, QueryAggregate.MAX, Combiner.MAX)
        assert cost.named_equivalent() is None

    def test_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            UnifiedCost(alpha=0.0)

    @given(object_sets())
    @settings(max_examples=25)
    def test_unified_nonnegative_and_scale(self, objects):
        query = Query.create(0.0, 0.0, [0])
        for alpha, phi1, phi2 in INTERESTING_SETTINGS:
            cost = UnifiedCost(alpha, phi1, phi2)
            value = cost.evaluate(query, objects)
            assert value >= 0.0
            assert math.isfinite(value)
