"""Tests for the Cao et al. baselines and the N(q) algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.cao_appro import CaoAppro1, CaoAppro2
from repro.algorithms.cao_exact import BranchBoundExact, CaoExact
from repro.algorithms.nnset import NNSetAlgorithm
from repro.cost.functions import DiaCost, MaxCost, MaxSumCost
from repro.errors import BudgetExceededError
from repro.data.generators import uniform_dataset
from repro.data.queries import generate_queries

TOL = 1e-6


def close(a, b):
    return abs(a - b) <= TOL * max(1.0, abs(a), abs(b))


def random_instance(seed):
    dataset = uniform_dataset(70, 10, mean_keywords=2.0, seed=seed)
    context = SearchContext(dataset)
    queries = generate_queries(dataset, 3, 2, percentile_range=(0.0, 1.0), seed=seed + 1)
    return context, queries


class TestNNSetAlgorithm:
    def test_returns_nn_set(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            result = NNSetAlgorithm(tiny_context, MaxSumCost()).solve(query)
            nn = tiny_context.nn_set(query)
            assert result.object_ids == tuple(o.oid for o in nn.objects)
            assert result.is_feasible_for(query)

    def test_optimal_for_max_cost(self, tiny_context, tiny_queries):
        # N(q) is provably optimal when only the farthest query distance
        # counts.
        for query in tiny_queries:
            nn_result = NNSetAlgorithm(tiny_context, MaxCost()).solve(query)
            optimal = BruteForceExact(tiny_context, MaxCost()).solve(query)
            assert close(nn_result.cost, optimal.cost)


class TestCaoAppro1:
    def test_three_approximation_for_maxsum(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, MaxSumCost()).solve(query)
            got = CaoAppro1(tiny_context, MaxSumCost()).solve(query)
            assert got.is_feasible_for(query)
            assert got.cost <= 3.0 * optimal.cost + TOL

    @given(st.integers(0, 50_000))
    @settings(max_examples=15)
    def test_three_approximation_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = BruteForceExact(context, MaxSumCost()).solve(query)
            got = CaoAppro1(context, MaxSumCost()).solve(query)
            assert got.cost <= 3.0 * optimal.cost + TOL

    def test_dia_adaptation_bounded(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, DiaCost()).solve(query)
            got = CaoAppro1(tiny_context, DiaCost()).solve(query)
            assert got.cost <= 3.0 * optimal.cost + TOL


class TestCaoAppro2:
    def test_two_approximation_for_maxsum(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, MaxSumCost()).solve(query)
            got = CaoAppro2(tiny_context, MaxSumCost()).solve(query)
            assert got.is_feasible_for(query)
            assert got.cost <= 2.0 * optimal.cost + TOL

    @given(st.integers(0, 50_000))
    @settings(max_examples=15)
    def test_two_approximation_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = BruteForceExact(context, MaxSumCost()).solve(query)
            got = CaoAppro2(context, MaxSumCost()).solve(query)
            assert got.cost <= 2.0 * optimal.cost + TOL

    def test_never_worse_than_appro1(self, tiny_context, tiny_queries):
        # Appro2 keeps the best of its candidates, seeded with N(q) —
        # so it can never lose to Appro1.
        for query in tiny_queries:
            a1 = CaoAppro1(tiny_context, MaxSumCost()).solve(query)
            a2 = CaoAppro2(tiny_context, MaxSumCost()).solve(query)
            assert a2.cost <= a1.cost + TOL


class TestBranchBoundExact:
    def test_matches_bruteforce_maxsum(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, MaxSumCost()).solve(query)
            got = CaoExact(tiny_context, MaxSumCost()).solve(query)
            assert close(got.cost, optimal.cost)

    def test_matches_bruteforce_dia(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, DiaCost()).solve(query)
            got = CaoExact(tiny_context, DiaCost()).solve(query)
            assert close(got.cost, optimal.cost)

    @given(st.integers(0, 50_000))
    @settings(max_examples=15)
    def test_matches_bruteforce_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = BruteForceExact(context, MaxSumCost()).solve(query)
            got = CaoExact(context, MaxSumCost()).solve(query)
            assert close(got.cost, optimal.cost)

    def test_expansion_budget_raises(self, tiny_context, tiny_queries):
        algo = BranchBoundExact(tiny_context, MaxSumCost(), max_expansions=0)
        # With zero budget, any query needing expansion must fail loudly
        # rather than return a silently suboptimal answer — and with the
        # typed abort of the repro.exec taxonomy, not a raw RuntimeError.
        query = tiny_queries[0]
        nn_cost = NNSetAlgorithm(tiny_context, MaxSumCost()).solve(query).cost
        exact_cost = BruteForceExact(tiny_context, MaxSumCost()).solve(query).cost
        if close(nn_cost, exact_cost):
            pytest.skip("N(q) already optimal here; no expansion needed")
        with pytest.raises(BudgetExceededError) as info:
            algo.solve(query)
        assert info.value.counter == "states_expanded"
        assert info.value.limit == 0

    def test_counters(self, tiny_context, tiny_queries):
        algo = CaoExact(tiny_context, MaxSumCost())
        result = algo.solve(tiny_queries[0])
        assert result.counters.get("states_expanded", 0) >= 0
