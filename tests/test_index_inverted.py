"""Tests for the inverted index."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.model.dataset import Dataset


def make_dataset():
    return Dataset.from_records(
        [
            (0.0, 0.0, ["a", "b"]),
            (1.0, 0.0, ["b"]),
            (2.0, 0.0, ["c", "a"]),
        ]
    )


class TestInvertedIndex:
    def test_posting_lists(self):
        ds = make_dataset()
        idx = InvertedIndex(ds)
        a = ds.vocabulary.id_of("a")
        b = ds.vocabulary.id_of("b")
        assert list(idx.posting_list(a)) == [0, 2]
        assert list(idx.posting_list(b)) == [0, 1]
        assert list(idx.posting_list(999)) == []

    def test_objects_with(self):
        ds = make_dataset()
        idx = InvertedIndex(ds)
        c = ds.vocabulary.id_of("c")
        assert [o.oid for o in idx.objects_with(c)] == [2]

    def test_document_frequency(self):
        ds = make_dataset()
        idx = InvertedIndex(ds)
        assert idx.document_frequency(ds.vocabulary.id_of("b")) == 2
        assert idx.document_frequency(12345) == 0

    def test_missing_keywords(self):
        ds = make_dataset()
        idx = InvertedIndex(ds)
        a = ds.vocabulary.id_of("a")
        assert idx.missing_keywords([a, 777]) == frozenset({777})
        assert idx.missing_keywords([a]) == frozenset()

    def test_relevant_objects_deduplicates(self):
        ds = make_dataset()
        idx = InvertedIndex(ds)
        a = ds.vocabulary.id_of("a")
        b = ds.vocabulary.id_of("b")
        relevant = idx.relevant_objects(frozenset({a, b}))
        assert sorted(o.oid for o in relevant) == [0, 1, 2]
        assert len(relevant) == 3  # object 0 matches both but appears once

    def test_rarest_keyword(self):
        ds = make_dataset()
        idx = InvertedIndex(ds)
        a = ds.vocabulary.id_of("a")
        b = ds.vocabulary.id_of("b")
        c = ds.vocabulary.id_of("c")
        assert idx.rarest_keyword([a, b, c]) == c

    def test_rarest_keyword_empty_raises(self):
        idx = InvertedIndex(make_dataset())
        with pytest.raises(ValueError):
            idx.rarest_keyword([])

    def test_consistency_with_dataset(self, tiny_dataset):
        idx = InvertedIndex(tiny_dataset)
        for obj in tiny_dataset:
            for k in obj.keywords:
                assert obj.oid in idx.posting_list(k)
        total_postings = sum(
            idx.document_frequency(k) for k in range(len(tiny_dataset.vocabulary))
        )
        assert total_postings == sum(len(o.keywords) for o in tiny_dataset)
