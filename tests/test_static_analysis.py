"""The static-analysis pass, enforced as a tier-1 test.

Three layers of guarantees:

1. the full rule set over ``src/repro`` is clean — any regression of
   R1–R5 in the library fails the suite;
2. a fixture module that deliberately violates every rule is reported
   with the right rule ids on the right lines;
3. the machinery itself (noqa suppression, strict mode, config scoping,
   JSON/CLI plumbing) behaves as documented.
"""

from __future__ import annotations

import json
import pathlib
import re

import pytest

from repro.analysis import AnalysisConfig, find_pyproject, run_analysis
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import compute_relpath
from repro.analysis.rules import RULE_SUMMARIES

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
FIXTURE = ROOT / "tests" / "fixtures" / "analysis_violations.py"

#: ``# expect: R1, R1`` markers inside the fixture.
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")

#: Permissive config for the fixture: every rule runs on every path.
PERMISSIVE = AnalysisConfig(include={}, exclude={})


def fixture_expectations() -> dict:
    """line → sorted list of expected rule ids, parsed from the fixture."""
    expected: dict = {1: ["R4"]}  # missing __all__ reports on line 1
    for lineno, text in enumerate(
        FIXTURE.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(text)
        if match:
            rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
            expected.setdefault(lineno, []).extend(rules)
    return {line: sorted(rules) for line, rules in expected.items()}


class TestRepositoryIsClean:
    def test_src_tree_has_no_violations(self):
        config = AnalysisConfig.load(find_pyproject(SRC))
        report = run_analysis([SRC], config)
        assert report.files_checked > 50
        assert report.violations == [], "\n".join(
            v.format() for v in report.violations
        )

    def test_src_tree_clean_under_strict(self):
        config = AnalysisConfig.load(find_pyproject(SRC))
        report = run_analysis([SRC], config)
        assert report.ok(strict=True), "\n".join(
            v.format() for v in report.effective_violations(strict=True)
        )


class TestFixtureViolations:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis([FIXTURE], PERMISSIVE)

    def test_every_expected_violation_reported(self, report):
        expected = fixture_expectations()
        actual: dict = {}
        for violation in report.violations:
            actual.setdefault(violation.line, []).append(violation.rule)
        actual = {line: sorted(rules) for line, rules in actual.items()}
        assert actual == expected

    def test_every_rule_id_exercised(self, report):
        seen = {violation.rule for violation in report.violations}
        assert seen == {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"}

    def test_noqa_suppression_honored(self, report):
        # QuietAlgo.solve carries `# repro: noqa(R5)`; exactly that one
        # violation must be suppressed, not merely absent.
        assert report.suppressed == 1

    def test_rule_catalogue_covers_reported_rules(self, report):
        for violation in report.violations:
            assert violation.rule in RULE_SUMMARIES


class TestSuppressionMechanics:
    def _lint_source(self, tmp_path, source, strict=False):
        target = tmp_path / "snippet.py"
        target.write_text(source, encoding="utf-8")
        report = run_analysis([target], PERMISSIVE)
        return report

    def test_targeted_noqa_only_silences_named_rule(self, tmp_path):
        report = self._lint_source(
            tmp_path,
            '__all__ = []\n'
            'def f(bucket={}):  # repro: noqa(R2)\n'
            '    return bucket\n',
        )
        # The noqa names R2 but the violation is R4: it must still fire.
        assert [v.rule for v in report.violations] == ["R4"]

    def test_blanket_noqa_silences_line(self, tmp_path):
        report = self._lint_source(
            tmp_path,
            '__all__ = []\n'
            'def f(bucket={}):  # repro: noqa\n'
            '    return bucket\n',
        )
        assert report.violations == []
        assert report.suppressed == 1

    def test_strict_flags_unused_noqa(self, tmp_path):
        report = self._lint_source(
            tmp_path,
            '__all__ = []\n'
            'x = 1  # repro: noqa(R3)\n',
        )
        assert report.ok(strict=False)
        assert not report.ok(strict=True)
        assert [v.rule for v in report.unused_noqa] == ["NOQA"]


class TestConfigScoping:
    def test_include_scoping_skips_other_paths(self, tmp_path):
        target = tmp_path / "scoped.py"
        target.write_text(
            '__all__ = []\n'
            'threshold_cost = 1.0\n'
            'flag = threshold_cost == 2.0\n',
            encoding="utf-8",
        )
        scoped = AnalysisConfig(include={"R3": ("repro/cost/",)}, exclude={})
        assert run_analysis([target], scoped).violations == []
        assert [
            v.rule for v in run_analysis([target], PERMISSIVE).violations
        ] == ["R3"]

    def test_r6_scoped_to_solver_paths(self, tmp_path):
        target = tmp_path / "helper.py"
        target.write_text(
            '__all__ = []\n'
            'def abort():\n'
            '    raise RuntimeError("boom")\n',
            encoding="utf-8",
        )
        scoped = AnalysisConfig(include={"R6": ("repro/algorithms/",)}, exclude={})
        assert run_analysis([target], scoped).violations == []
        assert [
            v.rule for v in run_analysis([target], PERMISSIVE).violations
        ] == ["R6"]

    def test_disable_turns_rule_off(self):
        config = AnalysisConfig(disable=("R1", "R2", "R3", "R4", "R5", "R7"))
        report = run_analysis([FIXTURE], config)
        assert report.violations == []

    def test_pyproject_config_loads(self):
        config = AnalysisConfig.load(ROOT / "pyproject.toml")
        assert config.registry == "repro/algorithms/registry.py"
        assert any("bench" in p for p in config.exclude.get("R2", ()))

    def test_relpath_is_package_relative_under_src(self):
        relpath = compute_relpath(SRC / "algorithms" / "base.py")
        assert relpath == "repro/algorithms/base.py"


class TestCommandLine:
    def test_json_output_shape(self, capsys):
        exit_code = lint_main(["--json", str(FIXTURE)])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert {v["rule"] for v in payload["violations"]} >= {"R2", "R4", "R5"}

    def test_clean_tree_exits_zero(self, capsys):
        exit_code = lint_main(["--strict", str(SRC)])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "no violations" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "R1", "R2", "R3", "R4", "R5", "R6",
            "R7", "R8", "R9", "R10", "R11", "R12",
        ):
            assert rule in out

    def test_missing_path_exits_two(self, capsys):
        assert lint_main([str(ROOT / "does-not-exist.py")]) == 2

    def test_format_json_matches_json_flag(self, capsys):
        assert lint_main(["--format", "json", str(FIXTURE)]) == 1
        via_format = capsys.readouterr().out
        assert lint_main(["--json", str(FIXTURE)]) == 1
        via_flag = capsys.readouterr().out
        assert json.loads(via_format) == json.loads(via_flag)

    def test_no_dataflow_skips_interprocedural_rules(self, capsys):
        # src/repro is clean either way; the flag must not break the run.
        assert lint_main(["--no-dataflow", str(SRC)]) == 0
        assert "no violations" in capsys.readouterr().out


class TestParseFailures:
    def test_syntax_error_reports_readable_line(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        exit_code = lint_main([str(bad)])
        out = capsys.readouterr().out
        assert exit_code == 3
        assert "PARSE" in out
        assert "syntax error" in out

    def test_null_byte_reports_unparseable(self, tmp_path, capsys):
        bad = tmp_path / "binary.py"
        bad.write_bytes(b"x = 1\x00\n")
        exit_code = lint_main([str(bad)])
        out = capsys.readouterr().out
        assert exit_code == 3
        # Depending on the Python version null bytes surface as a bare
        # ValueError ("unparseable") or a SyntaxError; both must land on
        # the PARSE rule with a readable one-liner.
        assert "PARSE" in out
        assert "null bytes" in out or "unparseable" in out

    def test_parse_failure_outranks_ordinary_violations(self, tmp_path):
        good_but_dirty = tmp_path / "dirty.py"
        good_but_dirty.write_text(
            "def f(bucket={}):\n    return bucket\n", encoding="utf-8"
        )
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        # Violations alone exit 1; any parse failure escalates to 3.
        assert lint_main([str(good_but_dirty)]) == 1
        assert lint_main([str(good_but_dirty), str(broken)]) == 3

    def test_parse_failure_keeps_other_findings(self, tmp_path):
        from repro.analysis import run_analysis

        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        report = run_analysis([FIXTURE, broken], PERMISSIVE)
        rules = {v.rule for v in report.violations}
        assert "PARSE" in rules and "R7" in rules
