"""Property tests for the paper's structural lemmas.

These assert, on random instances, the geometric facts the pruning rules
rely on (DESIGN.md §7, docs/ALGORITHMS.md §0–1).  If any of these ever
fails, a pruning rule somewhere is unsound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.cost.base import pairwise_max_distance
from repro.cost.functions import DiaCost, MaxSumCost
from repro.data.generators import uniform_dataset
from repro.data.queries import generate_queries

TOL = 1e-9


def random_instance(seed):
    dataset = uniform_dataset(60, 9, mean_keywords=2.0, seed=seed)
    context = SearchContext(dataset)
    query = generate_queries(
        dataset, 3, 1, percentile_range=(0.0, 1.0), seed=seed + 1
    )[0]
    return context, query


class TestDfBound:
    @given(st.integers(0, 30_000))
    @settings(max_examples=25)
    def test_every_feasible_optimum_respects_df(self, seed):
        # max_{o∈S} d(o,q) ≥ d_f for every feasible S; in particular for
        # the optimal sets of both paper costs.
        context, query = random_instance(seed)
        nn = context.nn_set(query)
        for cost in (MaxSumCost(), DiaCost()):
            optimal = BruteForceExact(context, cost).solve(query)
            r = max(query.location.distance_to(o.location) for o in optimal.objects)
            assert r >= nn.d_f - TOL

    @given(st.integers(0, 30_000))
    @settings(max_examples=25)
    def test_cost_lower_bounds(self, seed):
        # cost* ≥ combine(d_f, 0): the ring pruning's justification.
        context, query = random_instance(seed)
        nn = context.nn_set(query)
        for cost in (MaxSumCost(), DiaCost()):
            optimal = BruteForceExact(context, cost).solve(query)
            assert optimal.cost >= cost.combine(nn.d_f, 0.0) - TOL


class TestOwnerDecomposition:
    @given(st.integers(0, 30_000))
    @settings(max_examples=25)
    def test_cost_is_combine_of_owner_distances(self, seed):
        context, query = random_instance(seed)
        for cost in (MaxSumCost(), DiaCost()):
            optimal = BruteForceExact(context, cost).solve(query)
            r = max(query.location.distance_to(o.location) for o in optimal.objects)
            d12 = pairwise_max_distance(list(optimal.objects))
            assert optimal.cost == pytest.approx(cost.combine(r, d12))

    @given(st.integers(0, 30_000))
    @settings(max_examples=25)
    def test_members_inside_owner_disk_and_lens(self, seed):
        # Every member sits in C(q, r) and within d12 of every other —
        # the region restrictions of Steps 1–2.
        context, query = random_instance(seed)
        optimal = BruteForceExact(context, MaxSumCost()).solve(query)
        members = list(optimal.objects)
        r = max(query.location.distance_to(o.location) for o in members)
        d12 = pairwise_max_distance(members)
        for o in members:
            assert query.location.distance_to(o.location) <= r + TOL
            for other in members:
                assert o.location.distance_to(other.location) <= d12 + TOL

    @given(st.integers(0, 30_000))
    @settings(max_examples=25)
    def test_diameter_lower_bound_per_owner(self, seed):
        # diam(S) ≥ max_t min_{carrier v of t in S-disk} d(v, owner):
        # the bisection's lower bracket.
        context, query = random_instance(seed)
        optimal = BruteForceExact(context, MaxSumCost()).solve(query)
        members = list(optimal.objects)
        owner = max(members, key=lambda o: query.location.distance_to(o.location))
        d12 = pairwise_max_distance(members)
        for t in query.keywords - owner.keywords:
            carrier_dists = [
                owner.location.distance_to(o.location)
                for o in members
                if t in o.keywords
            ]
            assert carrier_dists, "feasible set must carry every keyword"
            assert min(carrier_dists) <= d12 + TOL


class TestCostRelations:
    @given(st.integers(0, 30_000))
    @settings(max_examples=25)
    def test_dia_between_half_and_full_maxsum(self, seed):
        # For any set: max(a,b) ≤ a+b ≤ 2·max(a,b); with the α=0.5
        # weighting, dia(S) ∈ [maxsum(S), 2·maxsum(S)].
        context, query = random_instance(seed)
        relevant = context.inverted.relevant_objects(query.keywords)[:6]
        if not relevant:
            return
        maxsum = MaxSumCost().evaluate(query, relevant)
        dia = DiaCost().evaluate(query, relevant)
        assert maxsum - TOL <= dia <= 2.0 * maxsum + TOL

    @given(st.integers(0, 30_000))
    @settings(max_examples=25)
    def test_optimal_costs_ordered_across_metrics(self, seed):
        # cost*_dia ≥ cost*_maxsum (same inequality holds pointwise, and
        # minima preserve pointwise dominance).
        context, query = random_instance(seed)
        maxsum_opt = BruteForceExact(context, MaxSumCost()).solve(query)
        dia_opt = BruteForceExact(context, DiaCost()).solve(query)
        assert dia_opt.cost >= maxsum_opt.cost - TOL
