"""Property-based invariants of batch reports (serial and parallel).

Rather than trusting hand-picked batches, hypothesis drives a scripted
solver through arbitrary success/failure interleavings and asserts the
structural invariants every consumer of a :class:`BatchReport` relies
on:

- ``answered + failed == total``;
- ``results[i] is None`` ⇔ some failure carries index ``i``;
- failure indexes are unique, sorted and in range;
- ``error_counts()`` sums to ``failed``; ``degraded <= answered``.

A second property drives the real :class:`ParallelBatchExecutor`
(workers=1, in-process) over mixed feasible/poisoned batches and checks
it upholds the same invariants plus agreement with the serial engine.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import make_random_instance
from repro.errors import ExecutionFailedError, InfeasibleQueryError
from repro.exec.batch import BatchExecutor
from repro.exec.fallback import StageFailure
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.parallel import ParallelBatchExecutor, SolverSpec, WorkerEnv

#: Behaviors the scripted solver can exhibit for one query.
OK, FAIL, CHAIN_FAIL, DEGRADED, INFEASIBLE_RESULT = (
    "ok",
    "fail",
    "chain_fail",
    "degraded",
    "infeasible_result",
)

behaviors = st.lists(
    st.sampled_from([OK, FAIL, CHAIN_FAIL, DEGRADED, INFEASIBLE_RESULT]),
    min_size=0,
    max_size=12,
)


class ScriptedSolver:
    """Replays a per-query behavior script; index-addressed, stateless."""

    name = "scripted"

    def __init__(self, script: List[str], template: CoSKQResult):
        self.script = script
        self.template = template
        self.calls = 0

    def solve(self, query: Query) -> CoSKQResult:
        behavior = self.script[self.calls]
        self.calls += 1
        if behavior == FAIL:
            raise InfeasibleQueryError([999])
        if behavior == CHAIN_FAIL:
            raise ExecutionFailedError(
                [
                    StageFailure(
                        stage="scripted", error_type="Boom", message="scripted"
                    )
                ]
            )
        if behavior == INFEASIBLE_RESULT:
            # Feasibility validation must convert this into a failure.
            return CoSKQResult.of((), 0.0, self.name)
        result = self.template
        if behavior == DEGRADED:
            provenance = result.provenance
            if provenance is None or not getattr(provenance, "degraded", False):
                result = self._degraded_copy(result)
        return result

    def _degraded_copy(self, result: CoSKQResult) -> CoSKQResult:
        from repro.exec.fallback import ExecutionProvenance

        provenance = ExecutionProvenance(
            answered_by=self.name, degraded=True, guaranteed_ratio=None
        )
        return result.with_provenance(provenance)


@pytest.fixture(scope="module")
def solved_template():
    """A genuine feasible result for the template query, solved once."""
    from repro.algorithms.registry import make_algorithm

    _, context, queries = make_random_instance(31, num_objects=40, vocab=8)
    query = queries[0]
    result = make_algorithm("maxsum-appro", context).solve(query)
    return query, result


@given(script=behaviors)
def test_report_structural_invariants(script, solved_template):
    query, template = solved_template
    solver = ScriptedSolver(script, template)
    report = BatchExecutor(solver).run([query] * len(script))

    assert report.total == len(script)
    assert report.answered + report.failed == report.total

    failed_positions = [f.index for f in report.failures]
    assert failed_positions == sorted(set(failed_positions))
    for index in failed_positions:
        assert 0 <= index < report.total
    for position, result in enumerate(report.results):
        assert (result is None) == (position in set(failed_positions))

    assert sum(report.error_counts().values()) == report.failed
    assert report.degraded <= report.answered
    assert report.ok() == (report.failed == 0)

    # Scripted behaviors map to the right outcome positionally.
    for position, behavior in enumerate(script):
        if behavior in (FAIL, CHAIN_FAIL, INFEASIBLE_RESULT):
            assert report.results[position] is None
        else:
            assert report.results[position] is not None
    for failure in report.failures:
        if script[failure.index] == CHAIN_FAIL:
            assert failure.error_type == "ExecutionFailedError"
            assert len(failure.stage_failures) == 1
        elif script[failure.index] == INFEASIBLE_RESULT:
            assert failure.error_type == "AssertionError"


@given(poison_mask=st.lists(st.booleans(), min_size=1, max_size=8))
def test_parallel_engine_upholds_invariants(poison_mask, parallel_fixture):
    dataset, serial_report_for, batch_for = parallel_fixture
    batch = batch_for(poison_mask)
    env = WorkerEnv(dataset=dataset)
    with ParallelBatchExecutor(env, SolverSpec(algorithm="maxsum-appro")) as engine:
        report = engine.run(batch)

    assert report.total == len(batch)
    assert report.answered + report.failed == report.total
    failed_positions = {f.index for f in report.failures}
    for position, result in enumerate(report.results):
        assert (result is None) == (position in failed_positions)
    # Poisoned positions fail as infeasible; clean positions answer with
    # exactly the serial engine's costs.
    serial = serial_report_for(batch)
    assert [r.cost if r else None for r in report.results] == [
        r.cost if r else None for r in serial.results
    ]
    for position, poisoned in enumerate(poison_mask):
        assert (report.results[position] is None) == poisoned


@pytest.fixture(scope="module")
def parallel_fixture():
    from repro.algorithms.registry import make_algorithm

    dataset, context, queries = make_random_instance(53, num_objects=40, vocab=8)
    clean = queries[0]
    missing = max(k for o in dataset.objects for k in o.keywords) + 1
    poisoned = Query(clean.location, clean.keywords | {missing})
    solver = make_algorithm("maxsum-appro", context)

    def batch_for(poison_mask):
        return [poisoned if flag else clean for flag in poison_mask]

    def serial_report_for(batch):
        return BatchExecutor(solver).run(batch)

    return dataset, serial_report_for, batch_for
