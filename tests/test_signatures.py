"""Unit and property tests for the keyword-bitmap signature layer.

The layer's whole correctness story is a bijection between frozen
keyword sets and integer bitsets: every mask predicate must return
exactly the boolean (or set) its frozenset twin returns.  Hypothesis
drives the bijection over arbitrary small keyword sets; the rest pins
the toggle semantics (`REPRO_SIGNATURES` / `set_enabled`) that the
benchmarks and the differential suite rely on.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index import signatures
from repro.index.signatures import (
    bits_of,
    covers,
    covers_all,
    keywords_of,
    mask_of,
    overlaps,
    pack_masks,
    shared_keywords,
    signatures_enabled,
    set_enabled,
)

keyword_sets = st.frozensets(st.integers(min_value=0, max_value=63), max_size=10)


@pytest.fixture(autouse=True)
def restore_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_SIGNATURES", raising=False)
    yield
    set_enabled(None)


class TestMaskBijection:
    @given(keyword_sets)
    def test_roundtrip(self, kws):
        assert keywords_of(mask_of(kws)) == kws

    @given(keyword_sets)
    def test_popcount_is_cardinality(self, kws):
        assert mask_of(kws).bit_count() == len(kws)

    @given(keyword_sets)
    def test_bits_ascend(self, kws):
        bits = list(bits_of(mask_of(kws)))
        assert bits == sorted(kws)

    @given(keyword_sets, keyword_sets)
    def test_overlaps_is_not_isdisjoint(self, a, b):
        assert overlaps(mask_of(a), mask_of(b)) == (not a.isdisjoint(b))

    @given(keyword_sets, keyword_sets)
    def test_covers_is_issubset(self, a, b):
        assert covers(mask_of(a), mask_of(b)) == (a <= b)

    @given(keyword_sets, keyword_sets)
    def test_and_is_intersection(self, a, b):
        assert keywords_of(mask_of(a) & mask_of(b)) == (a & b)

    @given(keyword_sets, keyword_sets)
    def test_andnot_is_difference(self, a, b):
        assert keywords_of(mask_of(a) & ~mask_of(b)) == (a - b)

    @given(keyword_sets, keyword_sets)
    def test_set_level_companions_match(self, a, b):
        assert shared_keywords(a, b) == (a & b)
        assert covers_all(a, b) == (a <= b)


class TestMaskBuilding:
    def test_mask_of_memoizes_frozensets(self):
        kws = frozenset({3, 5})
        assert mask_of(kws) == mask_of(frozenset({5, 3})) == (1 << 3) | (1 << 5)

    def test_mask_of_accepts_plain_iterables(self):
        assert mask_of([0, 2]) == 0b101
        assert mask_of(iter((1,))) == 0b10
        assert mask_of(()) == 0

    def test_pack_masks_parallel_to_input(self, tiny_dataset):
        objects = list(tiny_dataset.objects)
        masks = pack_masks(objects)
        assert len(masks) == len(objects)
        for obj, mask in zip(objects, masks):
            assert keywords_of(mask) == obj.keywords


class TestToggle:
    def test_default_is_enabled(self):
        assert signatures_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "No", " OFF "])
    def test_env_false_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SIGNATURES", value)
        assert signatures_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_env_other_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SIGNATURES", value)
        assert signatures_enabled() is True

    def test_set_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIGNATURES", "0")
        set_enabled(True)
        assert signatures_enabled() is True
        set_enabled(False)
        monkeypatch.setenv("REPRO_SIGNATURES", "1")
        assert signatures_enabled() is False
        set_enabled(None)
        assert signatures_enabled() is True

    def test_module_mirrors_kernels_toggle_shape(self):
        # The benchmark harness flips both layers the same way.
        assert hasattr(signatures, "set_enabled")
        assert signatures._ENV_VAR == "REPRO_SIGNATURES"
