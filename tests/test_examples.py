"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print something"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "trip_planning.py", "team_assembly.py"} <= names
    assert len(EXAMPLES) >= 3
