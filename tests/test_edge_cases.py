"""Adversarial edge cases for the solvers: ties, co-location, degeneracy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.dia_exact import DiaExact
from repro.algorithms.maxsum_appro import MaxSumAppro
from repro.algorithms.maxsum_exact import MaxSumExact
from repro.cost.functions import DiaCost, MaxSumCost
from repro.geometry.point import Point
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.vocabulary import Vocabulary

TOL = 1e-6


def close(a, b):
    return abs(a - b) <= TOL * max(1.0, abs(a), abs(b))


def dataset_from(coords_and_keywords):
    vocabulary = Vocabulary()
    objects = []
    for oid, (x, y, words) in enumerate(coords_and_keywords):
        keyword_ids = frozenset(vocabulary.add(w) for w in words)
        objects.append(SpatialObject(oid, Point(x, y), keyword_ids))
    return Dataset(objects, vocabulary, name="edge")


class TestColocated:
    def test_all_objects_at_one_point(self):
        ds = dataset_from([(5.0, 5.0, ["a"]), (5.0, 5.0, ["b"]), (5.0, 5.0, ["c"])])
        context = SearchContext(ds)
        query = Query.from_words(0.0, 0.0, ["a", "b", "c"], ds.vocabulary)
        exact = MaxSumExact(context).solve(query)
        # All at distance sqrt(50), diameter 0.
        assert exact.cost == pytest.approx(0.5 * (50 ** 0.5))
        dia = DiaExact(context).solve(query)
        assert dia.cost == pytest.approx(50 ** 0.5)

    def test_object_exactly_at_query_location(self):
        ds = dataset_from([(0.0, 0.0, ["a", "b"]), (9.0, 0.0, ["a", "b"])])
        context = SearchContext(ds)
        query = Query.from_words(0.0, 0.0, ["a", "b"], ds.vocabulary)
        exact = MaxSumExact(context).solve(query)
        assert exact.cost == pytest.approx(0.0)
        assert exact.object_ids == (0,)

    def test_duplicate_objects_same_trace(self):
        # Many identical objects must not confuse the cover search.
        rows = [(1.0, 1.0, ["a"])] * 10 + [(2.0, 2.0, ["b"])] * 10
        ds = dataset_from(rows)
        context = SearchContext(ds)
        query = Query.from_words(0.0, 0.0, ["a", "b"], ds.vocabulary)
        exact = MaxSumExact(context).solve(query)
        oracle = BruteForceExact(context, MaxSumCost()).solve(query)
        assert close(exact.cost, oracle.cost)


class TestTies:
    def test_symmetric_candidates(self):
        # Four symmetric single-keyword carriers: many optimal sets tie;
        # any of them is acceptable, the cost must equal the oracle's.
        ds = dataset_from(
            [
                (1.0, 0.0, ["a"]),
                (-1.0, 0.0, ["a"]),
                (0.0, 1.0, ["b"]),
                (0.0, -1.0, ["b"]),
            ]
        )
        context = SearchContext(ds)
        query = Query.from_words(0.0, 0.0, ["a", "b"], ds.vocabulary)
        oracle = BruteForceExact(context, MaxSumCost()).solve(query)
        exact = MaxSumExact(context).solve(query)
        assert close(exact.cost, oracle.cost)
        appro = MaxSumAppro(context).solve(query)
        assert appro.cost <= 1.375 * oracle.cost + TOL

    def test_single_object_covers_everything_far_away(self):
        # One distant all-covering object vs a near scattered pair: the
        # exact solver must pick whichever is genuinely cheaper.
        ds = dataset_from(
            [
                (100.0, 0.0, ["a", "b"]),
                (1.0, 0.0, ["a"]),
                (0.0, 1.0, ["b"]),
            ]
        )
        context = SearchContext(ds)
        query = Query.from_words(0.0, 0.0, ["a", "b"], ds.vocabulary)
        exact = MaxSumExact(context).solve(query)
        assert set(exact.object_ids) == {1, 2}


class TestAlphaVariants:
    @given(st.floats(0.1, 1.0), st.integers(0, 5_000))
    @settings(max_examples=12)
    def test_exact_matches_oracle_for_any_alpha(self, alpha, seed):
        from repro.data.generators import uniform_dataset
        from repro.data.queries import generate_queries

        dataset = uniform_dataset(50, 8, mean_keywords=2.0, seed=seed)
        context = SearchContext(dataset)
        cost = MaxSumCost(alpha=alpha)
        query = generate_queries(
            dataset, 3, 1, percentile_range=(0.0, 1.0), seed=seed + 1
        )[0]
        from repro.algorithms.owner_exact import OwnerDrivenExact

        oracle = BruteForceExact(context, MaxSumCost(alpha=alpha)).solve(query)
        exact = OwnerDrivenExact(context, cost).solve(query)
        assert close(exact.cost, oracle.cost)


class TestDegenerateQueries:
    def test_repeated_keyword_ids_collapse(self):
        ds = dataset_from([(1.0, 0.0, ["a"])])
        query = Query.create(0.0, 0.0, [0, 0, 0])
        assert query.size == 1

    def test_query_far_outside_data(self):
        ds = dataset_from([(0.0, 0.0, ["a"]), (1.0, 0.0, ["b"])])
        context = SearchContext(ds)
        query = Query.from_words(1e6, 1e6, ["a", "b"], ds.vocabulary)
        exact = MaxSumExact(context).solve(query)
        oracle = BruteForceExact(context, MaxSumCost()).solve(query)
        assert close(exact.cost, oracle.cost)

    def test_dia_with_distant_query(self):
        # Far queries make the query-distance term dominate the diameter;
        # the Dia fast path (cap = r probe) must stay correct.
        ds = dataset_from(
            [(0.0, 0.0, ["a"]), (3.0, 0.0, ["b"]), (0.0, 4.0, ["c"])]
        )
        context = SearchContext(ds)
        query = Query.from_words(1000.0, 1000.0, ["a", "b", "c"], ds.vocabulary)
        oracle = BruteForceExact(context, DiaCost()).solve(query)
        exact = DiaExact(context).solve(query)
        assert close(exact.cost, oracle.cost)
