"""Smoke tests for the experiment suite at micro scale.

These validate the harness plumbing (every experiment runs end to end
and produces the expected table structure); the benchmark files under
``benchmarks/`` and the CLI run the real sweeps.
"""

import pytest

from repro.bench.experiments import EXPERIMENTS, Scale, run_experiment

MICRO = Scale(
    hotel_scale=0.02,      # ~415 objects
    gn_scale=0.0006,       # ~1.1k objects
    web_scale=0.002,       # ~1.1k objects
    queries=2,
    keyword_sweep=(3,),
    scalability_sizes=(600, 900),
    okeyword_sweep=(4.0, 6.0),
    seed=3,
)


class TestExperimentRegistry:
    def test_expected_ids_present(self):
        expected = {
            "table1",
            "maxsum_hotel",
            "maxsum_gn",
            "maxsum_web",
            "dia_hotel",
            "dia_gn",
            "dia_web",
            "ratio_bars",
            "scalability",
            "okeywords",
            "ablation_pruning",
            "ablation_index",
            "unified",
            "parallel_study",
            "kernels_study",
            "signatures_study",
            "adaptive_study",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope", scale=MICRO)


class TestExperimentsRun:
    def test_table1(self):
        report = run_experiment("table1", scale=MICRO)
        for name in ("hotel", "gn", "web"):
            assert name in report
        assert "objects" in report

    def test_maxsum_hotel(self):
        report = run_experiment("maxsum_hotel", scale=MICRO)
        assert "maxsum-exact" in report
        assert "cao-exact" in report
        assert "maxsum-appro" in report
        assert "approximation ratio" in report

    def test_dia_hotel(self):
        report = run_experiment("dia_hotel", scale=MICRO)
        assert "dia-exact" in report and "dia-appro" in report

    def test_ratio_bars(self):
        report = run_experiment("ratio_bars", scale=MICRO)
        assert "optimal_fraction" in report
        assert "cao-appro1" in report and "cao-appro2" in report

    def test_scalability(self):
        report = run_experiment("scalability", scale=MICRO)
        assert "|O|" in report
        assert "600" in report and "900" in report

    def test_okeywords(self):
        report = run_experiment("okeywords", scale=MICRO)
        assert "avg|o.psi|" in report

    def test_ablation_pruning(self):
        report = run_experiment("ablation_pruning", scale=MICRO)
        assert "full-pruning" in report
        assert "no-pruning-at-all" in report

    def test_ablation_index(self):
        report = run_experiment("ablation_index", scale=MICRO)
        assert "ir-tree" in report and "linear-scan" in report

    def test_unified(self):
        report = run_experiment("unified", scale=MICRO)
        for name in ("maxsum", "dia", "sum", "minmax"):
            assert name in report

    def test_parallel_study(self, tmp_path, monkeypatch):
        import json

        from repro.bench import experiments

        json_path = tmp_path / "BENCH_parallel.json"
        monkeypatch.setattr(experiments, "PARALLEL_JSON_PATH", json_path)
        report = run_experiment("parallel_study", scale=MICRO)
        assert "speedup at 4 workers" in report
        for config in ("none/x1", "full/x4"):
            assert config in report
        payload = json.loads(json_path.read_text())
        assert payload["speedup_at_4"] > 0
        assert payload["cache_stats_at_4"]["result_hits"] > 0
        assert payload["cpu_count"] >= 1
        assert {run["config"] for run in payload["runs"]} >= {
            "none/x1",
            "index/x1",
            "full/x1",
            "full/x2",
            "full/x4",
        }

    def test_kernels_study(self, tmp_path, monkeypatch):
        import json

        from repro.bench import experiments
        from repro.kernels import flat

        json_path = tmp_path / "BENCH_kernels.json"
        monkeypatch.setattr(experiments, "KERNELS_JSON_PATH", json_path)
        report = run_experiment("kernels_study", scale=MICRO)
        assert "bit-identical" in report
        assert "owner-exact (maxsum) speedup" in report
        # The experiment restores the toggle even though it forces both
        # modes while timing.
        assert flat._FORCED is None
        payload = json.loads(json_path.read_text())
        assert payload["cpu_count"] >= 1
        assert {row["solver"] for row in payload["solvers"]} == {
            "maxsum-exact",
            "dia-exact",
            "maxsum-appro",
            "dia-appro",
        }
        for row in payload["solvers"]:
            assert row["scalar_s"] > 0 and row["kernels_s"] > 0
        assert {row["kernel"] for row in payload["kernels"]} >= {
            "pairwise_max",
            "distances_from",
        }

    def test_signatures_study(self, tmp_path, monkeypatch):
        import json

        from repro.bench import experiments
        from repro.index import signatures

        json_path = tmp_path / "BENCH_signatures.json"
        monkeypatch.setattr(experiments, "SIGNATURES_JSON_PATH", json_path)
        report = run_experiment("signatures_study", scale=MICRO)
        assert "bit-identical" in report
        assert "best workload speedup" in report
        # The experiment restores the toggle even though it forces both
        # modes while timing.
        assert signatures._FORCED is None
        payload = json.loads(json_path.read_text())
        assert payload["cpu_count"] >= 1
        assert {row["workload"] for row in payload["workloads"]} == {
            "maxsum-exact",
            "maxsum-appro",
            "boolean-knn",
            "early-break-scan",
            "circle-sweep",
        }
        for row in payload["workloads"]:
            assert row["baseline_s"] > 0 and row["signatures_s"] > 0
