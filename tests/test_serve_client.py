"""The load generator: workloads, retry-on-shed, summary bookkeeping."""

from __future__ import annotations

import pytest

from repro.data.generators import uniform_dataset
from repro.errors import InvalidParameterError
from repro.serve import ServerConfig, create_server
from repro.serve.client import LoadClient, load_workload_file, random_workload


@pytest.fixture(scope="module")
def serve_dataset():
    return uniform_dataset(120, 12, mean_keywords=2.5, seed=23, name="client")


def start_server(dataset, **overrides):
    config = ServerConfig(port=0, **overrides)
    server = create_server(dataset, config)
    server.serve_background()
    return server


class TestWorkloadFile:
    def test_parses_tsv(self, tmp_path):
        path = tmp_path / "load.tsv"
        path.write_text(
            "# a comment\n"
            "10.0\t20.0\tmuseum spa\n"
            "\n"
            "30.0\t40.0\tgym\n"
        )
        payloads = load_workload_file(str(path))
        assert payloads == [
            {"x": 10.0, "y": 20.0, "keywords": ["museum", "spa"]},
            {"x": 30.0, "y": 40.0, "keywords": ["gym"]},
        ]

    def test_rejects_short_lines(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("10.0\t20.0\n")
        with pytest.raises(InvalidParameterError):
            load_workload_file(str(path))

    def test_rejects_empty_files(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("# nothing here\n")
        with pytest.raises(InvalidParameterError):
            load_workload_file(str(path))


class TestRandomWorkload:
    def test_seed_determinism_and_bounds(self, serve_dataset):
        server = start_server(serve_dataset)
        try:
            client = LoadClient(server.url, seed=3)
            first = random_workload(client, 12, seed=3)
            second = random_workload(client, 12, seed=3)
            assert first == second
            other = random_workload(client, 12, seed=4)
            assert other != first
            mbr = serve_dataset.mbr()
            for payload in first:
                assert mbr.min_x <= payload["x"] <= mbr.max_x
                assert mbr.min_y <= payload["y"] <= mbr.max_y
                assert 1 <= len(payload["keywords"]) <= 3
        finally:
            server.shutdown()
            server.server_close()


class TestRetryOnShed:
    def test_drain_mode_sheds_then_client_gives_up(self, serve_dataset):
        server = start_server(serve_dataset, max_inflight=0, retry_after_s=0.001)
        try:
            client = LoadClient(
                server.url,
                seed=1,
                max_retries=2,
                backoff_base_s=0.001,
                backoff_cap_s=0.002,
            )
            record = client.query({"x": 1.0, "y": 1.0, "keywords": ["w"]})
            assert record.outcome == "shed"
            assert record.status == 429
            assert record.attempts == 3  # initial + max_retries
            summary = client.summary
            assert summary.responses_by_outcome["shed"] == 3
            assert summary.retries == 2
            assert summary.queries_by_final_outcome["shed"] == 1
            # every shed response the client saw was counted server-side
            stats = client.get_json("/stats")
            assert stats["by_outcome"]["shed"] == 3
        finally:
            server.shutdown()
            server.server_close()


class TestConcurrentRun:
    def test_run_reconciles_with_server(self, serve_dataset):
        server = start_server(serve_dataset)
        try:
            client = LoadClient(server.url, seed=9)
            payloads = random_workload(client, 30, seed=9)
            records = client.run(payloads, concurrency=6)
            assert len(records) == len(payloads)
            assert all(record.status == 200 for record in records)
            assert client.summary.infeasible_answers == 0
            stats = client.get_json("/stats")
            for outcome, count in stats["by_outcome"].items():
                assert client.summary.responses_by_outcome.get(outcome, 0) == count
        finally:
            server.shutdown()
            server.server_close()

    def test_summary_dict_shape(self, serve_dataset):
        server = start_server(serve_dataset)
        try:
            client = LoadClient(server.url, seed=2)
            client.run(random_workload(client, 5, seed=2), concurrency=2)
            summary = client.summary.as_dict()
            assert summary["requests"] == 5
            assert summary["latency"]["count"] == 5
            assert set(summary["latency"]) == {
                "count", "p50_ms", "p90_ms", "p99_ms", "max_ms",
            }
            assert summary["transport_errors"] == 0
        finally:
            server.shutdown()
            server.server_close()


class TestClientValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            LoadClient("http://127.0.0.1:1", timeout_s=0)
        with pytest.raises(InvalidParameterError):
            LoadClient("http://127.0.0.1:1", max_retries=-1)
        client = LoadClient("http://127.0.0.1:1")
        with pytest.raises(InvalidParameterError):
            client.run([], concurrency=0)

    def test_transport_errors_are_tallied(self):
        # nothing listens on this port: the query fails at the socket
        client = LoadClient("http://127.0.0.1:9", timeout_s=0.2)
        record = client.query({"x": 0.0, "y": 0.0, "keywords": ["w"]})
        assert record.status == 0
        assert record.outcome.startswith("transport_error:")
        assert client.summary.transport_errors == 1
