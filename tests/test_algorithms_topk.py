"""Tests for the top-k CoSKQ extension."""

import pytest

from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.cover import iter_covers
from repro.algorithms.maxsum_exact import MaxSumExact
from repro.algorithms.topk import TopKCoSKQ
from repro.cost.functions import MaxSumCost, MinMaxCost, SumCost
from repro.errors import InvalidParameterError

TOL = 1e-6


class TestValidation:
    def test_min_costs_rejected(self, tiny_context):
        with pytest.raises(InvalidParameterError):
            TopKCoSKQ(tiny_context, MinMaxCost())

    def test_k_must_be_positive(self, tiny_context):
        with pytest.raises(InvalidParameterError):
            TopKCoSKQ(tiny_context, MaxSumCost(), k=0)


class TestRanking:
    def test_first_result_is_the_optimum(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            best = MaxSumExact(tiny_context).solve(query)
            topk = TopKCoSKQ(tiny_context, MaxSumCost(), k=3).solve_topk(query)
            assert abs(topk[0].cost - best.cost) <= TOL * max(1.0, best.cost)

    def test_costs_ascend_and_sets_distinct(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            topk = TopKCoSKQ(tiny_context, MaxSumCost(), k=5).solve_topk(query)
            costs = [r.cost for r in topk]
            assert costs == sorted(costs)
            keys = {r.object_ids for r in topk}
            assert len(keys) == len(topk)
            for result in topk:
                assert result.is_feasible_for(query)

    def test_matches_oracle_ranking(self, tiny_context, tiny_queries):
        # Enumerate all irredundant covers, rank by cost, compare the
        # top-3 cost sequence.
        cost = MaxSumCost()
        for query in tiny_queries[:4]:
            relevant = tiny_context.inverted.relevant_objects(query.keywords)
            all_costs = sorted(
                cost.evaluate(query, c) for c in iter_covers(query.keywords, relevant)
            )
            topk = TopKCoSKQ(tiny_context, MaxSumCost(), k=3).solve_topk(query)
            for got, expected in zip((r.cost for r in topk), all_costs):
                assert abs(got - expected) <= TOL * max(1.0, expected)

    def test_k_larger_than_universe(self, tiny_context, tiny_queries):
        query = tiny_queries[0]
        relevant = tiny_context.inverted.relevant_objects(query.keywords)
        total = sum(1 for _ in iter_covers(query.keywords, relevant))
        topk = TopKCoSKQ(tiny_context, MaxSumCost(), k=total + 50).solve_topk(query)
        assert len(topk) == total

    def test_sum_cost_ranking(self, tiny_context, tiny_queries):
        for query in tiny_queries[:3]:
            optimal = BruteForceExact(tiny_context, SumCost()).solve(query)
            topk = TopKCoSKQ(tiny_context, SumCost(), k=2).solve_topk(query)
            assert abs(topk[0].cost - optimal.cost) <= TOL * max(1.0, optimal.cost)
            if len(topk) > 1:
                assert topk[1].cost >= topk[0].cost - TOL

    def test_solve_returns_best(self, tiny_context, tiny_queries):
        query = tiny_queries[0]
        algo = TopKCoSKQ(tiny_context, MaxSumCost(), k=4)
        assert algo.solve(query).cost == pytest.approx(
            algo.solve_topk(query)[0].cost
        )
