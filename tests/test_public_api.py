"""The public API surface: __all__ consistency and import hygiene."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.model",
    "repro.index",
    "repro.kernels",
    "repro.cost",
    "repro.algorithms",
    "repro.data",
    "repro.bench",
    "repro.network",
    "repro.utils",
    "repro.analysis",
    "repro.exec",
    "repro.parallel",
    "repro.serve",
]


class TestAllConsistency:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), name
        for symbol in module.__all__:
            assert hasattr(module, symbol), "%s.%s missing" % (name, symbol)

    @pytest.mark.parametrize("name", PACKAGES)
    def test_no_duplicate_exports(self, name):
        module = importlib.import_module(name)
        assert len(module.__all__) == len(set(module.__all__)), name

    def test_every_submodule_importable(self):
        failures = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            try:
                importlib.import_module(info.name)
            except Exception as exc:  # pragma: no cover - report which one
                failures.append((info.name, exc))
        assert not failures, failures


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_packages_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), name

    def test_public_classes_documented(self):
        undocumented = []
        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append(symbol)
        assert not undocumented, undocumented


class TestTopLevelConvenience:
    def test_headline_workflow_names_present(self):
        for symbol in (
            "Dataset",
            "Query",
            "SearchContext",
            "MaxSumExact",
            "MaxSumAppro",
            "DiaExact",
            "DiaAppro",
            "hotel_like",
            "generate_queries",
        ):
            assert symbol in repro.__all__
