"""Unit and property tests for the point/distance primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import (
    Point,
    centroid,
    diameter,
    distance,
    distance_xy,
    farthest_pair,
    midpoint,
    squared_distance,
)

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_to_known_values(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_squared_distance_matches_square(self):
        a, b = Point(1, 2), Point(4, 6)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple_and_iter(self):
        p = Point(7, 8)
        assert p.as_tuple() == (7, 8)
        assert list(p) == [7, 8]

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_points_are_hashable_and_equal_by_value(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1  # type: ignore[misc]


class TestFreeFunctions:
    def test_distance_matches_method(self):
        a, b = Point(0, 1), Point(1, 0)
        assert distance(a, b) == pytest.approx(a.distance_to(b))

    def test_distance_xy(self):
        assert distance_xy(0, 0, 3, 4) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert squared_distance(Point(0, 0), Point(2, 0)) == pytest.approx(4.0)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_diameter_of_fewer_than_two_points(self):
        assert diameter([]) == 0.0
        assert diameter([Point(5, 5)]) == 0.0

    def test_diameter_known_value(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 2)]
        assert diameter(pts) == pytest.approx(math.sqrt(5))

    def test_farthest_pair_indices(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 2)]
        i, j, d = farthest_pair(pts)
        assert (i, j) == (1, 2)
        assert d == pytest.approx(math.sqrt(5))

    def test_farthest_pair_degenerate(self):
        assert farthest_pair([Point(0, 0)]) == (0, 0, 0.0)


class TestMetricProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(points, points)
    def test_non_negativity_and_identity(self, a, b):
        d = distance(a, b)
        assert d >= 0.0
        if a == b:
            assert d == 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-7

    @given(st.lists(points, min_size=2, max_size=8))
    def test_diameter_is_max_pairwise(self, pts):
        expected = max(
            distance(pts[i], pts[j])
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
        )
        assert diameter(pts) == pytest.approx(expected)
