"""The chaos harness: deterministic fault injection end to end.

The headline scenario mirrors the robustness acceptance criterion: an
exact solver forced over its work budget on an index with one flaky
failure must complete through the fallback chain with a feasible
result and full degradation provenance, inside the configured deadline;
killing the whole chain must surface as one typed
``ExecutionFailedError`` — never a raw ``RuntimeError``.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import make_algorithm
from repro.errors import (
    ExecutionFailedError,
    InjectedFaultError,
    InvalidParameterError,
)
from repro.exec import (
    ChaosIndex,
    ExecutionPolicy,
    FallbackChain,
    FaultPlan,
    ManualClock,
    ResilientExecutor,
    chaos_context,
)
from repro.index.protocol import SpatialTextIndex


def _drive(plan, calls, method="keyword_nn", clock=None):
    """Feed ``calls`` sequential calls through a plan; return failure mask."""
    clock = clock if clock is not None else ManualClock()
    mask = []
    for number in range(1, calls + 1):
        try:
            plan.before_call(method, number, clock)
        except InjectedFaultError:
            mask.append(True)
        else:
            mask.append(False)
    return mask


class TestFaultPlan:
    def test_fail_nth_fires_once_per_listed_call(self):
        plan = FaultPlan().fail_nth(2, 4)
        assert _drive(plan, 5) == [False, True, False, True, False]
        assert plan.injected == [2, 4]

    def test_fail_nth_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan().fail_nth(0)

    def test_flaky_once_heals_after_first_call(self):
        plan = FaultPlan().flaky_once("keyword_nn")
        assert _drive(plan, 3) == [True, False, False]
        # Other methods are untouched.
        assert _drive(
            FaultPlan().flaky_once("keyword_nn"), 2, method="objects_in_circle"
        ) == [False, False]

    def test_fail_method_is_permanent(self):
        plan = FaultPlan().fail_method("keyword_nn")
        assert _drive(plan, 4) == [True] * 4

    def test_fail_rate_is_seed_deterministic(self):
        mask_a = _drive(FaultPlan(seed=7).fail_rate(0.5), 50)
        mask_b = _drive(FaultPlan(seed=7).fail_rate(0.5), 50)
        mask_c = _drive(FaultPlan(seed=8).fail_rate(0.5), 50)
        assert mask_a == mask_b
        assert mask_a != mask_c  # different seed, different schedule
        assert any(mask_a) and not all(mask_a)

    def test_fail_rate_validates_probability(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan().fail_rate(1.5)

    def test_latency_advances_the_clock(self):
        clock = ManualClock()
        plan = FaultPlan().latency(0.25, every=2)
        start = clock.now()
        _drive(plan, 4, clock=clock)
        # Calls 2 and 4 each slept 0.25 virtual seconds.
        assert clock.now() - start == pytest.approx(0.5)

    def test_latency_validates_parameters(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan().latency(-1.0)
        with pytest.raises(InvalidParameterError):
            FaultPlan().latency(0.1, every=0)


class TestChaosIndex:
    def test_conforms_to_index_protocol(self, tiny_context):
        wrapper = ChaosIndex(tiny_context.index, FaultPlan())
        assert isinstance(wrapper, SpatialTextIndex)
        assert len(wrapper) == len(tiny_context.index)

    def test_direct_build_is_a_usage_error(self, tiny_dataset):
        with pytest.raises(InvalidParameterError):
            ChaosIndex.build(tiny_dataset)

    def test_call_log_records_every_interception(
        self, tiny_context, tiny_queries
    ):
        plan = FaultPlan()
        ctx = chaos_context(tiny_context, plan)
        make_algorithm("nn-set", ctx).solve(tiny_queries[0])
        index = ctx.index
        assert index.calls >= 1
        assert index.call_log[0][0] == "nearest_neighbor_set"
        assert [number for _, number in index.call_log] == list(
            range(1, index.calls + 1)
        )

    def test_fault_free_chaos_run_matches_production(
        self, tiny_context, tiny_queries
    ):
        ctx = chaos_context(tiny_context, FaultPlan())
        for query in tiny_queries[:3]:
            chaotic = make_algorithm("maxsum-appro", ctx).solve(query)
            plain = make_algorithm("maxsum-appro", tiny_context).solve(query)
            assert chaotic.cost == pytest.approx(plain.cost)

    def test_injected_fault_reaches_the_solver(self, tiny_context, tiny_queries):
        ctx = chaos_context(
            tiny_context, FaultPlan().fail_method("nearest_neighbor_set")
        )
        with pytest.raises(InjectedFaultError):
            make_algorithm("nn-set", ctx).solve(tiny_queries[0])


class TestResilienceUnderChaos:
    def test_acceptance_budget_blowup_plus_flaky_index(
        self, tiny_context, tiny_queries
    ):
        """The scripted acceptance scenario from the robustness issue.

        maxsum-exact is forced over its work budget, the index fails
        exactly once (flaky), and the chain still answers feasibly with
        complete degradation provenance, inside the virtual deadline.
        """
        clock = ManualClock()
        plan = FaultPlan(seed=3).flaky_once("nearest_neighbor_set")
        ctx = chaos_context(tiny_context, plan, clock=clock)
        chain = FallbackChain.of(ctx, "maxsum-exact", "maxsum-appro", "nn-set")
        policy = ExecutionPolicy(
            deadline_ms=500.0, work_budget=3, max_retries=1,
            checkpoint_interval=8,
        )
        executor = ResilientExecutor(chain, policy, clock=clock)
        query = tiny_queries[1]

        result = executor.solve(query)

        assert result.is_feasible_for(query)
        prov = result.provenance
        assert prov.degraded is True
        assert prov.answered_by == "nn-set"
        failed_stages = [f.stage for f in prov.failures]
        assert failed_stages == ["maxsum-exact", "maxsum-appro"]
        # The flaky fault fired exactly once, somewhere in the chain.
        assert len(plan.injected) == 1
        # The answer landed inside the (virtual) deadline.
        assert prov.elapsed_ms is not None
        assert prov.elapsed_ms <= policy.deadline_ms

    def test_acceptance_dead_chain_is_one_typed_error(
        self, tiny_context, tiny_queries
    ):
        """Killing every stage yields ExecutionFailedError, never RuntimeError."""
        plan = (
            FaultPlan()
            .fail_method("nearest_neighbor_set")
            .fail_method("keyword_nn")
            .fail_method("nearest_relevant_iter")
            .fail_method("relevant_in_circle")
            .fail_method("relevant_in_region")
            .fail_method("objects_in_circle")
        )
        ctx = chaos_context(tiny_context, plan)
        chain = FallbackChain.of(ctx, "maxsum-exact", "maxsum-appro", "nn-set")
        executor = ResilientExecutor(
            chain, ExecutionPolicy(always_answer=False)
        )
        try:
            executor.solve(tiny_queries[0])
        except ExecutionFailedError as err:
            assert not isinstance(err, RuntimeError)
            assert len(err.failures) == len(chain)
            assert all(
                f.error_type == "InjectedFaultError" for f in err.failures
            )
        else:
            pytest.fail("a fully dead chain must raise ExecutionFailedError")

    def test_retry_heals_flaky_fault_without_degrading(
        self, tiny_context, tiny_queries
    ):
        plan = FaultPlan().flaky_once("nearest_neighbor_set")
        ctx = chaos_context(tiny_context, plan)
        chain = FallbackChain.of(ctx, "maxsum-appro", "nn-set")
        executor = ResilientExecutor(chain, ExecutionPolicy(max_retries=1))
        result = executor.solve(tiny_queries[0])
        prov = result.provenance
        assert prov.answered_by == "maxsum-appro"
        assert prov.degraded is False
        assert prov.attempts == 2

    def test_virtual_latency_trips_the_deadline(
        self, tiny_context, tiny_queries
    ):
        """Injected latency plus a virtual clock: deadline tests, no sleeping."""
        clock = ManualClock()
        plan = FaultPlan().latency(1.0, every=1)  # every index call costs 1s
        ctx = chaos_context(tiny_context, plan, clock=clock)
        chain = FallbackChain.of(ctx, "maxsum-exact", "nn-set")
        policy = ExecutionPolicy(deadline_ms=500.0, checkpoint_interval=1)
        executor = ResilientExecutor(chain, policy, clock=clock)
        result = executor.solve(tiny_queries[0])
        prov = result.provenance
        assert prov.degraded is True
        assert prov.answered_by == "nn-set"  # exempt last stage still answers
        assert prov.failures[0].error_type == "DeadlineExceededError"

    def test_same_seed_same_outcome_end_to_end(self, tiny_context, tiny_queries):
        """A full chaos run is reproducible from its seed."""

        def run():
            plan = FaultPlan(seed=13).fail_rate(0.2)
            ctx = chaos_context(tiny_context, plan)
            chain = FallbackChain.of(ctx, "maxsum-appro", "nn-set")
            executor = ResilientExecutor(chain, ExecutionPolicy(max_retries=2))
            outcomes = []
            for query in tiny_queries[:5]:
                result = executor.solve(query)
                outcomes.append(
                    (
                        result.provenance.answered_by,
                        result.provenance.attempts,
                        round(result.cost, 9),
                    )
                )
            return outcomes, list(plan.injected)

        assert run() == run()


class TestChaosAcrossWorkers:
    """Chaos interplay with the parallel engine (ISSUE: seed-determinism).

    The injected failure set of a chaos batch must be a pure function of
    (batch, seed) — the per-query fault plans built by
    :class:`~repro.parallel.spec.ChaosSpec` make it independent of how
    queries interleave across workers.
    """

    def _run(self, dataset, queries, workers, chaos):
        from repro.parallel import (
            CacheSpec,
            ParallelBatchExecutor,
            SolverSpec,
            WorkerEnv,
        )

        env = WorkerEnv(
            dataset=dataset, cache=CacheSpec(mode="index"), chaos=chaos
        )
        spec = SolverSpec(algorithm="maxsum-appro")
        with ParallelBatchExecutor(env, spec, workers=workers) as engine:
            return engine.run(queries)

    def test_failure_set_is_worker_count_independent(
        self, tiny_dataset, tiny_queries
    ):
        from repro.parallel import ChaosSpec

        chaos = ChaosSpec(seed=5, fail_rate=0.35)
        batch = list(tiny_queries)
        reference = None
        for workers in (1, 2, 4):
            report = self._run(tiny_dataset, batch, workers, chaos)
            outcome = (
                [(f.index, f.error_type) for f in report.failures],
                [
                    round(r.cost, 9) if r is not None else None
                    for r in report.results
                ],
            )
            if reference is None:
                reference = outcome
                assert report.failed > 0, "fail_rate=0.35 injected nothing"
                assert report.answered > 0, "every query failed; too coarse"
            else:
                assert outcome == reference, (
                    "chaos outcome depends on worker count (workers=%d)"
                    % workers
                )

    def test_chaos_failures_are_typed_injected_faults(
        self, tiny_dataset, tiny_queries
    ):
        from repro.parallel import ChaosSpec

        chaos = ChaosSpec(seed=5, fail_rate=0.35)
        report = self._run(tiny_dataset, list(tiny_queries), 2, chaos)
        for failure in report.failures:
            assert failure.error_type == "InjectedFaultError", failure

    def test_per_query_plans_differ_across_queries(self):
        from repro.parallel import ChaosSpec

        chaos = ChaosSpec(seed=9, fail_rate=0.5)
        masks = [
            _drive(chaos.plan_for(index), 20) for index in range(4)
        ]
        assert len({tuple(m) for m in masks}) > 1, (
            "per-query plans collapsed to one schedule"
        )
        assert [_drive(chaos.plan_for(2), 20)] == [masks[2]]

    def test_result_cache_under_chaos_is_rejected(self, tiny_dataset):
        from repro.parallel import CacheSpec, ChaosSpec, WorkerEnv

        with pytest.raises(InvalidParameterError):
            WorkerEnv(
                dataset=tiny_dataset,
                cache=CacheSpec(mode="full"),
                chaos=ChaosSpec(seed=1, fail_rate=0.1),
            )
