"""Metamorphic properties of the memoizing caches.

The caches must be *invisible* except in speed: permuting a batch,
re-running it, or answering it through a cache-wrapped index must leave
every per-query answer unchanged while actually exercising the cache
(hit rates are asserted positive, so these tests cannot silently pass
against a disconnected cache).
"""

from __future__ import annotations

import random

import pytest

from conftest import make_random_instance
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.index import signatures
from repro.index.cache import CacheStats, CachingIndex
from repro.index.protocol import SpatialTextIndex
from repro.parallel import (
    CacheSpec,
    CachedSolver,
    ParallelBatchExecutor,
    ResultCache,
    SolverSpec,
    WorkerEnv,
)

TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def instance():
    return make_random_instance(7, num_objects=50, vocab=8)


def costs_by_query(report, batch):
    return {batch[i]: (r.cost if r is not None else None) for i, r in enumerate(report.results)}


class TestCachingIndexConformance:
    def test_structural_protocol_conformance(self, instance):
        _, context, _ = instance
        wrapped = CachingIndex(context.index)
        assert isinstance(wrapped, SpatialTextIndex)

    def test_wrapped_context_answers_identically(self, instance):
        """Every registry solver: cache-wrapped index == plain index."""
        _, context, queries = instance
        cache = CachingIndex(context.index)
        cached_context = context.with_index(cache)
        for name in ALGORITHM_NAMES:
            plain = make_algorithm(name, context)
            cached = make_algorithm(name, cached_context)
            for query in queries:
                expected = plain.solve(query)
                actual = cached.solve(query)
                assert abs(expected.cost - actual.cost) <= TOLERANCE, name
                assert {o.oid for o in actual.objects} == {
                    o.oid for o in expected.objects
                }, name
        assert cache.stats.hits > 0, "suite never exercised the cache"

    def test_repeat_solves_hit_the_cache(self, instance):
        _, context, queries = instance
        cache = CachingIndex(context.index)
        solver = make_algorithm("maxsum-appro", context.with_index(cache))
        first = [solver.solve(q).cost for q in queries]
        before = cache.stats.hits
        second = [solver.solve(q).cost for q in queries]
        assert first == second
        assert cache.stats.hits > before
        assert 0.0 < cache.stats.hit_rate <= 1.0

    def test_caller_mutation_cannot_poison_entries(self, instance):
        """Sorting/clearing a returned list must not corrupt later hits."""
        _, context, queries = instance
        cache = CachingIndex(context.index)
        query = queries[0]
        nnset = cache.nearest_neighbor_set(query)
        pristine = dict(nnset)
        nnset.clear()
        again = cache.nearest_neighbor_set(query)
        assert again == pristine

    def test_capacity_bounds_and_eviction_counting(self, instance):
        _, context, queries = instance
        cache = CachingIndex(context.index, capacity=2)
        for query in queries:
            cache.nearest_neighbor_set(query)
            for keyword in sorted(query.keywords):
                cache.keyword_nn(query.location, keyword)
        assert len(cache._entries) <= 2
        assert cache.stats.evictions > 0


class TestSignatureToggleKeysUnchanged:
    """Cache keys must be oblivious to the keyword-signature toggle.

    The signature layer changes how keyword predicates are *evaluated*,
    never what is asked: memo keys are built from queries, points and
    frozen keyword sets, not from masks.  So entries warmed with
    signatures off must be served (as hits, with identical answers) to
    a reader running with signatures on — anything else would mean the
    toggle silently partitions the caches and the parallel engine's
    warm-cache numbers would be comparing different things.
    """

    @pytest.fixture(autouse=True)
    def restore_toggle(self):
        yield
        signatures.set_enabled(None)

    def test_caching_index_entries_survive_toggle_flip(self, instance):
        _, context, queries = instance
        cache = CachingIndex(context.index)
        signatures.set_enabled(False)
        warmed = {
            q: (cache.nearest_neighbor_set(q), cache.relevant_objects(q.keywords))
            for q in queries
        }
        misses = cache.stats.misses
        signatures.set_enabled(True)
        before = cache.stats.hits
        for q in queries:
            assert cache.nearest_neighbor_set(q) == warmed[q][0]
            assert cache.relevant_objects(q.keywords) == warmed[q][1]
        assert cache.stats.hits == before + 2 * len(queries)
        assert cache.stats.misses == misses, "toggle flip must not re-key"

    def test_result_cache_entries_survive_toggle_flip(self, instance):
        _, context, queries = instance
        cache = ResultCache(capacity=16)
        solver = CachedSolver(make_algorithm("maxsum-appro", context), cache)
        signatures.set_enabled(False)
        warmed = [solver.solve(q) for q in queries]
        signatures.set_enabled(True)
        for query, first in zip(queries, warmed):
            assert solver.solve(query) is first
        assert cache.stats.hits == len(queries)


class TestBatchMetamorphic:
    @pytest.mark.parametrize("mode", ["index", "full"])
    def test_shuffled_batch_same_answers(self, instance, mode):
        """Permutation invariance: per-query costs ignore batch order."""
        dataset, _, queries = instance
        batch = [queries[i % len(queries)] for i in range(12)]
        shuffled = list(batch)
        random.Random(42).shuffle(shuffled)
        env = WorkerEnv(dataset=dataset, cache=CacheSpec(mode=mode))
        spec = SolverSpec(algorithm="maxsum-appro")
        with ParallelBatchExecutor(env, spec) as engine:
            in_order = engine.run(batch)
        with ParallelBatchExecutor(env, spec) as engine:
            permuted = engine.run(shuffled)
        assert costs_by_query(in_order, batch) == costs_by_query(
            permuted, shuffled
        )
        assert in_order.cache_stats is not None
        hits = in_order.cache_stats.get("index_hits", 0) + in_order.cache_stats.get(
            "result_hits", 0
        )
        assert hits > 0, "skewed batch never hit the cache"

    def test_cached_batch_equals_uncached_batch(self, instance):
        dataset, _, queries = instance
        batch = [queries[i % len(queries)] for i in range(9)]
        spec = SolverSpec(algorithm="maxsum-exact")
        with ParallelBatchExecutor(WorkerEnv(dataset=dataset), spec) as engine:
            plain = engine.run(batch)
        env = WorkerEnv(dataset=dataset, cache=CacheSpec(mode="full"))
        with ParallelBatchExecutor(env, spec) as engine:
            cached = engine.run(batch)
        assert [r.cost for r in plain.results] == [r.cost for r in cached.results]
        assert cached.cache_stats["result_hits"] > 0
        assert plain.cache_stats is None


class TestResultCache:
    def test_duplicate_queries_reuse_answers(self, instance):
        _, context, queries = instance
        cache = ResultCache(capacity=16)
        solver = CachedSolver(make_algorithm("maxsum-appro", context), cache)
        query = queries[0]
        first = solver.solve(query)
        second = solver.solve(query)
        assert second is first, "duplicate solve should return the cached object"
        assert cache.stats.hits == 1

    def test_distinct_solvers_do_not_collide(self, instance):
        """Same query, different algorithm → different cache entries."""
        _, context, queries = instance
        cache = ResultCache(capacity=16)
        exact = CachedSolver(make_algorithm("maxsum-exact", context), cache)
        appro = CachedSolver(make_algorithm("maxsum-appro", context), cache)
        query = queries[0]
        exact_result = exact.solve(query)
        appro_result = appro.solve(query)
        assert len(cache) == 2
        assert exact.solve(query) is exact_result
        assert appro.solve(query) is appro_result

    def test_eviction_respects_capacity(self, instance):
        _, context, queries = instance
        cache = ResultCache(capacity=1)
        solver = CachedSolver(make_algorithm("maxsum-appro", context), cache)
        for query in queries:
            solver.solve(query)
        assert len(cache) == 1
        assert cache.stats.evictions == len(queries) - 1

    def test_stats_snapshot_shape(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert stats.as_dict(prefix="x_") == {
            "x_hits": 3,
            "x_misses": 1,
            "x_evictions": 0,
            "x_uncached": 0,
        }
