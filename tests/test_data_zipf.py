"""Tests for the Zipf sampler."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.zipf import ZipfSampler


class TestZipfSampler:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=-1.0)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, 1.0)
        total = sum(sampler.probability(k) for k in range(50))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(20, 1.2)
        probs = [sampler.probability(k) for k in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_probability_out_of_range(self):
        sampler = ZipfSampler(5)
        with pytest.raises(ValueError):
            sampler.probability(5)
        with pytest.raises(ValueError):
            sampler.probability(-1)

    def test_zero_exponent_is_uniform(self):
        sampler = ZipfSampler(10, exponent=0.0)
        for k in range(10):
            assert sampler.probability(k) == pytest.approx(0.1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(7, 1.0)
        rng = random.Random(0)
        for _ in range(500):
            assert 0 <= sampler.sample(rng) < 7

    def test_skew_shows_in_samples(self):
        sampler = ZipfSampler(100, 1.0)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(5000)]
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 90)
        assert head > 5 * max(tail, 1)

    def test_sample_distinct_counts(self):
        sampler = ZipfSampler(30, 1.0)
        rng = random.Random(2)
        got = sampler.sample_distinct(rng, 5)
        assert len(got) == len(set(got)) == 5
        assert got == sorted(got)

    def test_sample_distinct_caps_at_support(self):
        sampler = ZipfSampler(4, 1.0)
        rng = random.Random(3)
        got = sampler.sample_distinct(rng, 10)
        assert got == [0, 1, 2, 3]

    def test_expected_frequencies(self):
        sampler = ZipfSampler(5, 1.0)
        freqs = sampler.expected_frequencies(100)
        assert sum(freqs) == pytest.approx(100.0)
        assert freqs[0] > freqs[4]

    @given(st.integers(1, 50), st.integers(0, 1000))
    @settings(max_examples=20)
    def test_sample_distinct_always_valid(self, n, seed):
        sampler = ZipfSampler(n, 1.0)
        rng = random.Random(seed)
        count = min(n, 6)
        got = sampler.sample_distinct(rng, count)
        assert len(got) == count
        assert all(0 <= g < n for g in got)
