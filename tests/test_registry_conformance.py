"""Registry-wide conformance: every registered algorithm actually works.

For each name in ``ALGORITHM_NAMES``, build the algorithm through the
registry factory (paper-default cost), solve a tiny shared instance and
check the result against the brute-force oracle *under the algorithm's
own cost*:

- ``exact = True``  → cost equals the optimum;
- ``exact = False`` → cost is ≥ the optimum and, when the algorithm
  declares a ratio for its default cost, ≤ ratio × optimum.

This is the static linter's R1 made dynamic: registration implies the
algorithm is runnable and honest about its exactness claim.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.data.generators import uniform_dataset
from repro.data.queries import generate_queries
from repro.utils.floatcmp import float_geq, float_leq

TOLERANCE = 1e-6

#: Sum-family costs depend only on per-object query distances, so the
#: minimal-subset convention differs; they are checked for optimality
#: under their own cost like everything else.


@pytest.fixture(scope="module")
def instance():
    # Vocab must be >= 8: the query generator samples 3-keyword queries
    # from a percentile band that is too narrow on smaller vocabularies.
    dataset = uniform_dataset(36, 8, mean_keywords=2.0, seed=7, name="conform")
    context = SearchContext(dataset)
    queries = generate_queries(dataset, 3, 3, seed=9)
    return dataset, context, queries


def oracle_cost(context, query, cost):
    return BruteForceExact(context, cost).solve(query).cost


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_registered_algorithm_solves(name, instance):
    _, context, queries = instance
    algorithm = make_algorithm(name, context)
    for query in queries:
        result = algorithm.solve(query)
        assert result.objects, name
        covered = frozenset().union(*(o.keywords for o in result.objects))
        assert query.keywords <= covered, "%s returned infeasible set" % name
        recomputed = algorithm.cost.evaluate(query, result.objects)
        assert abs(recomputed - result.cost) <= TOLERANCE, name


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_exactness_claims_hold(name, instance):
    _, context, queries = instance
    algorithm = make_algorithm(name, context)
    for query in queries:
        result = algorithm.solve(query)
        optimum = oracle_cost(context, query, algorithm.cost)
        if algorithm.exact:
            assert abs(result.cost - optimum) <= TOLERANCE, (
                "%s claims exact but %.9f != optimum %.9f"
                % (name, result.cost, optimum)
            )
        else:
            assert float_geq(result.cost, optimum, TOLERANCE), (
                "%s beat the oracle: %.9f < %.9f" % (name, result.cost, optimum)
            )


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_declared_ratios_respected(name, instance):
    _, context, queries = instance
    algorithm = make_algorithm(name, context)
    ratio = getattr(algorithm, "ratio", None)
    if ratio is None:
        pytest.skip("%s declares no approximation ratio" % name)
    if algorithm.ratio_cost != algorithm.cost.name:
        pytest.skip("%s ratio applies to %s cost" % (name, algorithm.ratio_cost))
    for query in queries:
        result = algorithm.solve(query)
        optimum = oracle_cost(context, query, algorithm.cost)
        assert float_leq(result.cost, ratio * optimum, TOLERANCE), (
            "%s exceeded its %.3f bound: %.9f > %.9f"
            % (name, ratio, result.cost, ratio * optimum)
        )


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_conformance_survives_caching_index(name, instance):
    """Every algorithm over a CachingIndex-wrapped context stays honest.

    Same exactness check as above, but the context's index is wrapped in
    the memoizing :class:`~repro.index.cache.CachingIndex` — each query
    is solved twice so the second pass runs against a warm cache.  A
    cache that returned stale, truncated or aliased lookups would show
    up here as a cost divergence.
    """
    from repro.index.cache import CachingIndex

    _, context, queries = instance
    cache = CachingIndex(context.index)
    plain = make_algorithm(name, context)
    cached = make_algorithm(name, context.with_index(cache))
    for query in queries:
        expected = plain.solve(query).cost
        cold = cached.solve(query).cost
        warm = cached.solve(query).cost
        assert abs(expected - cold) <= TOLERANCE, name
        assert abs(cold - warm) <= TOLERANCE, name
    # Solvers that enumerate the dataset directly (bruteforce, the sum
    # family, topk) legitimately never call the spatial index; everyone
    # else must have actually exercised the cache for this test to mean
    # anything.
    if name not in ("bruteforce", "sum-exact", "sum-greedy", "topk"):
        assert cache.stats.lookups + cache.stats.uncached > 0, name


def test_every_registered_name_is_stable(instance):
    _, context, _ = instance
    # Names round-trip: the instance's declared name matches its key,
    # so benchmark CSVs and the CLI agree on identity.
    for name in ALGORITHM_NAMES:
        algorithm = make_algorithm(name, context)
        assert algorithm.name == name, (name, algorithm.name)
