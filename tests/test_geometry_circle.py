"""Unit and property tests for disks, lenses and rings."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.circle import Circle, Lens, Ring, lens_chord_length
from repro.geometry.mbr import MBR
from repro.geometry.point import Point

coords = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)
radii = st.floats(0, 500, allow_nan=False, allow_infinity=False)
circles = st.builds(Circle, points, radii)


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_contains_boundary_closed(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.contains(Point(3, 4))
        assert c.contains(Point(5, 0))
        assert not c.contains(Point(5.001, 0))

    def test_contains_circle(self):
        outer = Circle(Point(0, 0), 5.0)
        assert outer.contains_circle(Circle(Point(1, 0), 2.0))
        assert not outer.contains_circle(Circle(Point(4, 0), 2.0))

    def test_intersects(self):
        a = Circle(Point(0, 0), 2.0)
        assert a.intersects(Circle(Point(3, 0), 1.5))
        assert a.intersects(Circle(Point(4, 0), 2.0))  # tangent
        assert not a.intersects(Circle(Point(5, 0), 2.0))

    def test_intersects_mbr(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.intersects_mbr(MBR(0.5, 0.5, 2, 2))
        assert not c.intersects_mbr(MBR(2, 2, 3, 3))

    def test_contains_mbr(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.contains_mbr(MBR(-1, -1, 1, 1))
        assert not c.contains_mbr(MBR(-1, -1, 5, 5))

    def test_mbr(self):
        r = Circle(Point(1, 2), 3.0).mbr()
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (-2, -1, 4, 5)

    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area() == pytest.approx(4 * math.pi)

    @given(circles, points)
    def test_contains_iff_within_radius(self, c, p):
        assert c.contains(p) == (c.center.distance_to(p) <= c.radius + 0.0)


class TestLensChord:
    def test_empty_lens_when_far(self):
        assert lens_chord_length(5.0, 2.0) == 0.0

    def test_coincident_centers(self):
        assert lens_chord_length(0.0, 2.0) == pytest.approx(4.0)

    def test_sqrt3_at_equal_distance(self):
        # d == r gives the sqrt(3)·r chord that bounds Dia-Appro.
        assert lens_chord_length(1.0, 1.0) == pytest.approx(math.sqrt(3.0))

    @given(st.floats(0, 10, allow_nan=False), st.floats(0.01, 10, allow_nan=False))
    def test_chord_never_exceeds_diameter(self, d, r):
        assert lens_chord_length(d, r) <= 2 * r + 1e-9


class TestLens:
    def test_contains_is_conjunction(self):
        lens = Lens.of(Circle(Point(0, 0), 2.0), Circle(Point(2, 0), 2.0))
        assert lens.contains(Point(1, 0))
        assert not lens.contains(Point(-1.5, 0))

    def test_empty_lens_detected(self):
        lens = Lens.of(Circle(Point(0, 0), 1.0), Circle(Point(5, 0), 1.0))
        assert lens.is_certainly_empty()

    def test_whole_plane(self):
        lens = Lens.of()
        assert lens.contains(Point(1e9, -1e9))
        assert lens.mbr() is None

    def test_mbr_intersection(self):
        lens = Lens.of(Circle(Point(0, 0), 2.0), Circle(Point(2, 0), 2.0))
        rect = lens.mbr()
        assert rect is not None
        assert rect.min_x == pytest.approx(0.0)
        assert rect.max_x == pytest.approx(2.0)

    @given(points)
    def test_lens_membership_implies_both_disks(self, p):
        a = Circle(Point(0, 0), 100.0)
        b = Circle(Point(50, 0), 100.0)
        lens = Lens.of(a, b)
        if lens.contains(p):
            assert a.contains(p) and b.contains(p)


class TestRing:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Ring(Point(0, 0), 2.0, 1.0)
        with pytest.raises(ValueError):
            Ring(Point(0, 0), -1.0, 1.0)

    def test_contains(self):
        ring = Ring(Point(0, 0), 1.0, 2.0)
        assert ring.contains(Point(1.5, 0))
        assert ring.contains(Point(1, 0))  # inner boundary
        assert ring.contains(Point(2, 0))  # outer boundary
        assert not ring.contains(Point(0.5, 0))
        assert not ring.contains(Point(2.5, 0))

    def test_filter(self):
        ring = Ring(Point(0, 0), 1.0, 2.0)
        pts = [Point(0.5, 0), Point(1.5, 0), Point(3, 0)]
        assert ring.filter(pts) == [Point(1.5, 0)]
