"""Differential gate: the parallel engine must equal the serial engine.

For every registered solver, every worker count in {1, 2, 4} and several
seeded datasets, a :class:`ParallelBatchExecutor` run must be
indistinguishable from a serial :class:`BatchExecutor` run over the same
batch: same solver label, same per-position answered/failed pattern,
same costs, same failure types — including on poisoned batches where
some queries are deliberately infeasible.

One pool is built per (dataset, workers) and reused for all 16 solvers
(the spec rides along with each task), so the suite exercises the
"dataset ships once, solvers rebuild worker-side" design while keeping
pool startup cost linear in worker counts, not solver counts.
"""

from __future__ import annotations

import pytest

from conftest import make_random_instance
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.exec.batch import BatchExecutor, BatchReport
from repro.model.query import Query
from repro.parallel import ParallelBatchExecutor, SolverSpec, WorkerEnv

TOLERANCE = 1e-9

SEEDS = (101, 202, 303)
WORKER_COUNTS = (1, 2, 4)


def poisoned_batch(dataset, queries):
    """The queries plus one that asks for a keyword nothing carries."""
    base = queries[0]
    missing = max(k for o in dataset.objects for k in o.keywords) + 1
    poisoned = Query(base.location, base.keywords | {missing})
    return list(queries) + [poisoned]


@pytest.fixture(scope="module", params=SEEDS)
def batch_instance(request):
    dataset, context, queries = make_random_instance(
        request.param, num_objects=40, vocab=8
    )
    return dataset, context, poisoned_batch(dataset, queries)


@pytest.fixture(scope="module")
def serial_reports(batch_instance):
    """One serial reference report per solver (shared across params)."""
    dataset, context, batch = batch_instance
    reports = {}
    for name in ALGORITHM_NAMES:
        solver = make_algorithm(name, context)
        reports[name] = BatchExecutor(solver).run(batch)
    return reports


def assert_reports_equal(serial: BatchReport, parallel: BatchReport) -> None:
    assert parallel.solver == serial.solver
    assert parallel.total == serial.total
    for position, (expected, actual) in enumerate(
        zip(serial.results, parallel.results)
    ):
        assert (expected is None) == (actual is None), (
            "position %d answered-ness diverged" % position
        )
        if expected is not None:
            assert abs(expected.cost - actual.cost) <= TOLERANCE * max(
                1.0, abs(expected.cost)
            ), "position %d cost diverged" % position
            assert {o.oid for o in actual.objects} == {
                o.oid for o in expected.objects
            }, "position %d object set diverged" % position
    assert [
        (f.index, f.error_type) for f in parallel.failures
    ] == [(f.index, f.error_type) for f in serial.failures]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_every_solver_matches_serial(batch_instance, serial_reports, workers):
    dataset, _, batch = batch_instance
    env = WorkerEnv(dataset=dataset)
    with ParallelBatchExecutor(env, workers=workers) as engine:
        for name in ALGORITHM_NAMES:
            report = engine.run(batch, SolverSpec(algorithm=name))
            assert_reports_equal(serial_reports[name], report)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_resilient_chain_matches_serial(batch_instance, workers):
    """Fallback chains degrade identically whether pooled or serial."""
    from repro.exec import ExecutionPolicy, FallbackChain, ResilientExecutor

    dataset, context, batch = batch_instance
    chain_spec = "maxsum-exact -> maxsum-appro"
    serial_solver = ResilientExecutor(
        FallbackChain.parse(chain_spec, context), ExecutionPolicy()
    )
    serial = BatchExecutor(serial_solver).run(batch)
    env = WorkerEnv(dataset=dataset)
    spec = SolverSpec(chain=chain_spec)
    with ParallelBatchExecutor(env, spec, workers=workers) as engine:
        assert_reports_equal(serial, engine.run(batch))


def test_alignment_invariants_hold(batch_instance):
    """answered + failed == total; results[i] is None ⇔ failure at i."""
    dataset, _, batch = batch_instance
    env = WorkerEnv(dataset=dataset)
    with ParallelBatchExecutor(env, workers=2) as engine:
        report = engine.run(batch, SolverSpec(algorithm="maxsum-appro"))
    assert report.answered + report.failed == report.total
    failed_positions = {f.index for f in report.failures}
    for position, result in enumerate(report.results):
        assert (result is None) == (position in failed_positions)
    assert [f.index for f in report.failures] == sorted(failed_positions)
