"""The adaptive surfaces: coskq-adaptive, coskq-query --adaptive, serving.

Covers the full collect → train → eval loop through the ``coskq-adaptive``
CLI, the ``--adaptive`` / ``--explain`` / ``--model`` flags of
``coskq-query`` (exit-code conventions unchanged), and the serving
daemon's planner integration: decision records serialized into response
provenance and the ``by_planner`` outcome counters on /stats.
"""

from __future__ import annotations

import json

import pytest

from repro.adaptive.cli import main as adaptive_main
from repro.data.generators import uniform_dataset
from repro.errors import InvalidParameterError
from repro.serve import QueryService, ServerConfig
from repro.tools.query_cli import main as query_main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "objects.tsv"
    uniform_dataset(150, 14, mean_keywords=2.5, seed=19, name="adaptive").save(path)
    return str(path)


@pytest.fixture(scope="module")
def frequent_words(dataset_file):
    from repro.model.dataset import Dataset

    dataset = Dataset.load(dataset_file)
    return [
        dataset.vocabulary.word_of(k)
        for k in dataset.keywords_by_frequency()[:3]
    ]


@pytest.fixture(scope="module")
def records_file(tmp_path_factory, dataset_file):
    path = tmp_path_factory.mktemp("adaptive") / "records.jsonl"
    code = adaptive_main(
        [
            "collect",
            dataset_file,
            "--queries", "12",
            "--num-keywords", "3",
            "--algorithm", "maxsum-exact",
            "--out", str(path),
        ]
    )
    assert code == 0
    return str(path)


@pytest.fixture(scope="module")
def model_file(tmp_path_factory, records_file):
    path = tmp_path_factory.mktemp("adaptive") / "model.json"
    assert adaptive_main(
        ["train", records_file, "--out", str(path), "--epochs", "60"]
    ) == 0
    return str(path)


class TestAdaptiveCli:
    def test_collect_writes_jsonl(self, records_file):
        lines = [
            json.loads(line)
            for line in open(records_file, encoding="utf-8")
            if line.strip()
        ]
        assert len(lines) == 12
        assert all(line["format"] == "coskq-adaptive-record/1" for line in lines)

    def test_train_writes_model_json(self, model_file, capsys):
        payload = json.loads(open(model_file, encoding="utf-8").read())
        assert payload["format"] == "coskq-hardness-model/1"
        assert payload["meta"]["samples"] == 12

    def test_eval_reports_metrics(self, records_file, model_file, capsys):
        assert adaptive_main(["eval", records_file, "--model", model_file]) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["samples"] == 12.0
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_usage_errors_exit_2(self, dataset_file, tmp_path, capsys):
        out = str(tmp_path / "r.jsonl")
        assert adaptive_main(
            ["collect", dataset_file, "--demo", "--out", out]
        ) == 2
        assert adaptive_main(
            ["collect", dataset_file, "--queries", "0", "--out", out]
        ) == 2

    def test_missing_records_exit_1(self, tmp_path, capsys):
        assert adaptive_main(
            ["train", str(tmp_path / "nope.jsonl"), "--out", str(tmp_path / "m.json")]
        ) == 1


class TestQueryCliAdaptive:
    def run(self, dataset_file, words, *extra):
        return query_main(
            [dataset_file, "--at", "500", "500", "--keywords", *words, *extra]
        )

    def test_adaptive_answers_match_plain(
        self, dataset_file, frequent_words, capsys
    ):
        assert self.run(dataset_file, frequent_words) == 0
        plain = capsys.readouterr().out
        assert self.run(dataset_file, frequent_words, "--adaptive") == 0
        adaptive = capsys.readouterr().out
        cost = [l for l in plain.splitlines() if "cost" in l]
        assert cost and cost[0] in adaptive

    def test_explain_prints_the_plan(self, dataset_file, frequent_words, capsys):
        assert (
            self.run(dataset_file, frequent_words, "--adaptive", "--explain") == 0
        )
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "hardness" in out

    def test_adaptive_with_trained_model(
        self, dataset_file, frequent_words, model_file, capsys
    ):
        code = self.run(
            dataset_file, frequent_words, "--adaptive", "--model", model_file
        )
        assert code == 0
        assert "cost" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "extra",
        [
            ("--explain",),  # explain requires adaptive
            ("--adaptive", "--fallback", "maxsum-appro"),
            ("--adaptive", "--top", "3"),
        ],
    )
    def test_usage_conflicts_exit_2(self, dataset_file, frequent_words, extra, capsys):
        assert self.run(dataset_file, frequent_words, *extra) == 2


def query_body(words):
    return json.dumps(
        {"x": 500.0, "y": 500.0, "keywords": list(words)}
    ).encode("utf-8")


class TestServeAdaptive:
    @pytest.fixture(scope="class")
    def serve_dataset(self):
        return uniform_dataset(150, 14, mean_keywords=2.5, seed=19, name="serve")

    @pytest.fixture(scope="class")
    def serve_words(self, serve_dataset):
        return [
            serve_dataset.vocabulary.word_of(k)
            for k in serve_dataset.keywords_by_frequency()[:2]
        ]

    def test_planner_decision_serialized(self, serve_dataset, serve_words):
        service = QueryService(serve_dataset, ServerConfig(adaptive=True))
        response = service.handle_query(query_body(serve_words))
        assert response.status == 200
        planner = response.payload["provenance"]["planner"]
        assert planner is not None
        assert set(planner) >= {"solver", "seeder", "hardness", "hard", "features"}

    def test_adaptive_costs_match_plain_service(self, serve_dataset, serve_words):
        plain = QueryService(serve_dataset, ServerConfig())
        adaptive = QueryService(serve_dataset, ServerConfig(adaptive=True))
        body = query_body(serve_words)
        assert (
            adaptive.handle_query(body).payload["cost"]
            == plain.handle_query(body).payload["cost"]
        )

    def test_stats_count_planner_outcomes(self, serve_dataset, serve_words):
        service = QueryService(serve_dataset, ServerConfig(adaptive=True))
        for _ in range(3):
            service.handle_query(query_body(serve_words))
        payload = service.stats_payload()
        assert payload["adaptive"] is True
        by_planner = payload["by_planner"]
        assert sum(by_planner.values()) == 3
        assert set(by_planner) <= {"easy", "hard_seeded", "hard_unseeded"}

    def test_plain_service_has_no_planner(self, serve_dataset, serve_words):
        service = QueryService(serve_dataset, ServerConfig())
        response = service.handle_query(query_body(serve_words))
        assert response.payload["provenance"]["planner"] is None
        assert service.stats_payload()["by_planner"] == {}
        assert service.stats_payload()["adaptive"] is False

    def test_model_path_requires_adaptive(self):
        with pytest.raises(InvalidParameterError):
            ServerConfig(model_path="model.json")

    def test_model_path_loads(self, serve_dataset, serve_words, tmp_path):
        from repro.adaptive import HardnessModel

        path = tmp_path / "model.json"
        path.write_text(HardnessModel.default().to_json())
        service = QueryService(
            serve_dataset, ServerConfig(adaptive=True, model_path=str(path))
        )
        assert service.handle_query(query_body(serve_words)).status == 200
