"""Fallback chains, the resilient executor, and batch isolation.

Covers the degradation semantics end to end against real algorithms on
the tiny fixture dataset: provenance stamping, per-attempt budgets,
global deadlines under a virtual clock, typed whole-chain failure, and
per-query isolation in batch runs.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import make_algorithm
from repro.errors import (
    BudgetExceededError,
    ExecutionFailedError,
    InfeasibleQueryError,
    InjectedFaultError,
    SearchAbortedError,
)
from repro.exec import (
    BatchExecutor,
    ExecutionPolicy,
    ExecutionProvenance,
    FallbackChain,
    ManualClock,
    ResilientExecutor,
    StageFailure,
)
from repro.exec.fallback import stage_ratio
from repro.model.query import Query
from repro.model.result import CoSKQResult


class _StubStage:
    """A scripted solver: each solve() pops the next outcome.

    Outcomes are either CoSKQResult instances (returned) or exceptions
    (raised); exhausting the script is a test bug.
    """

    def __init__(self, name, outcomes):
        self.name = name
        self.outcomes = list(outcomes)
        self.calls = 0
        self.budget = None

    def solve(self, query):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


class _SlowStage:
    """A stage that burns virtual time, then hits a budget checkpoint."""

    def __init__(self, name, clock, seconds):
        self.name = name
        self.clock = clock
        self.seconds = seconds
        self.budget = None

    def solve(self, query):
        self.clock.sleep(self.seconds)
        self.budget.checkpoint()
        raise AssertionError("the checkpoint should have aborted this stage")


@pytest.fixture(scope="module")
def answer(tiny_context, tiny_queries):
    """A genuine feasible result for stub stages to return."""
    return make_algorithm("nn-set", tiny_context).solve(tiny_queries[0])


class TestStageFailure:
    def test_from_exception_extracts_abort_counters(self):
        err = BudgetExceededError(
            "states_expanded", 100, 101, counters={"states_expanded": 101}
        )
        failure = StageFailure.from_exception("maxsum-exact", err)
        assert failure.stage == "maxsum-exact"
        assert failure.error_type == "BudgetExceededError"
        assert failure.counters == {"states_expanded": 101}

    def test_from_exception_plain_error_has_no_counters(self):
        failure = StageFailure.from_exception("s", ValueError("nope"))
        assert failure.counters == {}

    def test_str_mentions_attempts_only_when_retried(self):
        once = StageFailure("s", "E", "m")
        retried = StageFailure("s", "E", "m", attempts=3)
        assert "attempts" not in str(once)
        assert "after 3 attempts" in str(retried)


class TestProvenance:
    def test_describe_direct_answer(self):
        prov = ExecutionProvenance(
            answered_by="maxsum-exact", degraded=False, guaranteed_ratio=1.0
        )
        assert prov.describe() == "answered by maxsum-exact"

    def test_describe_degraded_includes_ratio_and_causes(self):
        prov = ExecutionProvenance(
            answered_by="nn-set",
            degraded=True,
            guaranteed_ratio=3.0,
            failures=(StageFailure("maxsum-exact", "BudgetExceededError", "x"),),
        )
        line = prov.describe()
        assert "degraded to nn-set" in line
        assert "ratio<=3" in line
        assert "maxsum-exact: BudgetExceededError" in line


class TestFallbackChain:
    def test_requires_at_least_one_stage(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            FallbackChain([])

    def test_rejects_stage_without_solve(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            FallbackChain([object()])

    def test_of_builds_registered_algorithms(self, tiny_context):
        chain = FallbackChain.of(tiny_context, "maxsum-exact", "nn-set")
        assert chain.names == ("maxsum-exact", "nn-set")
        assert chain.describe() == "maxsum-exact -> nn-set"
        assert len(chain) == 2

    @pytest.mark.parametrize(
        "spec",
        [
            "maxsum-exact,maxsum-appro,nn-set",
            "maxsum-exact -> maxsum-appro -> nn-set",
            " maxsum-exact ,maxsum-appro-> nn-set ",
        ],
    )
    def test_parse_accepts_comma_and_arrow_forms(self, tiny_context, spec):
        chain = FallbackChain.parse(spec, tiny_context)
        assert chain.names == ("maxsum-exact", "maxsum-appro", "nn-set")

    def test_stage_ratio(self, tiny_context):
        assert stage_ratio(make_algorithm("maxsum-exact", tiny_context)) == 1.0
        appro = make_algorithm("maxsum-appro", tiny_context)
        assert stage_ratio(appro) == pytest.approx(appro.ratio)
        assert stage_ratio(object()) is None


class TestResilientExecutor:
    def test_first_stage_answers_with_clean_provenance(
        self, tiny_context, tiny_queries
    ):
        chain = FallbackChain.of(tiny_context, "maxsum-exact", "nn-set")
        result = ResilientExecutor(chain).solve(tiny_queries[0])
        prov = result.provenance
        assert prov.answered_by == "maxsum-exact"
        assert prov.degraded is False
        assert prov.guaranteed_ratio == 1.0
        assert prov.failures == ()
        assert result.is_feasible_for(tiny_queries[0])

    def test_tight_budget_degrades_down_the_chain(
        self, tiny_context, tiny_queries
    ):
        chain = FallbackChain.of(
            tiny_context, "maxsum-exact", "maxsum-appro", "nn-set"
        )
        executor = ResilientExecutor(chain, ExecutionPolicy(work_budget=3))
        result = executor.solve(tiny_queries[0])
        prov = result.provenance
        assert prov.degraded is True
        assert prov.answered_by == "nn-set"
        assert prov.guaranteed_ratio == pytest.approx(3.0)
        assert [f.stage for f in prov.failures] == ["maxsum-exact", "maxsum-appro"]
        assert all(
            f.error_type == "BudgetExceededError" for f in prov.failures
        )
        # The abort carried the solver's partial progress.
        assert any(f.counters for f in prov.failures)
        assert result.is_feasible_for(tiny_queries[0])

    def test_hard_wall_raises_single_typed_error(self, tiny_context, tiny_queries):
        chain = FallbackChain.of(tiny_context, "maxsum-exact", "maxsum-appro")
        executor = ResilientExecutor(
            chain, ExecutionPolicy(work_budget=3, always_answer=False)
        )
        with pytest.raises(ExecutionFailedError) as info:
            executor.solve(tiny_queries[0])
        err = info.value
        assert not isinstance(err, RuntimeError)
        assert len(err.failures) == 2
        assert {f.stage for f in err.failures} == {"maxsum-exact", "maxsum-appro"}

    def test_deadline_is_global_across_stages(self, tiny_queries, tiny_context):
        """A stage that eats the whole deadline starves its successors."""
        clock = ManualClock()
        slow = _SlowStage("slow", clock, 10.0)
        never = _StubStage("never", [AssertionError("must not run")])
        chain = FallbackChain([slow, never])
        executor = ResilientExecutor(
            chain,
            ExecutionPolicy(deadline_ms=500.0, always_answer=False),
            clock=clock,
        )
        with pytest.raises(ExecutionFailedError) as info:
            executor.solve(tiny_queries[0])
        # slow raised via its budget; never was pre-empted before starting.
        assert [f.error_type for f in info.value.failures] == [
            "DeadlineExceededError",
            "DeadlineExceededError",
        ]
        assert never.calls == 0

    def test_transient_fault_retried_on_same_stage(
        self, tiny_queries, answer
    ):
        stage = _StubStage(
            "flaky", [InjectedFaultError("keyword_nn", 1), answer]
        )
        executor = ResilientExecutor(
            FallbackChain([stage]), ExecutionPolicy(max_retries=1)
        )
        result = executor.solve(tiny_queries[0])
        assert stage.calls == 2
        assert result.provenance.attempts == 2
        assert result.provenance.degraded is False

    def test_transient_fault_without_retries_degrades(
        self, tiny_queries, answer
    ):
        flaky = _StubStage("flaky", [InjectedFaultError("keyword_nn", 1)])
        backup = _StubStage("backup", [answer])
        executor = ResilientExecutor(
            FallbackChain([flaky, backup]), ExecutionPolicy(max_retries=0)
        )
        result = executor.solve(tiny_queries[0])
        assert result.provenance.answered_by == "backup"
        assert result.provenance.degraded is True
        assert result.provenance.failures[0].error_type == "InjectedFaultError"

    def test_infeasible_query_propagates_untouched(
        self, tiny_context, tiny_dataset
    ):
        chain = FallbackChain.of(tiny_context, "maxsum-exact", "nn-set")
        executor = ResilientExecutor(chain)
        # A keyword id far beyond the tiny 12-word vocabulary.
        query = Query.create(500.0, 500.0, [10**6])
        with pytest.raises(InfeasibleQueryError):
            executor.solve(query)

    def test_budget_attribute_restored_after_solve(
        self, tiny_context, tiny_queries
    ):
        chain = FallbackChain.of(tiny_context, "maxsum-exact")
        executor = ResilientExecutor(chain, ExecutionPolicy(work_budget=10**9))
        executor.solve(tiny_queries[0])
        assert chain.stages[0].budget is None

    def test_executor_is_a_drop_in_solver(self, tiny_context, tiny_queries):
        from repro.bench.runner import time_algorithm

        chain = FallbackChain.of(tiny_context, "maxsum-appro", "nn-set")
        executor = ResilientExecutor(chain)
        timing = time_algorithm(executor, tiny_queries[:3])
        assert timing.algorithm == "exec[maxsum-appro|nn-set]"
        assert timing.times.count == 3


class TestDeadlineBetweenStages:
    """The deadline expires *between* fallback stages.

    The serving daemon leans on this exact semantics: a request whose
    deadline dies after stage 1 must still answer from the exempt last
    stage, and the provenance must name every stage that was skipped
    without ever running (so ``/stats`` failure classes and the response
    provenance agree on what happened).
    """

    def test_skipped_stages_recorded_and_last_stage_answers(self, answer):
        clock = ManualClock()
        slow = _SlowStage("slow", clock, 10.0)
        skipped = _StubStage("skipped", [AssertionError("must not run")])
        last = _StubStage("last", [answer])
        executor = ResilientExecutor(
            FallbackChain([slow, skipped, last]),
            ExecutionPolicy(deadline_ms=500.0, always_answer=True),
            clock=clock,
        )
        result = executor.solve(Query.create(0.0, 0.0, [0]))
        # the middle stage was pre-empted before its solve() ever ran
        assert skipped.calls == 0
        assert last.calls == 1
        prov = result.provenance
        assert prov.answered_by == "last"
        assert prov.degraded is True
        assert [f.stage for f in prov.failures] == ["slow", "skipped"]
        assert [f.error_type for f in prov.failures] == [
            "DeadlineExceededError",
            "DeadlineExceededError",
        ]

    def test_result_comes_from_last_completed_stage_not_a_raise(self, answer):
        clock = ManualClock()
        slow = _SlowStage("slow", clock, 10.0)
        last = _StubStage("last", [answer])
        executor = ResilientExecutor(
            FallbackChain([slow, last]),
            ExecutionPolicy(deadline_ms=1.0, always_answer=True),
            clock=clock,
        )
        result = executor.solve(Query.create(0.0, 0.0, [0]))
        assert result.cost == answer.cost
        assert result.object_ids == answer.object_ids

    def test_hard_wall_lists_every_starved_stage(self):
        clock = ManualClock()
        slow = _SlowStage("slow", clock, 10.0)
        second = _StubStage("second", [AssertionError("must not run")])
        third = _StubStage("third", [AssertionError("must not run")])
        executor = ResilientExecutor(
            FallbackChain([slow, second, third]),
            ExecutionPolicy(deadline_ms=500.0, always_answer=False),
            clock=clock,
        )
        with pytest.raises(ExecutionFailedError) as info:
            executor.solve(Query.create(0.0, 0.0, [0]))
        assert [f.stage for f in info.value.failures] == [
            "slow",
            "second",
            "third",
        ]
        assert second.calls == 0 and third.calls == 0


class TestBatchExecutor:
    def test_isolation_one_poisoned_query_does_not_kill_batch(
        self, tiny_queries, answer
    ):
        outcomes = []
        for i in range(len(tiny_queries)):
            outcomes.append(ValueError("poisoned") if i == 1 else answer)
        stage = _StubStage("mixed", outcomes)
        report = BatchExecutor(stage, validate=False).run(tiny_queries)
        assert report.total == len(tiny_queries)
        assert report.failed == 1
        assert report.answered == len(tiny_queries) - 1
        assert report.results[1] is None
        assert report.failures[0].index == 1
        assert report.failures[0].error_type == "ValueError"

    def test_chain_failures_surface_in_query_failure(
        self, tiny_context, tiny_queries
    ):
        chain = FallbackChain.of(tiny_context, "maxsum-exact", "maxsum-appro")
        executor = ResilientExecutor(
            chain, ExecutionPolicy(work_budget=3, always_answer=False)
        )
        report = BatchExecutor(executor).run(tiny_queries[:2])
        assert report.failed == 2
        assert report.error_counts() == {"ExecutionFailedError": 2}
        assert len(report.failures[0].stage_failures) == 2

    def test_degraded_counted_from_provenance(self, tiny_context, tiny_queries):
        chain = FallbackChain.of(
            tiny_context, "maxsum-exact", "maxsum-appro", "nn-set"
        )
        executor = ResilientExecutor(chain, ExecutionPolicy(work_budget=3))
        report = BatchExecutor(executor).run(tiny_queries[:4])
        assert report.answered == 4
        expected = sum(
            1 for r in report.results if r.provenance.degraded
        )
        assert report.degraded == expected
        assert expected >= 1  # a 3-tick budget must degrade most queries
        assert "%d degraded" % expected in report.summary()
        assert report.ok()

    def test_validation_catches_infeasible_answers(self, tiny_queries, answer):
        # The stub returns query #0's answer for every query; validation
        # must record a per-query failure exactly where that set fails to
        # cover the query's keywords, instead of poisoning the run.
        stage = _StubStage("wrong", [answer] * len(tiny_queries))
        report = BatchExecutor(stage, validate=True).run(tiny_queries)
        assert report.total == len(tiny_queries)
        for index, query in enumerate(tiny_queries):
            expected_ok = answer.is_feasible_for(query)
            assert (report.results[index] is not None) == expected_ok
        for failure in report.failures:
            assert failure.error_type == "AssertionError"


class TestResilienceStudy:
    def test_counts_and_timing(self, tiny_context, tiny_queries):
        from repro.bench.runner import resilience_study

        chain = FallbackChain.of(
            tiny_context, "maxsum-exact", "maxsum-appro", "nn-set"
        )
        executor = ResilientExecutor(chain, ExecutionPolicy(work_budget=3))
        study = resilience_study(executor, tiny_queries)
        assert study.answered == len(tiny_queries)
        assert study.degraded >= 1  # a 3-tick budget degrades most queries
        assert study.failed == 0
        assert study.times.count == len(tiny_queries)
        assert study.total == len(tiny_queries)
        assert "%d/%d answered" % (study.answered, study.total) in study.summary()

    def test_all_failures_yield_empty_timing(self, tiny_queries):
        from repro.bench.runner import resilience_study

        stage = _StubStage(
            "dead", [ValueError("x") for _ in tiny_queries]
        )
        study = resilience_study(stage, tiny_queries)
        assert study.answered == 0
        assert study.failed == len(tiny_queries)
        assert study.times.count == 0
        assert study.failures[0][1] == "ValueError"
