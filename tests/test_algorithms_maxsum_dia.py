"""Correctness tests for the paper's algorithms (MaxSum and Dia).

The exact algorithms are validated against the brute-force oracle on
small random instances; the approximations are validated against their
proven ratios and for feasibility everywhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.cao_exact import CaoExact
from repro.algorithms.dia_appro import DIA_APPRO_RATIO, DiaAppro
from repro.algorithms.dia_exact import DiaExact
from repro.algorithms.maxsum_appro import MAXSUM_APPRO_RATIO, MaxSumAppro
from repro.algorithms.maxsum_exact import MaxSumExact
from repro.cost.functions import DiaCost, MaxSumCost
from repro.data.generators import uniform_dataset
from repro.data.queries import generate_queries
from repro.errors import InfeasibleQueryError
from repro.model.query import Query

RELATIVE_TOLERANCE = 1e-6


def close(a, b):
    return abs(a - b) <= RELATIVE_TOLERANCE * max(1.0, abs(a), abs(b))


def random_instance(seed):
    dataset = uniform_dataset(70, 10, mean_keywords=2.0, seed=seed)
    context = SearchContext(dataset)
    queries = generate_queries(dataset, 3, 2, percentile_range=(0.0, 1.0), seed=seed + 1)
    return context, queries


class TestMaxSumExact:
    def test_matches_bruteforce_fixed(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, MaxSumCost()).solve(query)
            got = MaxSumExact(tiny_context).solve(query)
            assert got.is_feasible_for(query)
            assert close(got.cost, optimal.cost)

    @given(st.integers(0, 50_000))
    @settings(max_examples=20)
    def test_matches_bruteforce_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = BruteForceExact(context, MaxSumCost()).solve(query)
            got = MaxSumExact(context).solve(query)
            assert close(got.cost, optimal.cost)

    def test_result_cost_matches_objects(self, tiny_context, tiny_queries):
        cost = MaxSumCost()
        for query in tiny_queries:
            result = MaxSumExact(tiny_context).solve(query)
            assert result.cost == pytest.approx(cost.evaluate(query, result.objects))

    def test_pruning_variants_agree(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            reference = MaxSumExact(tiny_context).solve(query)
            for kwargs in (
                {"seed_with_appro": False},
                {"filter_candidates": False},
                {"ring_pruning": False},
            ):
                variant = MaxSumExact(tiny_context, **kwargs).solve(query)
                assert close(variant.cost, reference.cost), kwargs

    def test_single_keyword_query_returns_nn(self, tiny_context, tiny_dataset):
        keyword = tiny_dataset.keywords_by_frequency()[0]
        query = Query.create(500, 500, [keyword])
        result = MaxSumExact(tiny_context).solve(query)
        nn = tiny_context.index.keyword_nn(query.location, keyword)
        assert nn is not None
        assert close(result.cost, MaxSumCost().evaluate(query, [nn[1]]))

    def test_infeasible_query_raises(self, tiny_context):
        with pytest.raises(InfeasibleQueryError):
            MaxSumExact(tiny_context).solve(Query.create(0, 0, [99_999]))

    def test_rejects_non_max_cost(self, tiny_context):
        from repro.cost.functions import MinMaxCost
        from repro.algorithms.owner_exact import OwnerDrivenExact

        with pytest.raises(ValueError):
            OwnerDrivenExact(tiny_context, MinMaxCost())


class TestMaxSumAppro:
    def test_feasible_and_within_ratio(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, MaxSumCost()).solve(query)
            got = MaxSumAppro(tiny_context).solve(query)
            assert got.is_feasible_for(query)
            assert got.cost >= optimal.cost - RELATIVE_TOLERANCE
            assert got.cost <= optimal.cost * MAXSUM_APPRO_RATIO + RELATIVE_TOLERANCE

    @given(st.integers(0, 50_000))
    @settings(max_examples=20)
    def test_ratio_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = BruteForceExact(context, MaxSumCost()).solve(query)
            got = MaxSumAppro(context).solve(query)
            assert got.cost <= optimal.cost * MAXSUM_APPRO_RATIO + RELATIVE_TOLERANCE

    def test_mostly_optimal_in_practice(self, tiny_context, tiny_queries):
        # The paper reports ratio exactly 1 for >90% of queries; on the
        # tiny workload we conservatively require a majority.
        hits = 0
        for query in tiny_queries:
            optimal = MaxSumExact(tiny_context).solve(query)
            got = MaxSumAppro(tiny_context).solve(query)
            if close(got.cost, optimal.cost):
                hits += 1
        assert hits >= len(tiny_queries) // 2


class TestDia:
    def test_exact_matches_bruteforce_fixed(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, DiaCost()).solve(query)
            got = DiaExact(tiny_context).solve(query)
            assert got.is_feasible_for(query)
            assert close(got.cost, optimal.cost)

    @given(st.integers(0, 50_000))
    @settings(max_examples=20)
    def test_exact_matches_bruteforce_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = BruteForceExact(context, DiaCost()).solve(query)
            got = DiaExact(context).solve(query)
            assert close(got.cost, optimal.cost)

    def test_appro_within_sqrt3(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, DiaCost()).solve(query)
            got = DiaAppro(tiny_context).solve(query)
            assert got.is_feasible_for(query)
            assert got.cost <= optimal.cost * DIA_APPRO_RATIO + RELATIVE_TOLERANCE

    def test_dia_cost_never_below_df(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            nn = tiny_context.nn_set(query)
            got = DiaExact(tiny_context).solve(query)
            assert got.cost >= nn.d_f - RELATIVE_TOLERANCE


class TestCrossAlgorithm:
    def test_exacts_agree_on_medium_instance(self):
        dataset = uniform_dataset(600, 25, mean_keywords=3.0, seed=99)
        context = SearchContext(dataset)
        for query in generate_queries(dataset, 5, 4, seed=100):
            owner = MaxSumExact(context).solve(query)
            bnb = CaoExact(context, MaxSumCost()).solve(query)
            assert close(owner.cost, bnb.cost)

    def test_exact_never_worse_than_appro(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            exact = MaxSumExact(tiny_context).solve(query)
            appro = MaxSumAppro(tiny_context).solve(query)
            assert exact.cost <= appro.cost + RELATIVE_TOLERANCE

    def test_counters_populated(self, tiny_context, tiny_queries):
        algo = MaxSumExact(tiny_context)
        result = algo.solve(tiny_queries[0])
        assert "cost_evaluations" in result.counters
