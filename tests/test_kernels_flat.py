"""Property suite for the flat-array distance kernels (repro.kernels).

Every kernel claims *bit-identity* with the naive ``math.hypot`` scan it
replaces — not approximate agreement, exact float equality — because the
solvers compare and store the values the kernels return.  The reference
implementations here are deliberately the dumbest possible scalar loops;
Hypothesis drives both through shared random geometry, including
coordinates chosen to land pairs inside the guard band where the
squared-distance fast path must defer to the exact comparison.
"""

from __future__ import annotations

import math
from array import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import make_random_instance
from repro.cost.base import pairwise_max_distance
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.neighbors import LinearScanIndex
from repro.kernels import flat
from repro.kernels.flat import (
    any_beyond,
    cap_bands,
    distances_from,
    farthest_pair,
    lens_gather,
    lens_lower_bound,
    max_distance_from,
    pack_objects,
    pack_points,
    pairwise_max,
    select_within,
    select_within_indices,
)
from repro.kernels.oracle import DistanceOracle

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=0, max_size=24)
caps = st.floats(0.0, 3e6, allow_nan=False, allow_infinity=False)


def _pack(pts):
    xs = array("d", (p[0] for p in pts))
    ys = array("d", (p[1] for p in pts))
    return xs, ys


# -- naive references ----------------------------------------------------------


def naive_pairwise_max(pts):
    best = 0.0
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            d = math.hypot(pts[i][0] - pts[j][0], pts[i][1] - pts[j][1])
            if d > best:
                best = d
    return best


def naive_farthest(pts):
    besti, bestj, best = 0, 0, 0.0
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            d = math.hypot(pts[i][0] - pts[j][0], pts[i][1] - pts[j][1])
            if d > best:
                besti, bestj, best = i, j, d
    return besti, bestj, best


def naive_max_from(x, y, pts):
    best = 0.0
    for a, b in pts:
        d = math.hypot(x - a, y - b)
        if d > best:
            best = d
    return best


def naive_select(cx, cy, pts, radius):
    return [
        i
        for i, (a, b) in enumerate(pts)
        if math.hypot(cx - a, cy - b) <= radius
    ]


def naive_any_beyond(x, y, pts, cap):
    return any(math.hypot(x - a, y - b) > cap for a, b in pts)


# -- kernels vs references -----------------------------------------------------


class TestKernelBitIdentity:
    @given(pts=point_lists)
    def test_pairwise_max(self, pts):
        xs, ys = _pack(pts)
        assert pairwise_max(xs, ys) == naive_pairwise_max(pts)

    @given(pts=point_lists)
    def test_farthest_pair(self, pts):
        xs, ys = _pack(pts)
        assert farthest_pair(xs, ys) == naive_farthest(pts)

    @given(pts=point_lists, c=st.tuples(coords, coords))
    def test_max_distance_from(self, pts, c):
        xs, ys = _pack(pts)
        assert max_distance_from(c[0], c[1], xs, ys) == naive_max_from(
            c[0], c[1], pts
        )

    @given(pts=point_lists, c=st.tuples(coords, coords))
    def test_distances_from(self, pts, c):
        xs, ys = _pack(pts)
        got = distances_from(c[0], c[1], xs, ys)
        assert list(got) == [
            math.hypot(c[0] - a, c[1] - b) for a, b in pts
        ]

    @given(pts=point_lists, c=st.tuples(coords, coords), cap=caps)
    def test_select_within(self, pts, c, cap):
        xs, ys = _pack(pts)
        assert select_within(c[0], c[1], xs, ys, cap) == naive_select(
            c[0], c[1], pts, cap
        )

    @given(pts=point_lists, c=st.tuples(coords, coords), cap=caps)
    def test_any_beyond(self, pts, c, cap):
        xs, ys = _pack(pts)
        assert any_beyond(c[0], c[1], xs, ys, cap) == naive_any_beyond(
            c[0], c[1], pts, cap
        )

    @given(pts=st.lists(st.tuples(coords, coords), min_size=1, max_size=24),
           c=st.tuples(coords, coords), data=st.data())
    def test_select_within_indices_preserves_order(self, pts, c, data):
        xs, ys = _pack(pts)
        indices = data.draw(
            st.lists(st.integers(0, len(pts) - 1), max_size=30)
        )
        cap = data.draw(caps)
        got = select_within_indices(indices, c[0], c[1], xs, ys, cap)
        want = [
            i
            for i in indices
            if math.hypot(c[0] - xs[i], c[1] - ys[i]) <= cap
        ]
        assert got == want

    @given(pts=point_lists, c=st.tuples(coords, coords))
    def test_on_band_distances_decide_exactly(self, pts, c):
        """Caps equal to a realized distance sit inside the guard band."""
        xs, ys = _pack(pts)
        for a, b in pts[:4]:
            cap = math.hypot(c[0] - a, c[1] - b)
            assert select_within(c[0], c[1], xs, ys, cap) == naive_select(
                c[0], c[1], pts, cap
            )
            assert any_beyond(c[0], c[1], xs, ys, cap) == naive_any_beyond(
                c[0], c[1], pts, cap
            )


class TestLensKernels:
    @given(pts=st.lists(st.tuples(coords, coords), min_size=1, max_size=24),
           c=st.tuples(coords, coords), data=st.data())
    def test_lens_gather_matches_masked_select(self, pts, c, data):
        xs, ys = _pack(pts)
        masks = data.draw(
            st.lists(st.integers(0, 7), min_size=len(pts), max_size=len(pts))
        )
        want = data.draw(st.integers(0, 7))
        indices = data.draw(st.lists(st.integers(0, len(pts) - 1), max_size=30))
        cap = data.draw(caps)
        got_idx, got_d = lens_gather(
            indices, masks, want, c[0], c[1], xs, ys, cap
        )
        want_idx = [
            i
            for i in indices
            if masks[i] & want
            and math.hypot(c[0] - xs[i], c[1] - ys[i]) <= cap
        ]
        assert got_idx == want_idx
        assert list(got_d) == [
            math.hypot(c[0] - xs[i], c[1] - ys[i]) for i in got_idx
        ]

    @given(pts=point_lists, owner=st.tuples(coords, coords),
           q=st.tuples(coords, coords), budget=caps)
    def test_lens_lower_bound_never_drops_a_member(self, pts, owner, q, budget):
        """dq below the floor certifies the owner-disk test fails."""
        r = math.hypot(q[0] - owner[0], q[1] - owner[1])
        floor = lens_lower_bound(r, budget)
        for a, b in pts:
            dq = math.hypot(q[0] - a, q[1] - b)
            if dq < floor:
                assert math.hypot(owner[0] - a, owner[1] - b) > budget

    @given(cap=caps)
    def test_cap_bands_bracket_the_threshold(self, cap):
        lo2, hi2, fast = cap_bands(cap)
        if fast:
            assert lo2 <= cap * cap <= hi2


# -- packing -------------------------------------------------------------------


class TestPacking:
    def test_pack_points_roundtrip(self):
        pts = [Point(1.5, -2.0), Point(0.0, 7.25)]
        xs, ys = pack_points(pts)
        assert list(xs) == [1.5, 0.0]
        assert list(ys) == [-2.0, 7.25]

    def test_pack_objects_uses_locations(self):
        dataset, _, _ = make_random_instance(17, num_objects=40)
        xs, ys = pack_objects(dataset.objects)
        assert list(xs) == [o.location.x for o in dataset.objects]
        assert list(ys) == [o.location.y for o in dataset.objects]


# -- the toggle ----------------------------------------------------------------


class TestToggle:
    def test_set_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "1")
        flat.set_enabled(False)
        try:
            assert not flat.kernels_enabled()
            flat.set_enabled(True)
            assert flat.kernels_enabled()
        finally:
            flat.set_enabled(None)

    def test_env_values(self, monkeypatch):
        assert flat._FORCED is None
        for value, expected in [
            ("0", False), ("false", False), ("off", False), ("no", False),
            ("1", True), ("yes", True), ("", True),
        ]:
            monkeypatch.setenv("REPRO_KERNELS", value)
            assert flat.kernels_enabled() is expected, value
        monkeypatch.delenv("REPRO_KERNELS")
        assert flat.kernels_enabled()


# -- the distance oracle -------------------------------------------------------


@pytest.fixture(scope="module")
def oracle_instance():
    dataset, _, _ = make_random_instance(29, num_objects=30, vocab=8)
    anchor = dataset.objects[0]
    candidates = dataset.objects[1:]
    return anchor, candidates, DistanceOracle(anchor.location, candidates)


class TestDistanceOracle:
    def test_anchor_distances_are_exact(self, oracle_instance):
        anchor, candidates, oracle = oracle_instance
        for i, cand in enumerate(candidates):
            assert oracle.anchor_d[i] == anchor.location.distance_to(
                cand.location
            )

    def test_pair_distance_matches_scalar(self, oracle_instance):
        _, candidates, oracle = oracle_instance
        for i in range(0, len(candidates), 5):
            for j in range(0, len(candidates), 7):
                want = candidates[i].location.distance_to(candidates[j].location)
                assert oracle.pair_distance(i, j) == want
                assert oracle.pair_distance(j, i) == want

    def test_rows_are_memoized(self, oracle_instance):
        _, _, oracle = oracle_instance
        assert oracle.row(3) is oracle.row(3)

    def test_diameter_with_anchor_equals_pairwise_max(self, oracle_instance):
        anchor, candidates, oracle = oracle_instance
        indices = [0, 4, 9, 17]
        want = pairwise_max_distance([anchor] + [candidates[i] for i in indices])
        assert oracle.diameter_with_anchor(indices) == want

    def test_max_anchor_distance(self, oracle_instance):
        anchor, candidates, oracle = oracle_instance
        assert oracle.max_anchor_distance() == max(
            anchor.location.distance_to(c.location) for c in candidates
        )

    def test_any_pair_beyond(self, oracle_instance):
        _, candidates, oracle = oracle_instance
        row = [candidates[0].location.distance_to(c.location) for c in candidates]
        cap = sorted(row)[len(row) // 2]
        want = any(row[j] > cap for j in (1, 2, 3))
        assert oracle.any_pair_beyond(0, (1, 2, 3), cap) == want

    def test_prepacked_construction_is_equivalent(self, oracle_instance):
        anchor, candidates, oracle = oracle_instance
        xs, ys = pack_objects(candidates)
        pre = DistanceOracle(
            anchor.location, candidates, xs, ys, array("d", oracle.anchor_d)
        )
        assert list(pre.anchor_d) == list(oracle.anchor_d)
        assert pre.diameter_with_anchor([2, 6, 11]) == oracle.diameter_with_anchor(
            [2, 6, 11]
        )
        assert pre.index_of(candidates[5]) == oracle.index_of(candidates[5])


# -- index-side order contracts ------------------------------------------------


class TestRelevantObjectsContract:
    """relevant_objects must enumerate in region-traversal order.

    The solver's lens memo carves every per-owner candidate list out of
    the relevant universe by pure filtering, so the universe's order must
    be exactly the order ``relevant_in_region`` would emit — otherwise
    the kernels-on candidate lists (and therefore the tie-breaking of
    downstream scans) would silently diverge from the kernels-off path.
    """

    @pytest.mark.parametrize("seed", [41, 42])
    def test_filtering_universe_reproduces_region_query(self, seed):
        dataset, context, queries = make_random_instance(seed, num_objects=60)
        index = context.index
        for query in queries:
            universe = index.relevant_objects(query.keywords)
            assert all(
                not o.keywords.isdisjoint(query.keywords) for o in universe
            )
            for radius in (0.1, 0.25, 0.6):
                circle = Circle(query.location, radius)
                want = index.relevant_in_region([circle], query.keywords)
                got = [o for o in universe if circle.contains(o.location)]
                assert [o.oid for o in got] == [o.oid for o in want]

    def test_linear_scan_agrees_with_irtree_as_a_set(self):
        dataset, context, queries = make_random_instance(43, num_objects=50)
        linear = LinearScanIndex.build(dataset)
        for query in queries:
            a = {o.oid for o in context.index.relevant_objects(query.keywords)}
            b = {o.oid for o in linear.relevant_objects(query.keywords)}
            assert a == b
