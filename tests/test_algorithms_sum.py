"""Tests for the Sum-cost algorithms (mask-Dijkstra exact, WSC greedy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.sum_algorithms import SumExact, SumGreedy, sum_greedy_ratio_bound
from repro.cost.functions import SumCost
from repro.data.generators import uniform_dataset
from repro.data.queries import generate_queries
from repro.errors import InfeasibleQueryError
from repro.model.query import Query
from repro.utils.stats import harmonic_number

TOL = 1e-6


def close(a, b):
    return abs(a - b) <= TOL * max(1.0, abs(a), abs(b))


def random_instance(seed):
    dataset = uniform_dataset(70, 10, mean_keywords=2.0, seed=seed)
    context = SearchContext(dataset)
    queries = generate_queries(dataset, 3, 2, percentile_range=(0.0, 1.0), seed=seed + 1)
    return context, queries


class TestSumExact:
    def test_matches_bruteforce_fixed(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, SumCost()).solve(query)
            got = SumExact(tiny_context).solve(query)
            assert got.is_feasible_for(query)
            assert close(got.cost, optimal.cost)

    @given(st.integers(0, 50_000))
    @settings(max_examples=20)
    def test_matches_bruteforce_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = BruteForceExact(context, SumCost()).solve(query)
            got = SumExact(context).solve(query)
            assert close(got.cost, optimal.cost)

    def test_result_cost_is_sum_of_distances(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            result = SumExact(tiny_context).solve(query)
            expected = sum(
                query.location.distance_to(o.location) for o in result.objects
            )
            assert result.cost == pytest.approx(expected)

    def test_infeasible_raises(self, tiny_context):
        with pytest.raises(InfeasibleQueryError):
            SumExact(tiny_context).solve(Query.create(0, 0, [4242]))

    def test_no_duplicate_objects(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            result = SumExact(tiny_context).solve(query)
            assert len(set(result.object_ids)) == len(result.object_ids)


class TestSumGreedy:
    def test_feasible_and_within_harmonic_bound(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            optimal = BruteForceExact(tiny_context, SumCost()).solve(query)
            got = SumGreedy(tiny_context).solve(query)
            assert got.is_feasible_for(query)
            bound = harmonic_number(query.size)
            assert got.cost <= optimal.cost * bound + TOL

    @given(st.integers(0, 50_000))
    @settings(max_examples=20)
    def test_harmonic_bound_random(self, seed):
        context, queries = random_instance(seed)
        for query in queries:
            optimal = SumExact(context).solve(query)
            got = SumGreedy(context).solve(query)
            assert got.cost <= optimal.cost * harmonic_number(query.size) + TOL

    def test_ratio_bound_helper(self):
        assert sum_greedy_ratio_bound(1) == pytest.approx(1.0)
        assert sum_greedy_ratio_bound(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_greedy_never_beats_exact(self, tiny_context, tiny_queries):
        for query in tiny_queries:
            exact = SumExact(tiny_context).solve(query)
            greedy = SumGreedy(tiny_context).solve(query)
            assert greedy.cost >= exact.cost - TOL
