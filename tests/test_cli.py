"""Tests for the coskq-bench command line."""

import pytest

from repro.bench.cli import build_parser, main
from repro.bench import cli as cli_module
from repro.bench.experiments import EXPERIMENTS


class TestParser:
    def test_parses_experiment(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert not args.quick

    def test_quick_flag(self):
        args = build_parser().parse_args(["all", "--quick"])
        assert args.quick


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_single_experiment(self, capsys, monkeypatch):
        calls = []

        def fake_run(experiment_id, quick=False):
            calls.append((experiment_id, quick))
            return "REPORT-BODY"

        monkeypatch.setattr(cli_module, "run_experiment", fake_run)
        assert main(["table1", "--quick"]) == 0
        assert calls == [("table1", True)]
        out = capsys.readouterr().out
        assert "REPORT-BODY" in out
        assert "experiment: table1 (quick)" in out

    def test_all_runs_every_experiment(self, capsys, monkeypatch):
        calls = []
        monkeypatch.setattr(
            cli_module,
            "run_experiment",
            lambda experiment_id, quick=False: calls.append(experiment_id) or "ok",
        )
        assert main(["all", "--quick"]) == 0
        assert sorted(calls) == sorted(EXPERIMENTS)
