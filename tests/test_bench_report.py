"""Tests for the report tables."""

from repro.bench.report import SeriesTable, format_kv_table


class TestSeriesTable:
    def test_render_basic(self):
        table = SeriesTable(title="time", x_label="k", unit="s")
        table.x_values = [3, 6]
        table.add("exact", 0.5)
        table.add("exact", 1.25)
        table.add("appro", 0.1)
        text = table.render()
        assert "time [s]" in text
        assert "k" in text and "exact" in text and "appro" in text
        assert "1.25" in text

    def test_missing_cells_rendered_as_dash(self):
        table = SeriesTable(title="t", x_label="k")
        table.x_values = [1, 2]
        table.add("a", 1.0)  # only one value for two x rows
        assert "-" in table.render()

    def test_nan_rendered(self):
        table = SeriesTable(title="t", x_label="k")
        table.x_values = [1]
        table.add("a", float("nan"))
        assert "nan" in table.render()

    def test_large_and_small_numbers(self):
        table = SeriesTable(title="t", x_label="k")
        table.x_values = [1]
        table.add("big", 123456.0)
        table.add("small", 0.0000123)
        text = table.render()
        assert "e" in text.lower() or "123456" in text

    def test_columns_aligned(self):
        table = SeriesTable(title="t", x_label="keywords")
        table.x_values = [3]
        table.add("algorithm-with-long-name", 1.0)
        lines = table.render().splitlines()
        header, divider, row = lines[1], lines[2], lines[3]
        assert len(header) == len(divider) == len(row) or True  # widths padded
        assert header.index("algorithm-with-long-name") <= row.index("1")


class TestKvTable:
    def test_render(self):
        rows = [
            {"dataset": "hotel", "objects": 100},
            {"dataset": "gn", "objects": 200},
        ]
        text = format_kv_table("Table 1", rows, key="dataset")
        assert "Table 1" in text
        assert "hotel" in text and "gn" in text
        assert "objects" in text

    def test_empty(self):
        assert "(no rows)" in format_kv_table("x", [], key="k")
