"""Tests for the external-file loaders."""

import pytest

from repro.data.io import (
    DelimitedFormat,
    from_coordinate_keyword_pairs,
    load_delimited,
)
from repro.errors import DatasetFormatError, InvalidParameterError


def write(tmp_path, text, name="data.txt"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestDelimitedFormat:
    def test_same_column_rejected(self):
        with pytest.raises(InvalidParameterError):
            DelimitedFormat(x_column=1, y_column=1)

    def test_negative_header_rejected(self):
        with pytest.raises(InvalidParameterError):
            DelimitedFormat(skip_header_lines=-1)


class TestLoadDelimited:
    def test_default_tab_format(self, tmp_path):
        path = write(tmp_path, "1.0\t2.0\thotel pool\n3.0\t4.0\tspa\n")
        ds = load_delimited(path)
        assert len(ds) == 2
        assert "hotel" in ds.vocabulary

    def test_pipe_delimiter_and_column_order(self, tmp_path):
        path = write(tmp_path, "pool,gym|9.0|8.0\n")
        fmt = DelimitedFormat(
            delimiter="|", x_column=1, y_column=2, keyword_column=0,
            keyword_separator=",",
        )
        ds = load_delimited(path, fmt)
        assert len(ds) == 1
        assert ds[0].location.x == 9.0
        assert ds.vocabulary.words_of(ds[0].keywords) == {"pool", "gym"}

    def test_keywords_spread_over_remaining_columns(self, tmp_path):
        path = write(tmp_path, "1.0 2.0 cafe bar grill\n")
        fmt = DelimitedFormat(delimiter=" ", keyword_column=None)
        ds = load_delimited(path, fmt)
        assert len(ds[0].keywords) == 3

    def test_header_and_comments_skipped(self, tmp_path):
        path = write(tmp_path, "x\ty\twords\n# comment\n1.0\t2.0\ta\n")
        ds = load_delimited(path, DelimitedFormat(skip_header_lines=1))
        assert len(ds) == 1

    def test_lowercasing(self, tmp_path):
        path = write(tmp_path, "1.0\t2.0\tHoTeL\n")
        ds = load_delimited(path)
        assert "hotel" in ds.vocabulary
        ds2 = load_delimited(path, DelimitedFormat(lowercase_keywords=False))
        assert "HoTeL" in ds2.vocabulary

    def test_bad_row_raises_by_default(self, tmp_path):
        path = write(tmp_path, "1.0\t2.0\ta\nbroken-line\n")
        with pytest.raises(DatasetFormatError):
            load_delimited(path)

    def test_bad_rows_skippable(self, tmp_path):
        path = write(tmp_path, "1.0\t2.0\ta\nbroken\n3.0\t4.0\tb\n")
        ds = load_delimited(path, on_error="skip")
        assert len(ds) == 2

    def test_invalid_on_error(self, tmp_path):
        path = write(tmp_path, "1.0\t2.0\ta\n")
        with pytest.raises(InvalidParameterError):
            load_delimited(path, on_error="ignore")

    def test_limit(self, tmp_path):
        rows = "".join("%d.0\t0.0\tw%d\n" % (i, i) for i in range(20))
        path = write(tmp_path, rows)
        ds = load_delimited(path, limit=5)
        assert len(ds) == 5

    def test_empty_file_raises(self, tmp_path):
        path = write(tmp_path, "# only comments\n")
        with pytest.raises(DatasetFormatError):
            load_delimited(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = write(tmp_path, "1.0\t2.0\ta\n", name="mycity.tsv")
        assert load_delimited(path).name == "mycity"

    def test_loaded_dataset_is_queryable(self, tmp_path):
        from repro.algorithms.base import SearchContext
        from repro.algorithms.maxsum_exact import MaxSumExact
        from repro.model.query import Query

        path = write(
            tmp_path,
            "0.0\t0.0\tcafe\n1.0\t0.0\tbar\n0.5\t0.5\tcafe bar\n",
        )
        ds = load_delimited(path)
        context = SearchContext(ds)
        query = Query.from_words(0.0, 0.0, ["cafe", "bar"], ds.vocabulary)
        result = MaxSumExact(context).solve(query)
        assert result.is_feasible_for(query)


class TestFromPairs:
    def test_basic(self):
        ds = from_coordinate_keyword_pairs(
            [((0.0, 1.0), ["a"]), ((2.0, 3.0), ["b", "c"])], name="api"
        )
        assert len(ds) == 2
        assert ds.name == "api"
        assert ds.statistics().num_unique_words == 3
