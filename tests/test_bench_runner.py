"""Tests for the measurement plumbing."""

import math

import pytest

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.algorithms.maxsum_appro import MaxSumAppro
from repro.algorithms.maxsum_exact import MaxSumExact
from repro.algorithms.nnset import NNSetAlgorithm
from repro.bench.runner import ratio_study, solve_all, time_algorithm
from repro.cost.functions import MaxSumCost
from repro.model.result import CoSKQResult


class TestTimeAlgorithm:
    def test_timing_result_fields(self, tiny_context, tiny_queries):
        timing = time_algorithm(MaxSumAppro(tiny_context), tiny_queries)
        assert timing.algorithm == "maxsum-appro"
        assert timing.times.count == len(tiny_queries)
        assert timing.mean_time > 0.0
        assert timing.costs.minimum > 0.0
        assert timing.set_sizes.minimum >= 1.0
        assert len(timing.results) == len(tiny_queries)

    def test_keep_results_false(self, tiny_context, tiny_queries):
        timing = time_algorithm(
            MaxSumAppro(tiny_context), tiny_queries, keep_results=False
        )
        assert timing.results == ()

    def test_infeasible_output_rejected(self, tiny_context, tiny_queries):
        class Broken(CoSKQAlgorithm):
            name = "broken"

            def solve(self, query):
                return CoSKQResult.of([], 0.0, "broken")

        with pytest.raises(AssertionError):
            time_algorithm(Broken(tiny_context, MaxSumCost()), tiny_queries[:1])


class TestSolveAll:
    def test_counts(self, tiny_context, tiny_queries):
        results = solve_all(MaxSumAppro(tiny_context), tiny_queries)
        assert len(results) == len(tiny_queries)


class TestRatioStudy:
    def test_ratios_at_least_one(self, tiny_context, tiny_queries):
        exact = MaxSumExact(tiny_context)
        appro = MaxSumAppro(tiny_context)
        nn = NNSetAlgorithm(tiny_context, MaxSumCost())
        study = ratio_study(exact, [appro, nn], tiny_queries)
        for result in study.values():
            assert result.ratios.minimum >= 1.0
            assert 0.0 <= result.optimal_fraction <= 1.0

    def test_appro_beats_nn_set(self, tiny_context, tiny_queries):
        exact = MaxSumExact(tiny_context)
        appro = MaxSumAppro(tiny_context)
        nn = NNSetAlgorithm(tiny_context, MaxSumCost())
        study = ratio_study(exact, [appro, nn], tiny_queries)
        assert study["maxsum-appro"].ratios.mean <= study["nn-set"].ratios.mean + 1e-9

    def test_precomputed_optima_reused(self, tiny_context, tiny_queries):
        exact = MaxSumExact(tiny_context)
        optima = solve_all(exact, tiny_queries)
        study = ratio_study(
            exact, [MaxSumAppro(tiny_context)], tiny_queries, optima=optima
        )
        assert math.isfinite(study["maxsum-appro"].ratios.mean)

    def test_broken_exact_detected(self, tiny_context, tiny_queries):
        # Using N(q) as the "exact" reference must trip the sanity check
        # whenever the true approximation finds something cheaper.
        nn = NNSetAlgorithm(tiny_context, MaxSumCost())
        appro = MaxSumExact(tiny_context)
        nn_costs = [nn.solve(q).cost for q in tiny_queries]
        true_costs = [appro.solve(q).cost for q in tiny_queries]
        if all(abs(a - b) <= 1e-9 for a, b in zip(nn_costs, true_costs)):
            pytest.skip("N(q) happens to be optimal on every query here")
        with pytest.raises(AssertionError):
            ratio_study(nn, [appro], tiny_queries)
