"""Tests for the coskq-query command line tool."""

import pytest

from repro.data.generators import uniform_dataset
from repro.tools.query_cli import main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "objects.tsv"
    uniform_dataset(200, 20, mean_keywords=3.0, seed=3).save(path)
    return str(path)


def frequent_words(path, count=3):
    from repro.model.dataset import Dataset

    dataset = Dataset.load(path)
    return [
        dataset.vocabulary.word_of(k)
        for k in dataset.keywords_by_frequency()[:count]
    ]


class TestQueryCli:
    def test_basic_query(self, dataset_file, capsys):
        words = frequent_words(dataset_file)
        code = main([dataset_file, "--at", "500", "500", "--keywords", *words])
        assert code == 0
        out = capsys.readouterr().out
        assert "maxsum-exact" in out
        assert "cost" in out
        for word in words:
            assert word in out

    def test_algorithm_and_cost_override(self, dataset_file, capsys):
        words = frequent_words(dataset_file, 2)
        code = main(
            [
                dataset_file,
                "--at", "100", "100",
                "--keywords", *words,
                "--algorithm", "cao-exact",
                "--cost", "dia",
            ]
        )
        assert code == 0
        assert "cao-exact" in capsys.readouterr().out

    def test_topk_mode(self, dataset_file, capsys):
        words = frequent_words(dataset_file, 2)
        code = main(
            [dataset_file, "--at", "500", "500", "--keywords", *words, "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#1 " in out and "#2 " in out

    def test_unknown_keyword_is_clean_error(self, dataset_file, capsys):
        code = main(
            [dataset_file, "--at", "0", "0", "--keywords", "definitely-not-a-word"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, capsys):
        code = main(["/nope/missing.tsv", "--at", "0", "0", "--keywords", "x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_demo_and_file_are_exclusive(self, dataset_file, capsys):
        code = main(
            [dataset_file, "--demo", "--at", "0", "0", "--keywords", "x"]
        )
        assert code == 2

    def test_neither_demo_nor_file(self, capsys):
        code = main(["--at", "0", "0", "--keywords", "x"])
        assert code == 2

    def test_demo_mode(self, capsys):
        code = main(["--demo", "--at", "500", "500", "--keywords", "w0000", "w0001"])
        assert code == 0
        assert "cost" in capsys.readouterr().out
