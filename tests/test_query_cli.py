"""Tests for the coskq-query command line tool."""

import pytest

from repro.data.generators import uniform_dataset
from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    ExecutionFailedError,
    InjectedFaultError,
    SearchAbortedError,
)
from repro.tools.query_cli import EXIT_CODES, exit_code_for, main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "objects.tsv"
    uniform_dataset(200, 20, mean_keywords=3.0, seed=3).save(path)
    return str(path)


def frequent_words(path, count=3):
    from repro.model.dataset import Dataset

    dataset = Dataset.load(path)
    return [
        dataset.vocabulary.word_of(k)
        for k in dataset.keywords_by_frequency()[:count]
    ]


class TestQueryCli:
    def test_basic_query(self, dataset_file, capsys):
        words = frequent_words(dataset_file)
        code = main([dataset_file, "--at", "500", "500", "--keywords", *words])
        assert code == 0
        out = capsys.readouterr().out
        assert "maxsum-exact" in out
        assert "cost" in out
        for word in words:
            assert word in out

    def test_algorithm_and_cost_override(self, dataset_file, capsys):
        words = frequent_words(dataset_file, 2)
        code = main(
            [
                dataset_file,
                "--at", "100", "100",
                "--keywords", *words,
                "--algorithm", "cao-exact",
                "--cost", "dia",
            ]
        )
        assert code == 0
        assert "cao-exact" in capsys.readouterr().out

    def test_topk_mode(self, dataset_file, capsys):
        words = frequent_words(dataset_file, 2)
        code = main(
            [dataset_file, "--at", "500", "500", "--keywords", *words, "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#1 " in out and "#2 " in out

    def test_unknown_keyword_is_clean_error(self, dataset_file, capsys):
        code = main(
            [dataset_file, "--at", "0", "0", "--keywords", "definitely-not-a-word"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, capsys):
        code = main(["/nope/missing.tsv", "--at", "0", "0", "--keywords", "x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_demo_and_file_are_exclusive(self, dataset_file, capsys):
        code = main(
            [dataset_file, "--demo", "--at", "0", "0", "--keywords", "x"]
        )
        assert code == 2

    def test_neither_demo_nor_file(self, capsys):
        code = main(["--at", "0", "0", "--keywords", "x"])
        assert code == 2

    def test_demo_mode(self, capsys):
        code = main(["--demo", "--at", "500", "500", "--keywords", "w0000", "w0001"])
        assert code == 0
        assert "cost" in capsys.readouterr().out


class TestExitCodes:
    """The documented taxonomy exit-code table (docs/ROBUSTNESS.md)."""

    def test_table_is_complete_and_distinct(self):
        assert EXIT_CODES == {
            "ok": 0,
            "error": 1,
            "usage": 2,
            "SearchAbortedError": 3,
            "DeadlineExceededError": 4,
            "BudgetExceededError": 5,
            "InjectedFaultError": 6,
            "ExecutionFailedError": 7,
        }
        assert len(set(EXIT_CODES.values())) == len(EXIT_CODES)

    @pytest.mark.parametrize(
        "error,code",
        [
            (SearchAbortedError("stopped"), 3),
            (DeadlineExceededError(10.0, 11.0), 4),
            (BudgetExceededError("states_expanded", 100, 101), 5),
            (InjectedFaultError("keyword_nn", 1), 6),
            (ExecutionFailedError([ValueError("x")]), 7),
        ],
    )
    def test_taxonomy_classes_map_most_specific_first(self, error, code):
        assert exit_code_for(error) == code

    def test_unrelated_errors_are_generic(self):
        assert exit_code_for(ValueError("nope")) == 1
        assert exit_code_for(OSError("disk")) == 1

    def test_hard_deadline_run_exits_7(self, dataset_file, capsys):
        words = frequent_words(dataset_file, 2)
        code = main(
            [
                dataset_file,
                "--at", "500", "500",
                "--keywords", *words,
                "--fallback", "maxsum-exact -> maxsum-appro",
                "--deadline-ms", "0.0001",
                "--hard-deadline",
            ]
        )
        assert code == EXIT_CODES["ExecutionFailedError"]
        assert "error:" in capsys.readouterr().err

    def test_soft_deadline_still_answers(self, dataset_file, capsys):
        words = frequent_words(dataset_file, 2)
        code = main(
            [
                dataset_file,
                "--at", "500", "500",
                "--keywords", *words,
                "--fallback", "maxsum-exact -> nn-set",
                "--deadline-ms", "0.0001",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded to nn-set" in out

    def test_hard_deadline_without_fallback_uses_algorithm(
        self, dataset_file, capsys
    ):
        words = frequent_words(dataset_file, 2)
        code = main(
            [
                dataset_file,
                "--at", "500", "500",
                "--keywords", *words,
                "--deadline-ms", "0.0001",
                "--hard-deadline",
            ]
        )
        # a single-stage chain under a hard wall: exit 7 (chain failed)
        assert code == EXIT_CODES["ExecutionFailedError"]


@pytest.fixture(scope="module")
def batch_file(tmp_path_factory, dataset_file):
    words = frequent_words(dataset_file, 3)
    path = tmp_path_factory.mktemp("batch") / "queries.tsv"
    lines = ["# three repeated queries plus a comment"]
    for offset in (0, 50, 0):
        lines.append("%d\t%d\t%s" % (400 + offset, 500, " ".join(words)))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


class TestBatchMode:
    def test_batch_runs_and_reports(self, dataset_file, batch_file, capsys):
        code = main([dataset_file, "--batch", batch_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3 answered" in out
        assert "query #0" in out and "query #2" in out

    def test_batch_with_workers_and_cache(self, dataset_file, batch_file, capsys):
        code = main(
            [
                dataset_file,
                "--batch", batch_file,
                "--workers", "2",
                "--cache", "full",
                "--algorithm", "maxsum-appro",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "maxsum-appro: 3/3 answered" in out
        assert "cache:" in out and "result_misses" in out

    def test_batch_with_fallback_chain(self, dataset_file, batch_file, capsys):
        code = main(
            [
                dataset_file,
                "--batch", batch_file,
                "--fallback", "maxsum-exact -> maxsum-appro",
                "--deadline-ms", "10000",
            ]
        )
        assert code == 0
        assert "exec[maxsum-exact|maxsum-appro]" in capsys.readouterr().out

    def test_batch_failure_sets_exit_code(self, dataset_file, tmp_path, capsys):
        words = frequent_words(dataset_file, 2)
        bad = tmp_path / "queries.tsv"
        bad.write_text(
            "400\t500\t%s\n0\t0\t%s unknown-word\n" % (" ".join(words), words[0]),
            encoding="utf-8",
        )
        code = main([dataset_file, "--batch", str(bad)])
        # Unknown words are caught at load time: clean error, exit 1.
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_batch_file_is_clean_error(self, dataset_file, tmp_path, capsys):
        bad = tmp_path / "queries.tsv"
        bad.write_text("not-tab-separated\n", encoding="utf-8")
        code = main([dataset_file, "--batch", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_conflicts_with_single_query_flags(
        self, dataset_file, batch_file, capsys
    ):
        assert (
            main(
                [
                    dataset_file,
                    "--batch", batch_file,
                    "--at", "0", "0",
                    "--keywords", "x",
                ]
            )
            == 2
        )
        assert main([dataset_file, "--batch", batch_file, "--top", "2"]) == 2
        assert main([dataset_file, "--batch", batch_file, "--workers", "0"]) == 2

    def test_workers_without_batch_rejected(self, dataset_file, capsys):
        words = frequent_words(dataset_file, 1)
        code = main(
            [
                dataset_file,
                "--at", "0", "0",
                "--keywords", *words,
                "--workers", "4",
            ]
        )
        assert code == 2
        assert "--workers/--cache only apply to --batch" in capsys.readouterr().err
