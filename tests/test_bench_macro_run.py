"""End-to-end acceptance for the macro harness (ISSUE 8).

The session-scoped ``macro_smoke_run`` fixture executes
``coskq-bench run --profile smoke`` through the real CLI; these tests
assert the summary is schema-valid, the pinned workload mix actually
ran (warm caches hit, chains stamp provenance, the parallel batch
reports merged worker cache stats), and the diff gate behaves: a
self-compared run exits 0, a doctored-slower run exits nonzero.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.macro import PROFILES, validate_summary
from repro.tools.macro_cli import main as macro_main


@pytest.fixture()
def summary(macro_smoke_run):
    return macro_smoke_run[1]


def workload(summary, workload_id):
    matches = [w for w in summary["workloads"] if w["id"] == workload_id]
    assert matches, "workload %r missing from summary" % workload_id
    return matches[0]


class TestSmokeRun:
    def test_schema_valid(self, summary):
        assert validate_summary(summary) == []

    def test_pinned_workload_mix_ran(self, summary):
        ran = {w["id"] for w in summary["workloads"]}
        expected = {w.id for w in PROFILES["smoke"].workloads}
        assert ran == expected

    def test_datasets_content_addressed(self, summary):
        for entry in summary["datasets"]:
            assert len(entry["content_hash"]) == 64
            int(entry["content_hash"], 16)  # hex digest
            assert entry["cache"] == "miss"  # fresh cache dir

    def test_cold_workloads_capture_latency(self, summary):
        cold = workload(summary, "maxsum-appro/cold")
        assert cold["latency_ms"] is not None
        assert cold["latency_ms"]["count"] == cold["queries"]
        assert cold["failures"] == 0
        assert cold["throughput_qps"] > 0

    def test_warm_workload_hits_caches(self, summary):
        warm = workload(summary, "maxsum-appro/warm")
        stats = warm["cache_stats"]
        assert stats is not None
        # The timed pass re-asks every primed query: all result hits.
        assert stats["result_hits"] >= warm["queries"]
        # Warm answers are cache lookups; they must not be slower than
        # the cold medians by construction.
        cold = workload(summary, "maxsum-appro/cold")
        assert warm["latency_ms"]["p50_ms"] <= cold["latency_ms"]["p50_ms"]

    def test_chain_workload_stamps_provenance(self, summary):
        chain = workload(summary, "chain-exact-appro/cold")
        assert chain["kind"] == "chain"
        assert sum(chain["provenance"].values()) >= chain["queries"]
        answered = set(chain["provenance"]) - {"degraded"}
        assert answered <= {"maxsum-exact", "maxsum-appro"}

    def test_batch_workload_reports_throughput_and_merged_stats(self, summary):
        batch = workload(summary, "batch-parallel/cold")
        assert batch["latency_ms"] is None  # batch cells report throughput
        assert batch["throughput_qps"] > 0
        assert batch["cache_stats"] is not None
        assert batch["cache_stats"]["workers"] >= 1

    def test_toggle_ablations_present(self, summary):
        kernels_off = workload(summary, "maxsum-appro/cold/kernels-off")
        assert kernels_off["toggles"] == {"kernels": False, "signatures": True}
        signatures_off = workload(summary, "maxsum-appro/cold/signatures-off")
        assert signatures_off["toggles"] == {"kernels": True, "signatures": False}

    def test_toggles_restored_after_run(self):
        from repro.index import signatures
        from repro.kernels import flat

        assert flat._FORCED is None
        assert signatures._FORCED is None


class TestDiffGate:
    def test_self_diff_exits_zero(self, macro_smoke_run, capsys):
        path, _ = macro_smoke_run
        assert bench_main(["diff", str(path), str(path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_doctored_slower_run_exits_nonzero(self, macro_smoke_run, tmp_path, capsys):
        path, summary = macro_smoke_run
        doctored = json.loads(json.dumps(summary))
        for entry in doctored["workloads"]:
            if entry["latency_ms"] is not None:
                for key in ("mean_ms", "min_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
                    entry["latency_ms"][key] = entry["latency_ms"][key] * 10 + 5.0
            entry["throughput_qps"] /= 10.0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(doctored), encoding="utf-8")
        assert bench_main(["diff", str(path), str(slow)]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestCli:
    def test_profiles_subcommand_via_coskq_bench(self, capsys):
        assert bench_main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in PROFILES:
            assert name in out

    def test_experiment_ids_still_dispatch(self, capsys):
        # The macro subcommands must not shadow the paper-figure CLI.
        assert bench_main(["list"]) == 0
        assert "maxsum_hotel" in capsys.readouterr().out

    def test_unreadable_summary_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert macro_main(["diff", str(missing), str(missing)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_summary_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema_version": "coskq-bench-macro/1"}', encoding="utf-8")
        assert macro_main(["diff", str(bad), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_profile_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            macro_main(["run", "--profile", "bogus"])
        assert excinfo.value.code == 2
