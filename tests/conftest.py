"""Shared fixtures: small deterministic datasets and search contexts.

The correctness tests compare algorithms against the brute-force oracle,
which is exponential — so the shared instances here are deliberately
small (~100 objects, ~12 keywords) while still being spatially and
textually non-trivial.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.algorithms.base import SearchContext
from repro.analysis import contracts
from repro.data.generators import clustered_dataset, uniform_dataset
from repro.data.queries import generate_queries

# Opt-in runtime contract checking: REPRO_CHECK_CONTRACTS=1 wraps every
# solve() with feasibility/cost/optimality post-conditions, so the whole
# suite doubles as a conformance harness (see docs/STATIC_ANALYSIS.md).
if contracts.enabled():
    contracts.install()

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def tiny_dataset():
    """~120 objects over a 12-word vocabulary; oracle-friendly."""
    return uniform_dataset(120, 12, mean_keywords=2.5, seed=11, name="tiny")


@pytest.fixture(scope="session")
def tiny_context(tiny_dataset):
    return SearchContext(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_queries(tiny_dataset):
    """Ten 3-keyword queries over the tiny dataset."""
    return generate_queries(tiny_dataset, 3, 10, seed=5)


@pytest.fixture(scope="session")
def clustered_small():
    """Clustered variant to exercise skewed spatial layouts."""
    return clustered_dataset(150, 15, mean_keywords=3.0, cluster_count=5, seed=23)


@pytest.fixture(scope="session")
def clustered_context(clustered_small):
    return SearchContext(clustered_small)


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture(scope="session")
def macro_smoke_run(tmp_path_factory):
    """One real ``coskq-bench run --profile smoke`` per test session.

    Runs the macro harness end-to-end through its CLI into a fresh
    dataset cache, and hands (summary path, parsed summary) to every
    macro-bench test — so tier-1 always exercises the harness exactly
    once (ISSUE 8 acceptance), not once per test.
    """
    import json

    from repro.tools.macro_cli import main as macro_main

    root = tmp_path_factory.mktemp("macro_bench")
    out = root / "smoke.json"
    exit_code = macro_main(
        [
            "run",
            "--profile",
            "smoke",
            "--out",
            str(out),
            "--cache-dir",
            str(root / "dataset_cache"),
            "--quiet",
        ]
    )
    assert exit_code == 0, "smoke profile run failed"
    return out, json.loads(out.read_text(encoding="utf-8"))


def make_random_instance(seed: int, num_objects: int = 60, vocab: int = 8):
    """A fresh random (dataset, context, queries) triple for property tests."""
    dataset = uniform_dataset(
        num_objects, vocab, mean_keywords=2.0, seed=seed, name="prop%d" % seed
    )
    context = SearchContext(dataset)
    queries = generate_queries(dataset, 3, 3, seed=seed + 1)
    return dataset, context, queries
