"""Hypothesis properties of the macro harness's aggregation math.

The regression gate is only as trustworthy as the percentiles feeding
it, so the invariants are pinned as properties rather than examples:
ordering (min ≤ p50 ≤ p95 ≤ p99 ≤ max), bounds (every statistic lies
within the sample range), and the merge law — summarizing shards merged
together equals summarizing the whole run, regardless of how the
samples were sharded or ordered.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.macro.aggregate import LatencyAccumulator, throughput_qps
from repro.errors import InvalidParameterError

#: Latencies in milliseconds: non-negative, finite, spanning µs to minutes.
latencies = st.lists(
    st.floats(min_value=0.0, max_value=60_000.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@given(latencies)
def test_percentiles_are_monotone(samples):
    summary = LatencyAccumulator(samples).summary()
    assert (
        summary["min_ms"]
        <= summary["p50_ms"]
        <= summary["p95_ms"]
        <= summary["p99_ms"]
        <= summary["max_ms"]
    )


@given(latencies)
def test_statistics_lie_within_sample_bounds(samples):
    summary = LatencyAccumulator(samples).summary()
    lo, hi = min(samples), max(samples)
    for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
        assert lo <= summary[key] <= hi
    assert summary["min_ms"] == lo
    assert summary["max_ms"] == hi
    assert summary["count"] == len(samples)


@given(latencies, st.lists(st.integers(min_value=0, max_value=200), max_size=8))
def test_merge_of_shards_equals_whole(samples, cut_points):
    """However the samples are sharded, merging reproduces the whole."""
    bounds = sorted(min(cut, len(samples)) for cut in cut_points)
    shards = []
    previous = 0
    for bound in bounds + [len(samples)]:
        shards.append(LatencyAccumulator(samples[previous:bound]))
        previous = bound
    merged = LatencyAccumulator.merge(shards)
    assert merged.summary() == LatencyAccumulator(samples).summary()


@given(latencies, st.randoms(use_true_random=False))
def test_summary_is_order_independent(samples, rnd):
    shuffled = list(samples)
    rnd.shuffle(shuffled)
    assert (
        LatencyAccumulator(shuffled).summary()
        == LatencyAccumulator(samples).summary()
    )


@given(latencies)
def test_single_sample_collapses_every_statistic(samples):
    value = samples[0]
    summary = LatencyAccumulator([value]).summary()
    assert {
        summary["min_ms"],
        summary["p50_ms"],
        summary["p95_ms"],
        summary["p99_ms"],
        summary["max_ms"],
        summary["mean_ms"],
    } == {value}


def test_empty_accumulator_refuses_summary():
    with pytest.raises(InvalidParameterError):
        LatencyAccumulator().summary()


def test_negative_latency_refused():
    with pytest.raises(InvalidParameterError):
        LatencyAccumulator().add(-0.001)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=3_600.0, allow_nan=False),
)
def test_throughput_is_non_negative_and_scales(completed, wall_s):
    qps = throughput_qps(completed, wall_s)
    assert qps >= 0.0
    if wall_s == 0.0:
        assert qps == 0.0
    else:
        assert qps == pytest.approx(completed / wall_s)


def test_throughput_refuses_negative_inputs():
    with pytest.raises(InvalidParameterError):
        throughput_qps(-1, 1.0)
    with pytest.raises(InvalidParameterError):
        throughput_qps(1, -1.0)
