"""Execution policies, budgets, and the cooperative-cancellation clock.

The budget machinery is the foundation of the robustness guarantees:
typed aborts with partial progress, deadline probes bounded to one
checkpoint interval of slack, and per-attempt accounting.  These tests
pin those semantics down with a virtual clock so nothing sleeps.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    InjectedFaultError,
    InvalidParameterError,
    SearchAbortedError,
)
from repro.exec import (
    DEFAULT_CHECKPOINT_INTERVAL,
    Budget,
    Checkpoint,
    ExecutionPolicy,
    ManualClock,
    MonotonicClock,
)
from repro.exec.clock import Clock


class TestClocks:
    def test_manual_clock_advances_on_sleep(self):
        clock = ManualClock()
        start = clock.now()
        clock.sleep(1.5)
        assert clock.now() == pytest.approx(start + 1.5)

    def test_manual_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            ManualClock().sleep(-0.1)

    def test_both_clocks_satisfy_protocol(self):
        assert isinstance(ManualClock(), Clock)
        assert isinstance(MonotonicClock(), Clock)

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestBudgetWork:
    def test_tick_accumulates_work(self):
        budget = Budget(work_limit=10)
        budget.tick(3)
        budget.tick(4)
        assert budget.spent == 7
        assert budget.remaining_work() == 3

    def test_work_limit_raises_typed_error(self):
        budget = Budget(work_limit=5)
        budget.tick(5)  # exactly at the limit is fine
        with pytest.raises(BudgetExceededError) as info:
            budget.tick(1)
        err = info.value
        assert err.counter == "work"
        assert err.limit == 5
        assert err.spent == 6
        assert isinstance(err, SearchAbortedError)

    def test_abort_carries_partial_progress(self):
        budget = Budget(work_limit=2)
        counters = {"states_expanded": 41}
        with pytest.raises(BudgetExceededError) as info:
            budget.tick(3, counters=counters)
        assert info.value.counters == {"states_expanded": 41}

    def test_unlimited_budget_never_aborts_on_work(self):
        budget = Budget()
        budget.tick(10**6)
        assert budget.remaining_work() is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            Budget(work_limit=-1)
        with pytest.raises(InvalidParameterError):
            Budget(checkpoint_interval=0)

    def test_budget_satisfies_checkpoint_protocol(self):
        assert isinstance(Budget(), Checkpoint)


class TestBudgetDeadline:
    def test_checkpoint_raises_after_deadline(self):
        clock = ManualClock()
        budget = Budget(deadline_at=clock.now() + 1.0, clock=clock)
        budget.checkpoint()  # in time: fine
        clock.sleep(2.0)
        with pytest.raises(DeadlineExceededError) as info:
            budget.checkpoint()
        err = info.value
        assert err.deadline_ms == pytest.approx(1000.0)
        assert err.elapsed_ms == pytest.approx(2000.0)

    def test_deadline_probed_only_every_interval(self):
        """The ±1 checkpoint interval guarantee, exactly.

        The clock is already past the deadline, but ticks between probes
        must not abort: only the tick that crosses the interval boundary
        pays for the deadline check.
        """
        clock = ManualClock()
        budget = Budget(
            deadline_at=clock.now() + 0.5, clock=clock, checkpoint_interval=64
        )
        clock.sleep(10.0)  # deadline long gone
        for _ in range(63):
            budget.tick()  # probes not yet due
        with pytest.raises(DeadlineExceededError):
            budget.tick()  # 64th tick crosses the probe boundary
        assert budget.spent == 64

    def test_remaining_seconds_tracks_clock(self):
        clock = ManualClock()
        budget = Budget(deadline_at=clock.now() + 3.0, clock=clock)
        clock.sleep(1.0)
        assert budget.remaining_seconds() == pytest.approx(2.0)
        assert Budget().remaining_seconds() is None

    def test_checkpoint_counts_probes(self):
        budget = Budget(checkpoint_interval=2)
        for _ in range(6):
            budget.tick()
        assert budget.checkpoints == 3


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.deadline_ms is None
        assert policy.work_budget is None
        assert policy.max_retries == 0
        assert policy.checkpoint_interval == DEFAULT_CHECKPOINT_INTERVAL
        assert policy.always_answer is True

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ExecutionPolicy(deadline_ms=0)
        with pytest.raises(InvalidParameterError):
            ExecutionPolicy(work_budget=-5)
        with pytest.raises(InvalidParameterError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(InvalidParameterError):
            ExecutionPolicy(checkpoint_interval=0)

    def test_budget_factory_threads_policy_through(self):
        clock = ManualClock()
        policy = ExecutionPolicy(work_budget=9, checkpoint_interval=7)
        budget = policy.budget(clock, started=clock.now(), deadline_at=None)
        assert budget.work_limit == 9
        assert budget.checkpoint_interval == 7
        assert budget.deadline_at is None

    def test_transient_classification(self):
        policy = ExecutionPolicy()
        assert policy.is_transient(InjectedFaultError("keyword_nn", 3))
        assert not policy.is_transient(BudgetExceededError("work", 1, 2))
        assert not policy.is_transient(RuntimeError("boom"))

    def test_retry_on_is_configurable(self):
        policy = ExecutionPolicy(retry_on=(OSError,))
        assert policy.is_transient(OSError("transient io"))
        assert not policy.is_transient(InjectedFaultError("keyword_nn", 1))
