"""Seeded R11 violations: unbounded loops that never checkpoint.

``solve`` drains an ``*_iter`` stream (R11's definition of unbounded)
and spins a bare ``while`` without ever reaching ``_bump`` or
``_checkpoint`` on the skipping path; ``checked_drain`` is the noqa
twin.  ``polite_drain`` checkpoints on every path and must stay clean —
it is the regression guard against R11 flagging correct loops.
"""

__all__ = []


class DrainSolver:
    """Solver-family by duck type: defines ``_reset_counters``."""

    name = "drain-dataflow-fixture"

    def _reset_counters(self):
        self.counters = {}

    def _bump(self, counter, amount=1):
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def _checkpoint(self):
        pass

    def solve(self, query):
        self._reset_counters()
        total = 0
        for dist, obj in query.index.nearest_relevant_iter(query.location):  # expect-dataflow: R11
            if dist > 1.0:
                continue  # this path skips the bump below
            self._bump("objects_seen")
            total += 1
        while total > 0:  # expect-dataflow: R11
            total -= 1
        return total

    def checked_drain(self, stream):
        out = 0
        while stream.pending():  # repro: noqa(R11) — seeded twin
            out += 1
        return out

    def polite_drain(self, query):
        for dist, obj in query.index.nearest_relevant_iter(query.location):
            self._checkpoint()
            if dist > 1.0:
                continue
            self._bump("objects_seen")
