"""Seeded R12 violations: toggle-parity defects.

``missing_off_arm`` guards on the kernels toggle without an off-arm (and
without terminating the on-arm), so the measured baseline is no longer
an auditable path.  ``off_path_symbol`` computes a signature mask before
branching on the toggle, putting a ``repro.index.signatures`` symbol on
the toggle-off slice.  ``suppressed_off_path`` is the noqa twin, and
``clean_parity`` is the regression guard: a properly gated twin that
must stay clean.
"""

__all__ = []

from repro.index.signatures import mask_of, signatures_enabled
from repro.kernels import kernels_enabled, max_distance_from


def missing_off_arm(xs, ys):
    best = 0.0
    if kernels_enabled():  # expect-dataflow: R12
        best = max_distance_from(0.0, 0.0, xs, ys)
    return best


def off_path_symbol(keywords):
    use_sig = signatures_enabled()
    mask = mask_of(keywords)  # expect-dataflow: R12
    if use_sig:
        return mask
    return len(keywords)


def suppressed_off_path(keywords):
    use_sig = signatures_enabled()
    mask = mask_of(keywords)  # repro: noqa(R12) — seeded twin
    if use_sig:
        return mask
    return len(keywords)


def clean_parity(keywords):
    use_sig = signatures_enabled()
    mask = mask_of(keywords) if use_sig else 0
    if use_sig:
        return mask
    return len(keywords)
