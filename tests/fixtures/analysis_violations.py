# A module that deliberately violates every static-analysis rule.
#
# tests/test_static_analysis.py lints this file with a permissive config
# (no per-rule path scoping) and asserts that every expect-marker comment
# in here is reported with exactly that rule id on exactly that line.
# The module is never imported (names are unresolved on purpose); it only
# has to parse.  The missing `__all__` is itself one of the expected R4
# hits — the test pins it to line 1, where the engine reports it.

import random
import time
from datetime import datetime  # expect: R2


class UnregisteredAlgo(CoSKQAlgorithm):  # expect: R1, R1, R1
    # No `name`, no `exact`, and not in the registry: three R1 hits.

    def solve(self, query):  # expect: R5
        started = time.perf_counter()  # expect: R2
        jitter = random.random()  # expect: R2
        if query.cost == 1.375:  # expect: R3
            return jitter
        total_cost = compute(query) + jitter
        if total_cost != 0.0:  # expect: R3
            return total_cost
        return started


class StampedAlgo(CoSKQAlgorithm):  # expect: R1
    # Declares its attributes but is absent from the registry (one R1).
    name = "stamped"
    exact = False

    def solve(self, query):  # expect: R5
        stamp = datetime.now()
        return stamp


def cache_lookup(key, bucket={}):  # expect: R4
    try:
        return bucket[key]
    except:  # expect: R4
        return None


def abort_search(expansions, limit):
    if expansions > limit:
        raise RuntimeError("expansion budget exceeded")  # expect: R6
    raise errors.RuntimeError  # expect: R6


def poison_shared_state(algo, value):
    algo.context.dataset = value  # expect: R7
    algo.index._cache[0] = value  # expect: R7
    algo.context.index.counters += 1  # expect: R7
    del algo.context.inverted.postings  # expect: R7
    algo.context.index._cache.clear()  # expect: R7
    algo.inverted.postings.append(value)  # expect: R7
    algo.context = value  # construction-style rebind: not R7's business
    value.scratch.append(1)  # private owner: not R7's business
    return algo


class QuietAlgo(CoSKQAlgorithm):  # expect: R1
    # Declares its attributes but is absent from the registry (one R1).
    name = "quiet"
    exact = True

    def solve(self, query):  # repro: noqa(R5) — suppression must be honored
        return cache_lookup(query)


def inline_distance(ax, ay, bx, by):
    dx = ax - bx
    dy = ay - by
    direct = math.hypot(dx, dy)  # expect: R8
    rolled = math.sqrt(dx * dx + dy * dy)  # expect: R8
    ratio = math.sqrt(3.0)  # all-constant args: ratio literal, not distance math
    return direct + rolled + ratio


def inline_keyword_algebra(query_keywords, node_keywords):
    if query_keywords.isdisjoint(node_keywords):  # expect: R9
        return frozenset()
    shared = query_keywords & node_keywords  # expect: R9
    if query_keywords <= node_keywords:  # expect: R9
        return shared
    remaining = query_keywords
    remaining &= node_keywords  # expect: R9
    return node_keywords.issubset(query_keywords)  # expect: R9
