"""Seeded R10 violations for the interprocedural dataflow pass.

The mutation is *not* in ``solve()`` itself — it hides one call away in
a helper, which is exactly the escape the syntactic R7 cannot see and
the call-graph R10 must.  The second solver is the noqa twin: the same
defect with a targeted suppression, proving ``# repro: noqa(R10)``
composes with dataflow findings.  Run under a permissive config (the
default include scoping keeps R10 inside ``repro/``).
"""

__all__ = []


class LeakySolver:
    """Solver-family by duck type: defines ``_reset_counters``."""

    name = "leaky-dataflow-fixture"

    def _reset_counters(self):
        self.counters = {}

    def solve(self, query):
        self._reset_counters()
        self._warm(query)
        return None

    def _warm(self, query):
        # Reachable from solve() -> flagged by R10 with a call chain.
        self.context.index._cache[query] = 1  # expect-dataflow: R10


class QuietLeakySolver:
    """The same escape, suppressed at the offending line."""

    name = "leaky-dataflow-suppressed"

    def _reset_counters(self):
        self.counters = {}

    def solve(self, query):
        self._reset_counters()
        self._warm(query)
        return None

    def _warm(self, query):
        self.context.index._cache[query] = 1  # repro: noqa(R7, R10) — seeded twin
