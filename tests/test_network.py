"""Tests for the road-network extension."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.functions import DiaCost, MaxSumCost, MinMaxCost, SumCost
from repro.errors import InfeasibleQueryError, InvalidParameterError
from repro.geometry.point import Point
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.vocabulary import Vocabulary
from repro.network.algorithms import (
    NetworkBnBExact,
    NetworkContext,
    NetworkGreedyAppro,
    NetworkNNSetAlgorithm,
)
from repro.network.dataset import NetworkDataset, random_network_dataset
from repro.network.graph import RoadNetwork, grid_network


def line_network(n=5, spacing=1.0):
    network = RoadNetwork()
    for i in range(n):
        network.add_node(i, Point(i * spacing, 0.0))
    for i in range(n - 1):
        network.add_edge(i, i + 1)
    return network


class TestRoadNetwork:
    def test_add_node_twice_rejected(self):
        network = line_network()
        with pytest.raises(InvalidParameterError):
            network.add_node(0, Point(0, 0))

    def test_edge_validation(self):
        network = line_network()
        with pytest.raises(InvalidParameterError):
            network.add_edge(0, 99)
        with pytest.raises(InvalidParameterError):
            network.add_edge(0, 0)
        with pytest.raises(InvalidParameterError):
            network.add_edge(0, 2, weight=-1.0)

    def test_default_weight_is_euclidean(self):
        network = line_network()
        assert network.distance(0, 1) == pytest.approx(1.0)

    def test_line_distances(self):
        network = line_network()
        assert network.distance(0, 4) == pytest.approx(4.0)
        assert network.distance(4, 0) == pytest.approx(4.0)

    def test_custom_weight_beats_geometry(self):
        network = line_network()
        network.add_edge(0, 4, weight=0.5)  # a motorway
        assert network.distance(0, 4) == pytest.approx(0.5)
        assert network.distance(0, 3) == pytest.approx(1.5)

    def test_disconnected_is_inf(self):
        network = RoadNetwork()
        network.add_node(0, Point(0, 0))
        network.add_node(1, Point(1, 0))
        assert math.isinf(network.distance(0, 1))
        assert not network.is_connected()

    def test_nearest_node(self):
        network = line_network()
        assert network.nearest_node(Point(2.2, 0.5)) == 2

    def test_expansion_order(self):
        network = line_network()
        order = [node for _, node in network.expansion_from(2)]
        assert order[0] == 2
        distances = [d for d, _ in network.expansion_from(2)]
        assert distances == sorted(distances)

    def test_cache_invalidated_on_new_edge(self):
        network = line_network()
        assert network.distance(0, 4) == pytest.approx(4.0)
        network.add_edge(0, 4, weight=1.0)
        assert network.distance(0, 4) == pytest.approx(1.0)


class TestGridNetwork:
    def test_connected_and_sized(self):
        network = grid_network(6, 7, seed=3)
        assert len(network) == 42
        assert network.is_connected()

    def test_determinism(self):
        a = grid_network(5, 5, seed=1)
        b = grid_network(5, 5, seed=1)
        assert a.edge_count() == b.edge_count()
        assert all(a.location(n) == b.location(n) for n in a.nodes())

    @given(st.integers(0, 500))
    @settings(max_examples=10)
    def test_always_connected(self, seed):
        assert grid_network(4, 5, seed=seed).is_connected()

    def test_network_distance_at_least_euclidean(self):
        network = grid_network(6, 6, seed=2)
        nodes = sorted(network.nodes())
        for a, b in zip(nodes[:10], nodes[10:20]):
            euclid = network.location(a).distance_to(network.location(b))
            assert network.distance(a, b) >= euclid - 1e-9

    def test_degenerate_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            grid_network(0, 5)


def tiny_network_dataset():
    """Line network with hand-placed objects (keyword ids 0, 1, 2)."""
    network = line_network(6)
    vocabulary = Vocabulary(["a", "b", "c"])
    objects = [
        SpatialObject(0, network.location(1), frozenset({0})),
        SpatialObject(1, network.location(2), frozenset({1})),
        SpatialObject(2, network.location(5), frozenset({0, 1, 2})),
        SpatialObject(3, network.location(3), frozenset({2})),
    ]
    node_of = {0: 1, 1: 2, 2: 5, 3: 3}
    return NetworkDataset(network, objects, node_of, vocabulary)


class TestNetworkAlgorithms:
    def test_nn_set(self):
        dataset = tiny_network_dataset()
        context = NetworkContext(dataset)
        query = Query.create(0.0, 0.0, [0, 1, 2])  # snaps to node 0
        result = NetworkNNSetAlgorithm(context, MaxSumCost()).solve(query)
        assert result.is_feasible_for(query)
        # Nearest carriers from node 0: a@1, b@2, c@3.
        assert result.object_ids == (0, 1, 3)

    def test_exact_beats_or_ties_baselines(self):
        dataset = random_network_dataset(rows=8, cols=8, num_objects=80, seed=5)
        context = NetworkContext(dataset)
        query = Query.create(40.0, 40.0, list(range(3)))
        exact = NetworkBnBExact(context, MaxSumCost()).solve(query)
        greedy = NetworkGreedyAppro(context, MaxSumCost()).solve(query)
        nn = NetworkNNSetAlgorithm(context, MaxSumCost()).solve(query)
        assert exact.cost <= greedy.cost + 1e-9
        assert exact.cost <= nn.cost + 1e-9
        for result in (exact, greedy, nn):
            assert result.is_feasible_for(query)

    def test_exact_matches_exhaustive_on_tiny(self):
        from repro.algorithms.cover import iter_covers

        dataset = tiny_network_dataset()
        context = NetworkContext(dataset)
        query = Query.create(0.0, 0.0, [0, 1, 2])
        query_node = context.query_node(query)
        best = min(
            context.evaluate(MaxSumCost(), query_node, cover)
            for cover in iter_covers(query.keywords, dataset.objects)
        )
        exact = NetworkBnBExact(context, MaxSumCost()).solve(query)
        assert exact.cost == pytest.approx(best)

    def test_network_detour_changes_answer(self):
        # Euclidean says node 5's one-stop object is close when we bend
        # the line into a U; network distance knows it is far.
        network = RoadNetwork()
        coords = [(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]
        for i, (x, y) in enumerate(coords):
            network.add_node(i, Point(float(x), float(y)))
        for i in range(5):
            network.add_edge(i, i + 1)  # a U-shaped street
        vocabulary = Vocabulary(["a", "b"])
        objects = [
            SpatialObject(0, network.location(1), frozenset({0})),
            SpatialObject(1, network.location(2), frozenset({1})),
            SpatialObject(2, network.location(5), frozenset({0, 1})),
        ]
        dataset = NetworkDataset(network, objects, {0: 1, 1: 2, 2: 5}, vocabulary)
        context = NetworkContext(dataset)
        query = Query.create(0.0, 0.0, [0, 1])
        # Euclidean: object 2 is 1.0 away (best singleton).  Network: it
        # is 5 hops away; the pair {0, 1} wins.
        result = NetworkBnBExact(context, MaxSumCost()).solve(query)
        assert set(result.object_ids) == {0, 1}

    def test_min_cost_rejected_by_exact(self):
        dataset = tiny_network_dataset()
        context = NetworkContext(dataset)
        with pytest.raises(InvalidParameterError):
            NetworkBnBExact(context, MinMaxCost()).solve(
                Query.create(0, 0, [0, 1])
            )

    def test_infeasible_query(self):
        dataset = tiny_network_dataset()
        context = NetworkContext(dataset)
        with pytest.raises(InfeasibleQueryError):
            NetworkNNSetAlgorithm(context, MaxSumCost()).solve(
                Query.create(0, 0, [0, 99])
            )

    @pytest.mark.parametrize("cost", [MaxSumCost(), DiaCost(), SumCost()])
    def test_costs_all_supported(self, cost):
        dataset = random_network_dataset(rows=6, cols=6, num_objects=60, seed=9)
        context = NetworkContext(dataset)
        query = Query.create(25.0, 25.0, list(range(3)))
        exact = NetworkBnBExact(context, cost).solve(query)
        greedy = NetworkGreedyAppro(context, cost).solve(query)
        assert exact.cost <= greedy.cost + 1e-9


class TestNetworkDataset:
    def test_random_dataset_shape(self):
        dataset = random_network_dataset(rows=5, cols=5, num_objects=40, seed=1)
        assert len(dataset) == 40
        assert dataset.network.is_connected()
        for obj in dataset:
            node = dataset.node_of[obj.oid]
            assert obj.location == dataset.network.location(node)

    def test_object_without_node_rejected(self):
        network = line_network()
        vocabulary = Vocabulary(["a"])
        obj = SpatialObject(0, Point(0, 0), frozenset({0}))
        with pytest.raises(InvalidParameterError):
            NetworkDataset(network, [obj], {}, vocabulary)

    def test_euclidean_projection(self):
        dataset = tiny_network_dataset()
        euclidean = dataset.as_euclidean_dataset()
        assert len(euclidean) == len(dataset)

    def test_missing_keywords(self):
        dataset = tiny_network_dataset()
        assert dataset.missing_keywords([0, 7]) == frozenset({7})
