"""Tests for datasets: construction, statistics, serialization."""

import io

import pytest

from repro.errors import DatasetFormatError
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.vocabulary import Vocabulary


def sample_dataset():
    return Dataset.from_records(
        [
            (0.0, 0.0, ["hotel", "pool"]),
            (1.0, 2.0, ["hotel"]),
            (3.0, 1.0, ["spa", "pool", "gym"]),
        ],
        name="sample",
    )


class TestConstruction:
    def test_from_records_interns_words(self):
        ds = sample_dataset()
        assert len(ds) == 3
        assert len(ds.vocabulary) == 4
        hotel = ds.vocabulary.id_of("hotel")
        assert hotel in ds[0].keywords and hotel in ds[1].keywords

    def test_dense_oid_enforced(self):
        v = Vocabulary(["a"])
        bad = [SpatialObject.create(5, 0, 0, [0])]
        with pytest.raises(DatasetFormatError):
            Dataset(bad, v)

    def test_iteration_and_indexing(self):
        ds = sample_dataset()
        assert [o.oid for o in ds] == [0, 1, 2]
        assert ds[1].location.x == 1.0

    def test_repr(self):
        assert "sample" in repr(sample_dataset())


class TestDerived:
    def test_mbr(self):
        rect = sample_dataset().mbr()
        assert (rect.min_x, rect.min_y, rect.max_x, rect.max_y) == (0, 0, 3, 2)

    def test_mbr_cached_instance(self):
        ds = sample_dataset()
        assert ds.mbr() is ds.mbr()

    def test_empty_dataset_has_no_mbr(self):
        ds = Dataset([], Vocabulary())
        with pytest.raises(DatasetFormatError):
            ds.mbr()

    def test_keyword_frequencies(self):
        ds = sample_dataset()
        freq = ds.keyword_frequencies()
        assert freq[ds.vocabulary.id_of("hotel")] == 2
        assert freq[ds.vocabulary.id_of("gym")] == 1

    def test_keywords_by_frequency_ranking(self):
        ds = sample_dataset()
        ranked = ds.keywords_by_frequency()
        top_two = {ds.vocabulary.word_of(k) for k in ranked[:2]}
        assert top_two == {"hotel", "pool"}

    def test_statistics(self):
        stats = sample_dataset().statistics()
        assert stats.num_objects == 3
        assert stats.num_unique_words == 4
        assert stats.num_words == 6
        assert stats.avg_keywords_per_object == pytest.approx(2.0)
        assert stats.as_row()["objects"] == 3


class TestSerialization:
    def test_round_trip_via_stream(self):
        ds = sample_dataset()
        buffer = io.StringIO()
        ds.dump(buffer)
        loaded = Dataset.parse(buffer.getvalue().splitlines(), name="sample")
        assert len(loaded) == len(ds)
        for a, b in zip(ds, loaded):
            assert a.location == b.location
            assert ds.vocabulary.words_of(a.keywords) == loaded.vocabulary.words_of(
                b.keywords
            )

    def test_round_trip_via_file(self, tmp_path):
        ds = sample_dataset()
        path = tmp_path / "sample.tsv"
        ds.save(path)
        loaded = Dataset.load(path)
        assert loaded.name == "sample"
        assert len(loaded) == 3

    def test_parse_skips_comments_and_blanks(self):
        text = ["# comment", "", "1.0\t2.0\ta b"]
        ds = Dataset.parse(text)
        assert len(ds) == 1

    def test_parse_rejects_bad_field_count(self):
        with pytest.raises(DatasetFormatError):
            Dataset.parse(["1.0\t2.0"])

    def test_parse_rejects_bad_coordinates(self):
        with pytest.raises(DatasetFormatError):
            Dataset.parse(["x\t2.0\ta"])

    def test_parse_rejects_keywordless_objects(self):
        with pytest.raises(DatasetFormatError):
            Dataset.parse(["1.0\t2.0\t "])

    def test_round_trip_preserves_statistics(self, tmp_path):
        from repro.data.generators import uniform_dataset

        ds = uniform_dataset(50, 10, seed=2)
        path = tmp_path / "u.tsv"
        ds.save(path)
        loaded = Dataset.load(path)
        assert loaded.statistics() == ds.statistics()
