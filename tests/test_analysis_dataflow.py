"""The interprocedural dataflow pass: rules R10-R12 and their plumbing.

Four layers of guarantees:

1. seeded fixtures prove each dataflow rule actually fires, with the
   right rule id on the right line, and that ``# repro: noqa(RXX)``
   composes with interprocedural findings;
2. correctly written twins in the same fixtures stay clean, guarding
   against the rules over-firing;
3. the output contract holds: violations are deterministically ordered,
   and the JSON payload (including ``function``/``callchain``) matches a
   golden file byte-for-byte;
4. the summary cache is a pure accelerator: warm runs reproduce cold
   results exactly, and corrupt cache files degrade to a cold start.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import AnalysisConfig, run_analysis
from repro.analysis.dataflow import SUMMARY_VERSION
from repro.analysis.engine import SummaryCache, load_module
from repro.analysis.report import render_json

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
FIXTURES = ROOT / "tests" / "fixtures"
R10_FIXTURE = FIXTURES / "dataflow_r10.py"
R11_FIXTURE = FIXTURES / "dataflow_r11.py"
R12_FIXTURE = FIXTURES / "dataflow_r12.py"
GOLDEN = FIXTURES / "dataflow_r10.golden.json"

#: Every rule on every path — the dataflow fixtures live outside the
#: default ``repro/`` include scoping.
PERMISSIVE = AnalysisConfig(include={}, exclude={})


def rule_hits(report, rule):
    """(line, violation) pairs for one rule id."""
    return [(v.line, v) for v in report.violations if v.rule == rule]


class TestR10EscapeAnalysis:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis([R10_FIXTURE], PERMISSIVE)

    def test_escape_through_helper_is_flagged(self, report):
        hits = rule_hits(report, "R10")
        assert [line for line, _ in hits] == [29]

    def test_finding_carries_function_and_callchain(self, report):
        (_, violation), = rule_hits(report, "R10")
        assert violation.function.endswith("LeakySolver._warm")
        assert len(violation.chain) == 2
        assert violation.chain[0].endswith("LeakySolver.solve")
        assert violation.chain[-1].endswith("LeakySolver._warm")

    def test_noqa_twin_is_suppressed(self, report):
        # QuietLeakySolver._warm has the same defect under
        # ``# repro: noqa(R7, R10)`` — both findings fold away.
        assert report.suppressed == 2
        assert all(line == 29 for line, _ in rule_hits(report, "R10"))


class TestR11CheckpointReachability:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis([R11_FIXTURE], PERMISSIVE)

    def test_stream_loop_and_while_loop_flagged(self, report):
        assert [line for line, _ in rule_hits(report, "R11")] == [30, 35]

    def test_noqa_twin_is_suppressed(self, report):
        assert report.suppressed == 1

    def test_checkpointed_loop_stays_clean(self, report):
        # polite_drain checkpoints on every path; R11 must not over-fire.
        flagged = {v.function for _, v in rule_hits(report, "R11")}
        assert not any(fn.endswith("polite_drain") for fn in flagged if fn)


class TestR12ToggleParity:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis([R12_FIXTURE], PERMISSIVE)

    def test_missing_off_arm_and_off_path_symbol_flagged(self, report):
        hits = rule_hits(report, "R12")
        assert [line for line, _ in hits] == [20, 27]
        messages = [v.message for _, v in hits]
        assert "no off-arm" in messages[0]
        assert "mask_of" in messages[1]

    def test_noqa_twin_is_suppressed(self, report):
        assert report.suppressed == 1

    def test_gated_twin_stays_clean(self, report):
        flagged = {v.function for _, v in rule_hits(report, "R12")}
        assert not any(fn.endswith("clean_parity") for fn in flagged if fn)


class TestDeterministicOutput:
    def test_violations_sorted_by_path_line_rule(self):
        report = run_analysis(
            [R12_FIXTURE, R10_FIXTURE, R11_FIXTURE], PERMISSIVE
        )
        keys = [(v.path, v.line, v.rule) for v in report.violations]
        assert keys == sorted(keys)

    def test_input_order_does_not_change_output(self):
        forward = run_analysis(
            [R10_FIXTURE, R11_FIXTURE, R12_FIXTURE], PERMISSIVE
        )
        scrambled = run_analysis(
            [R12_FIXTURE, R10_FIXTURE, R11_FIXTURE], PERMISSIVE
        )
        assert [v.format() for v in forward.violations] == [
            v.format() for v in scrambled.violations
        ]

    def test_repeat_runs_are_identical(self):
        first = run_analysis([R11_FIXTURE], PERMISSIVE)
        second = run_analysis([R11_FIXTURE], PERMISSIVE)
        assert [v.format() for v in first.violations] == [
            v.format() for v in second.violations
        ]


class TestJsonGolden:
    def test_payload_matches_golden_file(self, monkeypatch):
        # compute_relpath falls back to cwd-relative paths for files
        # outside a ``repro`` package, so pin cwd to the repo root.
        monkeypatch.chdir(ROOT)
        report = run_analysis([R10_FIXTURE], PERMISSIVE)
        assert render_json(report) + "\n" == GOLDEN.read_text(encoding="utf-8")

    def test_schema_fields(self, monkeypatch):
        monkeypatch.chdir(ROOT)
        payload = json.loads(
            render_json(run_analysis([R10_FIXTURE], PERMISSIVE))
        )
        assert set(payload) == {
            "ok", "files_checked", "suppressed", "cache", "violations"
        }
        assert set(payload["cache"]) == {"hits", "misses"}
        by_rule = {v["rule"]: v for v in payload["violations"]}
        # Interprocedural findings carry function + callchain ...
        assert {"rule", "path", "line", "message", "function", "callchain"} \
            <= set(by_rule["R10"])
        # ... and purely syntactic findings omit both, SARIF-style.
        assert "function" not in by_rule["R7"]
        assert "callchain" not in by_rule["R7"]


class TestSummaryCache:
    FIXTURE_SET = (R10_FIXTURE, R11_FIXTURE, R12_FIXTURE)

    def _config(self, tmp_path):
        return AnalysisConfig(
            include={}, exclude={}, cache_path=str(tmp_path / "cache.json")
        )

    def test_cold_then_warm(self, tmp_path):
        config = self._config(tmp_path)
        cold = run_analysis(list(self.FIXTURE_SET), config)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(self.FIXTURE_SET)
        warm = run_analysis(list(self.FIXTURE_SET), config)
        assert warm.cache_hits == len(self.FIXTURE_SET)
        assert warm.cache_misses == 0

    def test_warm_run_reproduces_cold_results(self, tmp_path):
        config = self._config(tmp_path)
        cold = run_analysis(list(self.FIXTURE_SET), config)
        warm = run_analysis(list(self.FIXTURE_SET), config)
        assert [v.format() for v in cold.violations] == [
            v.format() for v in warm.violations
        ]
        assert warm.suppressed == cold.suppressed

    def test_content_change_invalidates_entry(self, tmp_path):
        source = R12_FIXTURE.read_text(encoding="utf-8")
        target = tmp_path / "dataflow_r12.py"
        target.write_text(source, encoding="utf-8")
        config = AnalysisConfig(
            include={}, exclude={}, cache_path=str(tmp_path / "cache.json")
        )
        run_analysis([target], config)
        target.write_text(source + "\n\nextra = 1\n", encoding="utf-8")
        changed = run_analysis([target], config)
        assert changed.cache_misses == 1

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        config = self._config(tmp_path)
        run_analysis(list(self.FIXTURE_SET), config)
        (tmp_path / "cache.json").write_text("{not json", encoding="utf-8")
        report = run_analysis(list(self.FIXTURE_SET), config)
        assert report.cache_misses == len(self.FIXTURE_SET)
        assert rule_hits(report, "R10")

    def test_cache_key_pins_summary_version(self):
        module = load_module(R10_FIXTURE)
        assert SummaryCache._key(module).endswith(":v%d" % SUMMARY_VERSION)


class TestRepositoryDataflowClean:
    def test_src_tree_has_no_dataflow_violations(self):
        from repro.analysis import find_pyproject

        config = AnalysisConfig.load(find_pyproject(SRC))
        report = run_analysis([SRC], config)
        dataflow = [
            v for v in report.violations if v.rule in ("R10", "R11", "R12")
        ]
        assert dataflow == [], "\n".join(v.format() for v in dataflow)

    def test_no_dataflow_flag_equivalent_skips_rules(self):
        import dataclasses

        config = dataclasses.replace(PERMISSIVE, dataflow=False)
        report = run_analysis([R10_FIXTURE], config)
        assert rule_hits(report, "R10") == []
        # The syntactic sibling R7 still fires on the same line.
        assert [line for line, _ in rule_hits(report, "R7")] == [29]
