"""Unit and property tests for the MBR bounds used by the R-tree."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.geometry.point import Point

coords = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def rect_strategy():
    return st.builds(
        lambda x1, x2, y1, y2: MBR(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
        coords,
        coords,
        coords,
        coords,
    )


class TestConstruction:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            MBR(1, 0, 0, 0)
        with pytest.raises(ValueError):
            MBR(0, 1, 0, 0)

    def test_from_point(self):
        r = MBR.from_point(Point(2, 3))
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (2, 3, 2, 3)
        assert r.area() == 0.0

    def test_from_points(self):
        r = MBR.from_points([Point(1, 5), Point(-2, 0), Point(3, 2)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (-2, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_union_all(self):
        r = MBR.union_all([MBR(0, 0, 1, 1), MBR(2, -1, 3, 0.5)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union_all([])


class TestMeasures:
    def test_width_height_area_margin(self):
        r = MBR(0, 0, 4, 3)
        assert r.width == 4 and r.height == 3
        assert r.area() == 12
        assert r.margin() == 7

    def test_center(self):
        assert MBR(0, 0, 4, 2).center() == Point(2, 1)

    def test_enlargement(self):
        base = MBR(0, 0, 1, 1)
        assert base.enlargement(MBR(0, 0, 1, 1)) == 0.0
        assert base.enlargement(MBR(1, 0, 2, 1)) == pytest.approx(1.0)


class TestRelations:
    def test_intersects_and_contains(self):
        a = MBR(0, 0, 4, 4)
        assert a.intersects(MBR(3, 3, 5, 5))
        assert not a.intersects(MBR(5, 5, 6, 6))
        assert a.contains(MBR(1, 1, 2, 2))
        assert not a.contains(MBR(1, 1, 5, 2))

    def test_touching_rectangles_intersect(self):
        assert MBR(0, 0, 1, 1).intersects(MBR(1, 1, 2, 2))

    def test_contains_point(self):
        r = MBR(0, 0, 2, 2)
        assert r.contains_point(Point(1, 1))
        assert r.contains_point(Point(0, 2))  # boundary
        assert not r.contains_point(Point(3, 1))


class TestDistances:
    def test_min_distance_inside_is_zero(self):
        assert MBR(0, 0, 2, 2).min_distance(Point(1, 1)) == 0.0

    def test_min_distance_axis_aligned(self):
        assert MBR(0, 0, 2, 2).min_distance(Point(5, 1)) == pytest.approx(3.0)
        assert MBR(0, 0, 2, 2).min_distance(Point(1, -4)) == pytest.approx(4.0)

    def test_min_distance_corner(self):
        assert MBR(0, 0, 2, 2).min_distance(Point(5, 6)) == pytest.approx(5.0)

    def test_max_distance_known(self):
        assert MBR(0, 0, 2, 2).max_distance(Point(0, 0)) == pytest.approx(
            math.sqrt(8)
        )

    @given(rect_strategy(), points)
    def test_min_le_max(self, rect, p):
        assert rect.min_distance(p) <= rect.max_distance(p) + 1e-9

    @given(rect_strategy(), points)
    def test_bounds_hold_for_corners(self, rect, p):
        lo = rect.min_distance(p)
        hi = rect.max_distance(p)
        for corner in rect.corners():
            d = p.distance_to(corner)
            assert lo - 1e-6 <= d <= hi + 1e-6

    @given(rect_strategy(), points)
    def test_bounds_hold_for_center(self, rect, p):
        d = p.distance_to(rect.center())
        assert rect.min_distance(p) - 1e-6 <= d <= rect.max_distance(p) + 1e-6
