"""Tests for keyword interning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnknownKeywordError
from repro.model.vocabulary import Vocabulary


class TestVocabulary:
    def test_add_assigns_dense_ids(self):
        v = Vocabulary()
        assert v.add("a") == 0
        assert v.add("b") == 1
        assert v.add("c") == 2

    def test_add_is_idempotent(self):
        v = Vocabulary()
        assert v.add("a") == 0
        assert v.add("a") == 0
        assert len(v) == 1

    def test_init_from_iterable(self):
        v = Vocabulary(["x", "y", "x"])
        assert len(v) == 2
        assert v.id_of("y") == 1

    def test_add_all(self):
        v = Vocabulary()
        assert v.add_all(["a", "b", "a"]) == [0, 1, 0]

    def test_round_trip(self):
        v = Vocabulary(["hotel", "pool", "wifi"])
        for word in v:
            assert v.word_of(v.id_of(word)) == word

    def test_unknown_word_raises(self):
        v = Vocabulary(["a"])
        with pytest.raises(UnknownKeywordError):
            v.id_of("nope")

    def test_unknown_id_raises(self):
        v = Vocabulary(["a"])
        with pytest.raises(UnknownKeywordError):
            v.word_of(5)
        with pytest.raises(UnknownKeywordError):
            v.word_of(-1)

    def test_ids_of_and_words_of(self):
        v = Vocabulary(["a", "b", "c"])
        ids = v.ids_of(["a", "c"])
        assert ids == frozenset({0, 2})
        assert v.words_of(ids) == frozenset({"a", "c"})

    def test_contains(self):
        v = Vocabulary(["a"])
        assert "a" in v
        assert "b" not in v

    def test_equality(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
        assert Vocabulary(["a", "b"]) != Vocabulary(["b", "a"])

    def test_repr(self):
        assert "2 words" in repr(Vocabulary(["a", "b"]))

    @given(st.lists(st.text(min_size=1, max_size=6), max_size=30))
    def test_ids_are_dense_and_stable(self, words):
        v = Vocabulary()
        ids = [v.add(w) for w in words]
        assert set(ids) == set(range(len(v)))
        for w, i in zip(words, ids):
            assert v.id_of(w) == v.add(w) == i or v.word_of(i) == w
