"""Tests for the synthetic dataset generators."""

import pytest

from repro.data.generators import (
    WORLD_SIZE,
    GeneratorProfile,
    clustered_dataset,
    generate_profile,
    gn_like,
    hotel_like,
    uniform_dataset,
    web_like,
)


class TestProfileValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            GeneratorProfile("x", 0, 10, 3.0)
        with pytest.raises(ValueError):
            GeneratorProfile("x", 10, 0, 3.0)

    def test_rejects_bad_mean_keywords(self):
        with pytest.raises(ValueError):
            GeneratorProfile("x", 10, 10, 0.5)

    def test_rejects_bad_cluster_fraction(self):
        with pytest.raises(ValueError):
            GeneratorProfile("x", 10, 10, 3.0, cluster_fraction=1.5)


class TestGeneration:
    def test_object_count_and_ids(self):
        ds = uniform_dataset(200, 30, seed=1)
        assert len(ds) == 200
        assert [o.oid for o in ds] == list(range(200))

    def test_every_object_has_keywords(self):
        ds = uniform_dataset(200, 30, seed=1)
        assert all(len(o.keywords) >= 1 for o in ds)

    def test_locations_inside_world(self):
        ds = clustered_dataset(300, 20, seed=4)
        for o in ds:
            assert 0.0 <= o.location.x <= WORLD_SIZE
            assert 0.0 <= o.location.y <= WORLD_SIZE

    def test_determinism(self):
        a = uniform_dataset(100, 20, seed=9)
        b = uniform_dataset(100, 20, seed=9)
        assert [(o.location, o.keywords) for o in a] == [
            (o.location, o.keywords) for o in b
        ]

    def test_seed_changes_output(self):
        a = uniform_dataset(100, 20, seed=9)
        b = uniform_dataset(100, 20, seed=10)
        assert [(o.location, o.keywords) for o in a] != [
            (o.location, o.keywords) for o in b
        ]

    def test_mean_keywords_near_target(self):
        ds = uniform_dataset(2000, 200, mean_keywords=4.0, seed=3)
        mean = sum(len(o.keywords) for o in ds) / len(ds)
        assert mean == pytest.approx(4.0, rel=0.15)

    def test_keyword_skew_present(self):
        ds = uniform_dataset(2000, 100, mean_keywords=3.0, seed=3)
        ranked = ds.keywords_by_frequency()
        freq = ds.keyword_frequencies()
        assert freq[ranked[0]] > 4 * freq[ranked[-1]]


class TestPaperProfiles:
    def test_hotel_like_default_matches_published_count(self):
        ds = hotel_like(scale=1.0, seed=0)
        assert len(ds) == 20_790
        assert ds.name == "hotel"

    def test_hotel_like_scaled(self):
        ds = hotel_like(scale=0.05, seed=0)
        assert len(ds) == int(20_790 * 0.05)

    def test_gn_like_scaled(self):
        ds = gn_like(scale=0.001, seed=0)
        assert len(ds) == int(1_868_821 * 0.001)
        assert ds.name == "gn"

    def test_web_like_has_dense_keywords(self):
        ds = web_like(scale=0.002, seed=0)
        stats = ds.statistics()
        assert stats.avg_keywords_per_object > 15.0
        assert ds.name == "web"

    def test_minimum_sizes_enforced(self):
        assert len(hotel_like(scale=1e-9)) == 100
        assert len(gn_like(scale=1e-9)) == 1_000

    def test_generate_profile_direct(self):
        profile = GeneratorProfile("custom", 50, 10, 2.0, cluster_fraction=0.0)
        ds = generate_profile(profile, seed=5)
        assert len(ds) == 50
        assert ds.name == "custom"
