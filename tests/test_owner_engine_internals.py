"""White-box tests for the owner-driven engine's numeric helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.owner_appro import greedy_completion_near
from repro.algorithms.owner_exact import _indifferent_cap, _pairwise_budget
from repro.cost.functions import DiaCost, MaxCost, MaxSumCost
from repro.geometry.point import Point
from repro.model.objects import SpatialObject

positive = st.floats(0.01, 1e4, allow_nan=False, allow_infinity=False)


class TestPairwiseBudget:
    def test_maxsum_closed_form(self):
        # 0.5 q + 0.5 c < bound  →  c < 2 bound − q
        cost = MaxSumCost()
        budget = _pairwise_budget(cost, 4.0, 10.0)
        assert budget == pytest.approx(16.0, rel=1e-6)

    def test_dia_closed_form(self):
        # max(q, c) < bound → c < bound (given q < bound)
        budget = _pairwise_budget(DiaCost(), 4.0, 10.0)
        assert budget == pytest.approx(10.0, rel=1e-6)

    def test_hopeless_owner(self):
        assert _pairwise_budget(DiaCost(), 12.0, 10.0) == -1.0
        assert _pairwise_budget(MaxSumCost(), 20.0, 10.0) == -1.0

    def test_pairwise_free_cost_gives_infinity(self):
        assert math.isinf(_pairwise_budget(MaxCost(), 4.0, 10.0))

    @given(positive, positive)
    @settings(max_examples=40)
    def test_budget_is_a_valid_sup(self, q, bound):
        cost = MaxSumCost()
        budget = _pairwise_budget(cost, q, bound)
        if budget < 0:
            assert cost.combine(q, 0.0) >= bound
        else:
            # Slightly inside the budget must beat the bound; slightly
            # outside must not.
            assert cost.combine(q, budget * (1 - 1e-9) - 1e-12) < bound + 1e-9
            assert cost.combine(q, budget * (1 + 1e-6) + 1e-9) >= bound - 1e-6


class TestIndifferentCap:
    def test_additive_cap_is_the_lower_bound(self):
        cap = _indifferent_cap(MaxSumCost(), 5.0, 2.0)
        assert cap == pytest.approx(2.0, abs=1e-6)

    def test_dia_cap_extends_to_query_component(self):
        # Under max(r, d12) every diameter up to r costs the same.
        cap = _indifferent_cap(DiaCost(), 5.0, 2.0)
        assert cap == pytest.approx(5.0, rel=1e-6)

    def test_dia_cap_with_dominant_pairwise(self):
        cap = _indifferent_cap(DiaCost(), 2.0, 5.0)
        assert cap == pytest.approx(5.0, rel=1e-6)

    @given(positive, positive)
    @settings(max_examples=40)
    def test_cap_never_costs_more(self, q, lb):
        for cost in (MaxSumCost(), DiaCost()):
            cap = _indifferent_cap(cost, q, lb)
            assert cap >= lb - 1e-9
            assert cost.combine(q, cap) <= cost.combine(q, lb) + 1e-6 * max(1.0, q, lb)


class TestGreedyCompletionNear:
    def _obj(self, oid, x, y, keywords):
        return SpatialObject(oid, Point(x, y), frozenset(keywords))

    def test_picks_nearest_first(self):
        anchor = self._obj(9, 0, 0, [])
        near = self._obj(0, 1, 0, [1])
        far = self._obj(1, 5, 0, [1, 2])
        got = greedy_completion_near(anchor, frozenset({1, 2}), [far, near])
        assert [o.oid for o in got] == [0, 1]

    def test_returns_none_when_uncoverable(self):
        anchor = self._obj(9, 0, 0, [])
        only = self._obj(0, 1, 0, [1])
        assert greedy_completion_near(anchor, frozenset({1, 2}), [only]) is None

    def test_empty_uncovered(self):
        anchor = self._obj(9, 0, 0, [])
        assert greedy_completion_near(anchor, frozenset(), []) == []

    def test_skips_objects_covering_nothing_new(self):
        anchor = self._obj(9, 0, 0, [])
        a = self._obj(0, 1, 0, [1])
        duplicate = self._obj(1, 2, 0, [1])
        b = self._obj(2, 3, 0, [2])
        got = greedy_completion_near(anchor, frozenset({1, 2}), [a, duplicate, b])
        assert [o.oid for o in got] == [0, 2]
