"""Three-backend differential suite for the spatial-textual indexes.

:class:`IRTree`, :class:`RTreeTextIndex` (plain R-tree + inverted index
+ signature masks) and :class:`LinearScanIndex` all claim the same
query semantics behind :class:`SpatialTextIndex`.  Hypothesis drives
randomized instances through all three, with the keyword-signature
toggle both on and off:

- ``nearest_relevant_iter`` must yield the same ``(distance, oid)``
  multiset in non-decreasing distance order from every backend — and
  the *exact* same sequence with signatures on vs. off within one
  backend (tie order among equal distances is a per-backend traversal
  artifact, so cross-backend comparison normalizes equal-distance runs
  by oid);
- the three region queries and ``boolean_knn`` must agree across
  backends and toggles;
- the IR-tree's incrementally maintained summaries (keywords, masks,
  MBRs, coordinate columns) must equal a from-scratch rebuild after any
  insert sequence (``check_invariants`` recomputes them all).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import uniform_dataset
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index import IRTree, LinearScanIndex, RTreeTextIndex
from repro.index import signatures
from repro.model.dataset import Dataset
from repro.model.query import Query

BACKENDS = (IRTree, RTreeTextIndex, LinearScanIndex)


@pytest.fixture(autouse=True)
def restore_toggle():
    yield
    signatures.set_enabled(None)


def make_dataset(seed: int, num_objects: int = 50, vocab: int = 7) -> Dataset:
    return uniform_dataset(
        num_objects, vocab, mean_keywords=2.0, seed=seed, name="parity%d" % seed
    )


def normalized_stream(index, point, keywords):
    """(distance, oid) sequence with equal-distance runs sorted by oid."""
    seq = [(dist, obj.oid) for dist, obj in index.nearest_relevant_iter(point, keywords)]
    dists = [dist for dist, _ in seq]
    assert dists == sorted(dists), "stream must ascend by distance"
    return sorted(seq)


def with_toggle(enabled, fn, *args):
    signatures.set_enabled(enabled)
    try:
        return fn(*args)
    finally:
        signatures.set_enabled(None)


seeds = st.integers(min_value=0, max_value=10_000)
keyword_subsets = st.frozensets(st.integers(min_value=0, max_value=6), min_size=1, max_size=4)


class TestCrossBackendParity:
    @given(seed=seeds, keywords=keyword_subsets)
    @settings(max_examples=15, deadline=None)
    def test_nearest_relevant_stream_agrees(self, seed, keywords):
        dataset = make_dataset(seed)
        point = Point(0.4, 0.6)
        streams = {}
        for backend in BACKENDS:
            index = backend.build(dataset, max_entries=4)
            on = with_toggle(True, normalized_stream, index, point, keywords)
            off = with_toggle(False, normalized_stream, index, point, keywords)
            assert on == off, backend.__name__
            streams[backend.__name__] = on
        assert streams["IRTree"] == streams["LinearScanIndex"]
        assert streams["RTreeTextIndex"] == streams["LinearScanIndex"]

    @given(seed=seeds, keywords=keyword_subsets)
    @settings(max_examples=15, deadline=None)
    def test_region_queries_agree(self, seed, keywords):
        dataset = make_dataset(seed)
        circle = Circle(Point(0.5, 0.5), 0.35)
        lens = [Circle(Point(0.3, 0.5), 0.4), Circle(Point(0.7, 0.5), 0.4)]
        for backend in BACKENDS:
            index = backend.build(dataset, max_entries=4)
            for enabled in (True, False):
                signatures.set_enabled(enabled)
                in_circle = {o.oid for o in index.relevant_in_circle(circle, keywords)}
                in_region = {o.oid for o in index.relevant_in_region(lens, keywords)}
                relevant = {o.oid for o in index.relevant_objects(keywords)}
                signatures.set_enabled(None)
                expected_relevant = {
                    o.oid for o in dataset.objects if o.keywords & keywords
                }
                assert relevant == expected_relevant, backend.__name__
                assert in_circle == {
                    oid
                    for oid in expected_relevant
                    if circle.contains(dataset[oid].location)
                }
                assert in_region == {
                    oid
                    for oid in expected_relevant
                    if all(c.contains(dataset[oid].location) for c in lens)
                }

    @given(seed=seeds, keywords=keyword_subsets)
    @settings(max_examples=15, deadline=None)
    def test_boolean_knn_agrees(self, seed, keywords):
        dataset = make_dataset(seed)
        query = Query.create(0.45, 0.55, sorted(keywords))
        results = {}
        for backend in (IRTree, RTreeTextIndex):
            index = backend.build(dataset, max_entries=4)
            on = with_toggle(True, index.boolean_knn, query, 5)
            off = with_toggle(False, index.boolean_knn, query, 5)
            assert [(d, o.oid) for d, o in on] == [(d, o.oid) for d, o in off]
            results[backend.__name__] = sorted((d, o.oid) for d, o in on)
        assert results["IRTree"] == results["RTreeTextIndex"]
        covering = [
            (query.location.distance_to(o.location), o.oid)
            for o in dataset.objects
            if keywords <= o.keywords
        ]
        covering.sort()
        assert results["IRTree"] == covering[:5]


class TestIncrementalInsertParity:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_insert_path_matches_bulk_build(self, seed):
        dataset = make_dataset(seed, num_objects=40)
        for enabled in (True, False):
            signatures.set_enabled(enabled)
            tree = IRTree(max_entries=4)
            for obj in dataset.objects:
                tree.insert(obj)
            tree.check_invariants()
            oracle = LinearScanIndex(dataset)
            keywords = frozenset({0, 1, 2})
            got = normalized_stream(tree, Point(0.5, 0.5), keywords)
            want = normalized_stream(oracle, Point(0.5, 0.5), keywords)
            signatures.set_enabled(None)
            assert got == want

    def test_incremental_summaries_equal_rebuild(self):
        dataset = make_dataset(99, num_objects=60)
        tree = IRTree(max_entries=4)
        for obj in dataset.objects:
            tree.insert(obj)
            # check_invariants recomputes every summary (keyword sets,
            # kw_mask/obj_masks, MBRs, coordinate columns) from the
            # entries and asserts the maintained ones match.
        tree.check_invariants()
        rebuilt = IRTree.build(dataset, max_entries=4)
        keywords = frozenset({1, 3})
        assert normalized_stream(tree, Point(0.2, 0.8), keywords) == normalized_stream(
            rebuilt, Point(0.2, 0.8), keywords
        )
