"""Differential gate: the sharded index must be *bit-identical*.

Two claims are gated, mirroring the signatures/kernels differentials:

1. **Facade identity** — every registered solver, run directly over a
   :class:`~repro.shard.index.ShardedIndex` facade, returns the same
   cost float and object set as over a single IR-tree, for several
   shard counts (including the degenerate 1-shard facade).
2. **Engine identity** — the :class:`~repro.shard.engine.ScatterGather`
   engine (seed pass, mask pruning, bound pruning, restricted rerun)
   changes nothing either, for every solver and every cost function —
   the pruning-bound derivation in ``docs/SHARDING.md`` is exactly the
   claim this file enforces.

On top sit per-shard chaos drills (a faulting shard surfaces the typed
error; a zero-fault plan changes nothing), hypothesis properties of the
STR partitioner, and a thread-safety check for the shared facade.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_instance
from repro.algorithms.base import SearchContext
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.cost.functions import ALL_COSTS, cost_by_name
from repro.data.generators import uniform_dataset
from repro.errors import InjectedFaultError, InvalidParameterError
from repro.exec.chaos import ChaosIndex, FaultPlan
from repro.geometry.mbr import MBR
from repro.index.signatures import mask_of
from repro.shard import (
    MASK_ONLY_SOLVERS,
    ScatterGather,
    Shard,
    ShardedIndex,
    ShardedIndexFactory,
    str_partition,
    summarize,
)

SEEDS = (101, 202, 303)
SHARD_COUNTS = (1, 4, 9)


@pytest.fixture(scope="module", params=SEEDS)
def instance(request):
    dataset, context, queries = make_random_instance(
        request.param, num_objects=40, vocab=8
    )
    return dataset, context, queries


def fingerprints(solver, queries):
    out = []
    for query in queries:
        result = solver.solve(query)
        out.append((result.cost, tuple(sorted(o.oid for o in result.objects))))
    return out


class TestFacadeIdentity:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_every_solver_over_the_facade(self, instance, name):
        dataset, context, queries = instance
        baseline = fingerprints(make_algorithm(name, context), queries)
        for num_shards in SHARD_COUNTS:
            sharded = SearchContext(
                dataset, index_cls=ShardedIndexFactory(num_shards)
            )
            assert fingerprints(make_algorithm(name, sharded), queries) == baseline

    def test_facade_invariants(self, instance):
        dataset, _, _ = instance
        for num_shards in SHARD_COUNTS:
            index = ShardedIndex.build(dataset, num_shards=num_shards)
            index.check_invariants()
            assert len(index) == len(dataset)


class TestEngineIdentity:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_every_solver_through_the_engine(self, instance, name):
        dataset, context, queries = instance
        baseline = fingerprints(make_algorithm(name, context), queries)
        for num_shards in SHARD_COUNTS:
            sharded = SearchContext(
                dataset, index_cls=ShardedIndexFactory(num_shards)
            )
            engine = ScatterGather(sharded, name)
            assert fingerprints(engine, queries) == baseline

    @pytest.mark.parametrize("cost_name", sorted(ALL_COSTS))
    def test_every_cost_through_the_engine(self, instance, cost_name):
        """Bound pruning must defer to the cost (MIN costs: mask only)."""
        dataset, context, queries = instance
        for solver_name in ("maxsum-appro", "unified-exact"):
            baseline = fingerprints(
                make_algorithm(solver_name, context, cost_by_name(cost_name)),
                queries,
            )
            sharded = SearchContext(dataset, index_cls=ShardedIndexFactory(4))
            engine = ScatterGather(sharded, solver_name, cost=cost_by_name(cost_name))
            assert fingerprints(engine, queries) == baseline

    def test_counters_reconcile_and_pruning_is_observable(self, instance):
        dataset, _, queries = instance
        sharded = SearchContext(dataset, index_cls=ShardedIndexFactory(9))
        engine = ScatterGather(sharded, "maxsum-exact")
        scanned_less = False
        for query in queries:
            counters = engine.solve(query).counters
            total = counters["shards_total"]
            accounted = (
                counters["shards_scanned"]
                + counters.get("shards_pruned_mask", 0)
                + counters.get("shards_pruned_bound", 0)
            )
            assert accounted == total
            if counters["shards_scanned"] < total:
                scanned_less = True
        assert scanned_less  # bound pruning fires on this instance

    def test_mask_only_set_matches_registry(self):
        assert MASK_ONLY_SOLVERS <= set(ALGORITHM_NAMES)


def _chaos_facade(index: ShardedIndex, plan_for):
    """Rewrap every shard tree of ``index`` with its own chaos plan."""
    shards = [
        Shard(shard.shard_id, ChaosIndex(shard.tree, plan_for(shard.shard_id)), shard.summary)
        for shard in index.shards
    ]
    return ShardedIndex(shards, num_shards_requested=index.num_shards_requested)


class TestPerShardChaos:
    def test_zero_fault_plans_change_nothing(self, instance):
        dataset, context, queries = instance
        baseline = fingerprints(make_algorithm("maxsum-appro", context), queries)
        index = ShardedIndex.build(dataset, num_shards=4)
        wrapped = _chaos_facade(index, lambda shard_id: FaultPlan(seed=shard_id))
        sharded = context.with_index(wrapped)
        assert fingerprints(make_algorithm("maxsum-appro", sharded), queries) == baseline
        assert any(
            isinstance(shard.tree, ChaosIndex) and shard.tree.calls > 0
            for shard in wrapped.shards
        )

    def test_dead_shard_surfaces_the_typed_error(self, instance):
        dataset, context, queries = instance
        index = ShardedIndex.build(dataset, num_shards=4)
        wrapped = _chaos_facade(
            index, lambda shard_id: FaultPlan().fail_method("keyword_nn")
        )
        sharded = context.with_index(wrapped)
        solver = make_algorithm("maxsum-appro", sharded)
        with pytest.raises(InjectedFaultError):
            for query in queries:
                solver.solve(query)

    def test_one_flaky_shard_fails_only_queries_that_touch_it(self, instance):
        dataset, context, queries = instance
        index = ShardedIndex.build(dataset, num_shards=4)
        victim = index.shards[0].shard_id
        wrapped = _chaos_facade(
            index,
            lambda shard_id: (
                FaultPlan().fail_method("nearest_relevant_iter")
                if shard_id == victim
                else FaultPlan()
            ),
        )
        sharded = context.with_index(wrapped)
        solver = make_algorithm("maxsum-appro", sharded)
        outcomes = []
        for query in queries:
            try:
                solver.solve(query)
                outcomes.append("ok")
            except InjectedFaultError:
                outcomes.append("fault")
        assert "fault" in outcomes  # the victim shard is reachable


class TestSTRPartitionProperties:
    @given(
        num_objects=st.integers(min_value=1, max_value=60),
        num_shards=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_is_exact_and_tiles_the_extent(
        self, num_objects, num_shards, seed
    ):
        dataset = uniform_dataset(
            num_objects, 6, mean_keywords=2.0, seed=seed, name="str%d" % seed
        )
        objects = list(dataset)
        tiles = str_partition(objects, num_shards)
        # Exactly min(requested, n) non-empty tiles.
        assert len(tiles) == min(num_shards, len(objects))
        assert all(tiles)
        # Every object lands in exactly one tile.
        seen = sorted(o.oid for tile in tiles for o in tile)
        assert seen == sorted(o.oid for o in objects)
        summaries = [summarize(i, tile) for i, tile in enumerate(tiles)]
        for summary, tile in zip(summaries, tiles):
            assert summary.count == len(tile)
            # The summary MBR contains its members...
            assert all(summary.mbr.contains_point(o.location) for o in tile)
            # ...and the union mask is the OR of the member masks.
            union = 0
            for o in tile:
                union |= mask_of(o.keywords)
            assert union == summary.kw_mask
        # The shard MBRs jointly tile the dataset extent.
        extent = MBR.from_points([o.location for o in objects])
        assert MBR.union_all([s.mbr for s in summaries]) == extent

    def test_rejects_bad_shard_counts(self):
        dataset = uniform_dataset(5, 4, mean_keywords=2.0, seed=1, name="bad")
        with pytest.raises(InvalidParameterError):
            str_partition(list(dataset), 0)
        with pytest.raises(InvalidParameterError):
            ShardedIndex.build(dataset, num_shards=-1)


class TestThreadSafety:
    def test_shared_facade_is_safe_under_concurrent_queries(self, instance):
        """Mirrors the PR-7 CachingIndex drill: one facade, many threads."""
        dataset, context, queries = instance
        sharded = SearchContext(dataset, index_cls=ShardedIndexFactory(4))
        sharded.index  # build once, then share read-only
        expected = fingerprints(make_algorithm("maxsum-appro", sharded), queries)
        results = {}
        errors = []

        def worker(tid):
            try:
                solver = make_algorithm("maxsum-appro", sharded)
                results[tid] = fingerprints(solver, queries)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result == expected for result in results.values())
        stats = sharded.index.stats.as_dict()
        assert stats.get("relevant_iter_calls", 0) > 0
