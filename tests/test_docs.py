"""Guardrails against documentation rot.

The docs promise specific experiment ids, algorithms and commands; these
tests fail if the code moves out from under them.
"""

import pathlib
import re

import pytest

from repro.algorithms.registry import ALGORITHM_NAMES
from repro.bench.experiments import EXPERIMENTS

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestFilesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/ALGORITHMS.md",
            "docs/STATIC_ANALYSIS.md",
            "docs/SERVING.md",
            "docs/BENCHMARKS.md",
            "docs/SHARDING.md",
            "docs/ADAPTIVE.md",
        ],
    )
    def test_present_and_substantial(self, name):
        text = read(name)
        assert len(text.splitlines()) > 50, name


class TestDesignExperimentIndex:
    def test_every_experiment_id_documented(self):
        design = read("DESIGN.md")
        for experiment_id in EXPERIMENTS:
            assert experiment_id in design, experiment_id

    def test_every_documented_bench_file_exists(self):
        design = read("DESIGN.md")
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_mismatch_notice_present(self):
        # DESIGN.md must keep the paper-text mismatch disclosure.
        design = read("DESIGN.md")
        assert "mismatch" in design.lower()
        assert "SIGMOD 2013" in design


class TestExperimentsRecord:
    def test_every_experiment_id_reported(self):
        experiments = read("EXPERIMENTS.md")
        for experiment_id in EXPERIMENTS:
            assert experiment_id in experiments, experiment_id


class TestReadme:
    def test_quickstart_names_are_real(self):
        readme = read("README.md")
        import repro

        for symbol in ("MaxSumExact", "MaxSumAppro", "DiaExact", "DiaAppro"):
            assert symbol in readme
            assert hasattr(repro, symbol)

    def test_cli_names_match_entry_points(self):
        readme = read("README.md")
        pyproject = read("pyproject.toml")
        for command in ("coskq-bench", "coskq-query", "coskq-serve"):
            assert command in readme
            assert command in pyproject

    def test_serving_doc_outcome_table_is_current(self):
        from repro.serve import OUTCOMES

        serving = read("docs/SERVING.md")
        for outcome in OUTCOMES:
            assert "`%s`" % outcome in serving, outcome

    def test_robustness_doc_lists_every_exit_code(self):
        from repro.tools.query_cli import EXIT_CODES

        robustness = read("docs/ROBUSTNESS.md")
        for name, code in EXIT_CODES.items():
            if name in ("ok", "error", "usage"):
                continue
            assert name in robustness, name
            assert str(code) in robustness

    def test_macro_bench_doc_is_current(self):
        # docs/BENCHMARKS.md promises profiles, a schema version, CLI
        # subcommands and make targets; fail if the code moves away.
        from repro.bench.macro import PROFILES, SCHEMA_VERSION
        from repro.tools.macro_cli import MACRO_COMMANDS

        doc = read("docs/BENCHMARKS.md")
        for profile_name in PROFILES:
            assert "`%s`" % profile_name in doc, profile_name
        assert SCHEMA_VERSION in doc
        for command in MACRO_COMMANDS:
            assert "coskq-bench %s" % command in doc, command
        makefile = read("Makefile")
        for target in ("bench-smoke", "bench-check"):
            assert "make %s" % target in doc, target
            assert "%s:" % target in makefile, target
        assert "coskq-bench-macro" in read("pyproject.toml")
        assert "docs/BENCHMARKS.md" in read("README.md")

    def test_sharding_doc_is_current(self):
        # docs/SHARDING.md promises the mask-only solver set, the shard
        # make targets and a recorded benchmark file; fail if they move.
        from repro.shard import MASK_ONLY_SOLVERS

        doc = read("docs/SHARDING.md")
        for name in MASK_ONLY_SOLVERS:
            assert "`%s`" % name in doc, name
        makefile = read("Makefile")
        for target in ("shard-check", "shard-bench"):
            assert "make %s" % target in doc, target
            assert "%s:" % target in makefile, target
        assert "BENCH_shard.json" in doc
        assert (ROOT / "BENCH_shard.json").exists()
        assert "docs/SHARDING.md" in read("README.md")
        # The profile the doc says produced BENCH_shard.json must exist
        # and consist of sharded cells only.
        from repro.bench.macro import PROFILES

        shard_profile = PROFILES["shard"]
        assert all(w.kind == "sharded" for w in shard_profile.workloads)

    def test_adaptive_doc_is_current(self):
        # docs/ADAPTIVE.md promises the seeding pairings, the adaptive
        # make targets, a recorded benchmark file and the CLI surfaces;
        # fail if the code moves out from under them.
        from repro.adaptive.seeding import APPRO_COUNTERPARTS
        from repro.bench.macro.schema import WORKLOAD_KINDS

        doc = read("docs/ADAPTIVE.md")
        for exact_name, appro_name in APPRO_COUNTERPARTS.items():
            assert "`%s`" % exact_name in doc, exact_name
            assert "`%s`" % appro_name in doc, appro_name
        makefile = read("Makefile")
        for target in ("adaptive-check", "adaptive-bench"):
            assert "make %s" % target in doc, target
            assert "%s:" % target in makefile, target
        assert "BENCH_adaptive.json" in doc
        assert (ROOT / "BENCH_adaptive.json").exists()
        readme = read("README.md")
        assert "coskq-adaptive" in read("pyproject.toml")
        assert "coskq-adaptive" in readme
        assert "docs/ADAPTIVE.md" in readme
        # The macro harness must keep the workload kind the doc names.
        assert "adaptive" in WORKLOAD_KINDS

    def test_macro_golden_fixture_exists(self):
        golden = ROOT / "tests" / "fixtures" / "bench_macro_smoke.golden.json"
        assert golden.exists()

    def test_documented_algorithms_registered(self):
        # Algorithms named in backticks that look like registry names.
        readme = read("README.md")
        for name in ("maxsum_hotel", "scalability"):
            assert name in read("DESIGN.md")
        assert "cao-exact" in " ".join(ALGORITHM_NAMES)
