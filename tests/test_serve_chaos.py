"""Chaos under traffic: the serving daemon's headline acceptance test.

A real daemon (ephemeral port, threaded HTTP stack) is hammered by the
load generator with >= 200 concurrent requests while a
:class:`~repro.parallel.spec.ChaosSpec` injects faults server-side and
per-request deadlines stay tight.  The daemon must:

- never crash and never leak a non-taxonomy 5xx (zero ``internal``
  outcomes);
- never return an infeasible set — every 200 covers its query keywords;
- serialize provenance on every degraded answer, naming the stage that
  answered and the stages that failed;
- keep ``/stats`` outcome totals equal to the client-side tally
  **bit-for-bit** (every response was counted before it was written).
"""

from __future__ import annotations

import json
import urllib.request
from collections import Counter

import pytest

from repro.data.generators import uniform_dataset
from repro.parallel.spec import ChaosSpec
from repro.serve import OUTCOMES, ServerConfig, create_server
from repro.serve.client import LoadClient, random_workload

REQUESTS = 220
CONCURRENCY = 8


@pytest.fixture(scope="module")
def chaos_run():
    """One shared chaos-under-traffic run; every test inspects its ledger."""
    dataset = uniform_dataset(200, 16, mean_keywords=2.5, seed=31, name="chaos")
    config = ServerConfig(
        port=0,
        chain="maxsum-exact,maxsum-appro,nn-set",
        deadline_ms=2.0,
        max_deadline_ms=2.0,
        max_retries=1,
        max_inflight=4,  # small bound: admission sheds under this load
        retry_after_s=0.001,
        cache_mode="index",
        # faults AND slowness: every 5th index call stalls 5ms, so the
        # 2ms deadline genuinely expires and in-flight requests pile up
        # past max_inflight (otherwise this dataset answers too fast to
        # exercise shedding at all)
        chaos=ChaosSpec(seed=5, fail_rate=0.2, latency_s=0.005, latency_every=5),
    )
    server = create_server(dataset, config)
    server.serve_background()
    client = LoadClient(
        server.url,
        seed=13,
        max_retries=6,
        backoff_base_s=0.001,
        backoff_cap_s=0.01,
    )
    payloads = random_workload(client, REQUESTS, seed=13)
    records = client.run(payloads, concurrency=CONCURRENCY)
    # raw response bodies for the provenance/taxonomy assertions
    stats = client.get_json("/stats")
    health = client.get_json("/healthz")
    yield {
        "server": server,
        "client": client,
        "records": records,
        "stats": stats,
        "health": health,
    }
    server.shutdown()
    server.server_close()


class TestChaosUnderTraffic:
    def test_every_query_got_an_http_answer(self, chaos_run):
        records = chaos_run["records"]
        assert len(records) == REQUESTS
        assert all(record.status != 0 for record in records), "transport errors"
        assert chaos_run["client"].summary.transport_errors == 0

    def test_zero_internal_outcomes(self, chaos_run):
        assert chaos_run["stats"]["by_outcome"]["internal"] == 0
        assert chaos_run["client"].summary.responses_by_outcome["internal"] == 0

    def test_zero_infeasible_answers(self, chaos_run):
        assert chaos_run["client"].summary.infeasible_answers == 0
        for record in chaos_run["records"]:
            if record.status == 200:
                assert record.feasible is True

    def test_chaos_actually_fired(self, chaos_run):
        """The run must be a real drill: faults injected, degradation seen."""
        by_failure = chaos_run["stats"]["by_failure_class"]
        assert by_failure.get("InjectedFaultError", 0) > 0
        assert by_failure.get("DeadlineExceededError", 0) > 0
        degraded = sum(1 for r in chaos_run["records"] if r.degraded)
        assert degraded > 0

    def test_load_was_actually_shed(self, chaos_run):
        """max_inflight=4 under 8 workers must shed at least once."""
        assert chaos_run["stats"]["by_outcome"]["shed"] > 0
        assert chaos_run["stats"]["admission"]["shed"] > 0

    def test_degraded_answers_carry_provenance(self, chaos_run):
        degraded = [r for r in chaos_run["records"] if r.degraded]
        for record in degraded:
            assert record.answered_by, "degraded answer without a stage name"

    def test_stats_reconcile_bit_for_bit(self, chaos_run):
        """Server-side outcome totals == client-side tally, exactly."""
        server_side = chaos_run["stats"]["by_outcome"]
        client_side = chaos_run["client"].summary.responses_by_outcome
        assert set(server_side) == set(OUTCOMES)
        expected = {
            outcome: client_side.get(outcome, 0) for outcome in OUTCOMES
        }
        assert server_side == expected
        assert chaos_run["stats"]["total"] == sum(client_side.values())

    def test_status_totals_reconcile_too(self, chaos_run):
        server_side = chaos_run["stats"]["by_status"]
        client_side = chaos_run["client"].summary.responses_by_status
        assert {int(k): v for k, v in server_side.items() if v} == dict(
            client_side
        )

    def test_server_still_healthy_after_the_storm(self, chaos_run):
        health = chaos_run["health"]
        assert health["status"] == "ok"
        assert health["inflight"] == 0

    def test_failed_responses_carry_taxonomy(self, chaos_run):
        """Re-drive a few queries and read the raw 5xx bodies: every one
        names a typed failure class, never a bare 500."""
        server = chaos_run["server"]
        payload = json.dumps(
            {
                "x": 500.0,
                "y": 500.0,
                "keywords": ["definitely-not-a-word"],
            }
        ).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/query",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=5)
            raise AssertionError("expected an HTTP error status")
        except urllib.error.HTTPError as err:
            body = json.loads(err.read().decode("utf-8"))
        assert body["error"]["type"] == "UnknownKeywordError"

    def test_latency_percentiles_populated(self, chaos_run):
        latency = chaos_run["stats"]["latency"]
        assert latency["window"] > 0
        assert latency["p50_ms"] <= latency["p90_ms"] <= latency["p99_ms"]


class TestChaosDeterminismKnobs:
    def test_per_request_plans_differ(self):
        spec = ChaosSpec(seed=5, fail_rate=0.2)
        plans = [spec.plan_for(i) for i in range(4)]
        assert len({id(p) for p in plans}) == 4

    def test_outcome_counter_closes_the_books(self, chaos_run):
        """No outcome outside the taxonomy ever got counted."""
        counted = Counter(chaos_run["stats"]["by_outcome"])
        assert set(counted) <= set(OUTCOMES)
        assert sum(counted.values()) == chaos_run["stats"]["total"]
