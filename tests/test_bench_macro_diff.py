"""Unit coverage of the ``coskq-bench diff`` regression gate.

Runs are synthesized from a seeded fixture factory (no benchmarking in
here), so each case controls exactly how the candidate deviates from the
baseline: genuine slowdowns, wiggles inside the noise threshold, huge
relative changes under the absolute floor, deleted workloads, and
schema-version drift.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.macro.diffmode import DiffReport, diff_summaries
from repro.bench.macro.schema import (
    SCHEMA_VERSION,
    SchemaVersionMismatchError,
    SummarySchemaError,
    assert_valid,
)


def make_summary(
    seed: int = 0,
    *,
    latency_scale: float = 1.0,
    throughput_scale: float = 1.0,
    workload_ids=("alpha/cold", "beta/warm"),
    schema_version: str = SCHEMA_VERSION,
) -> dict:
    """A minimal schema-valid summary; deterministic in ``seed``."""
    rng = random.Random(seed)
    workloads = []
    for workload_id in workload_ids:
        base = rng.uniform(5.0, 20.0) * latency_scale
        spread = rng.uniform(1.0, 3.0) * latency_scale
        workloads.append(
            {
                "id": workload_id,
                "dataset": "fixture",
                "kind": "solver",
                "solver": "maxsum-appro",
                "cache": "warm" if workload_id.endswith("warm") else "cold",
                "toggles": {"kernels": True, "signatures": True},
                "queries": 200,
                "num_keywords": 6,
                "shards": 0,
                "failures": 0,
                "wall_s": 200 * base / 1_000.0,
                "throughput_qps": (1_000.0 / base) * throughput_scale,
                "latency_ms": {
                    "count": 200,
                    "mean_ms": base + spread / 2,
                    "min_ms": base,
                    "p50_ms": base + spread,
                    "p95_ms": base + 2 * spread,
                    "p99_ms": base + 3 * spread,
                    "max_ms": base + 4 * spread,
                },
                "provenance": {"maxsum-appro": 10},
                "cache_stats": None,
            }
        )
    summary = {
        "schema_version": schema_version,
        "profile": "fixture",
        "seed": seed,
        "environment": {
            "python": "3.x",
            "platform": "fixture",
            "kernels": True,
            "signatures": True,
        },
        "datasets": [
            {
                "name": "fixture",
                "kind": "uniform",
                "objects": 1_000,
                "content_hash": "f" * 64,
                "cache": "miss",
                "generate_s": 0.1,
                "index_build_s": 0.1,
            }
        ],
        "workloads": workloads,
        "totals": {
            "wall_s": 1.0,
            "queries": 200 * len(workloads),
            "workloads": len(workloads),
        },
    }
    if schema_version == SCHEMA_VERSION:
        assert_valid(summary)
    return summary


class TestVerdicts:
    def test_identical_runs_pass(self):
        report = diff_summaries(make_summary(1), make_summary(1))
        assert isinstance(report, DiffReport)
        assert report.ok and report.exit_code == 0
        assert report.regressions == ()

    def test_genuine_slowdown_is_flagged(self):
        report = diff_summaries(
            make_summary(1), make_summary(1, latency_scale=2.0, throughput_scale=0.5)
        )
        assert not report.ok and report.exit_code == 1
        flagged_metrics = {entry.metric for entry in report.regressions}
        assert {"p50_ms", "p95_ms", "p99_ms", "throughput_qps"} <= flagged_metrics
        assert "REGRESSION" in report.format()

    def test_speedup_is_never_a_regression(self):
        report = diff_summaries(
            make_summary(1), make_summary(1, latency_scale=0.5, throughput_scale=2.0)
        )
        assert report.ok

    def test_wiggle_within_noise_threshold_passes(self):
        report = diff_summaries(
            make_summary(1),
            make_summary(1, latency_scale=1.10, throughput_scale=0.95),
        )
        assert report.ok, [e.describe() for e in report.regressions]

    def test_threshold_is_configurable(self):
        baseline = make_summary(1)
        candidate = make_summary(1, latency_scale=1.10)
        assert diff_summaries(baseline, candidate).ok
        strict = diff_summaries(baseline, candidate, rel_threshold=0.05, min_delta_ms=0.0)
        assert not strict.ok

    def test_huge_relative_change_below_absolute_floor_passes(self):
        baseline = make_summary(2, latency_scale=0.001)  # ~5-20 µs cells
        candidate = make_summary(2, latency_scale=0.005)  # 5x, but micro
        report = diff_summaries(baseline, candidate)
        assert report.ok, [e.describe() for e in report.regressions]

    def test_small_sample_tail_percentiles_never_gate(self):
        # With 8 samples, nearest-rank p95/p99 are the sample max — an
        # extreme-value statistic one GC pause flips.  They are reported
        # informationally; only p50 (and throughput) gate at that size.
        baseline = make_summary(8)
        candidate = make_summary(8, latency_scale=3.0)
        for doc in (baseline, candidate):
            for workload in doc["workloads"]:
                workload["queries"] = 8
                workload["latency_ms"]["count"] = 8
            doc["totals"]["queries"] = 8 * len(doc["workloads"])
        report = diff_summaries(baseline, candidate)
        flagged = {e.metric for e in report.regressions}
        assert "p50_ms" in flagged
        assert "p95_ms" not in flagged and "p99_ms" not in flagged
        assert any("cannot resolve p99_ms" in e.note for e in report.entries)

    def test_micro_scale_throughput_wiggle_passes(self):
        # A warm-cache cell at ~2e5 qps halves its throughput — a huge
        # absolute qps delta, but only microseconds per query.  The
        # implied per-query slowdown is below the latency floor, so the
        # gate must not cry wolf (this exact swing shows up between
        # back-to-back smoke runs on one machine).
        baseline = make_summary(7, latency_scale=0.001)
        candidate = make_summary(7, latency_scale=0.001, throughput_scale=0.5)
        report = diff_summaries(baseline, candidate)
        assert report.ok, [e.describe() for e in report.regressions]


class TestWorkloadMatching:
    def test_missing_workload_is_a_regression(self):
        baseline = make_summary(3, workload_ids=("alpha/cold", "beta/warm"))
        candidate = make_summary(3, workload_ids=("alpha/cold",))
        report = diff_summaries(baseline, candidate)
        assert not report.ok
        missing = [e for e in report.regressions if e.metric == "presence"]
        assert [e.workload for e in missing] == ["beta/warm"]
        assert "missing from candidate" in missing[0].note

    def test_new_workload_is_informational(self):
        baseline = make_summary(3, workload_ids=("alpha/cold",))
        candidate = make_summary(3, workload_ids=("alpha/cold", "gamma/cold"))
        report = diff_summaries(baseline, candidate)
        assert report.ok
        new = [e for e in report.entries if e.metric == "presence"]
        assert [e.workload for e in new] == ["gamma/cold"]

    def test_latency_present_in_only_one_run(self):
        baseline = make_summary(4, workload_ids=("alpha/cold",))
        candidate = make_summary(4, workload_ids=("alpha/cold",))
        candidate["workloads"][0]["latency_ms"] = None
        report = diff_summaries(baseline, candidate)
        dropped = [e for e in report.entries if e.metric == "latency_ms"]
        assert len(dropped) == 1 and dropped[0].regression


class TestSchemaGuards:
    def test_version_mismatch_refuses_to_compare(self):
        baseline = make_summary(5)
        candidate = make_summary(5, schema_version="coskq-bench-macro/999")
        with pytest.raises(SchemaVersionMismatchError) as excinfo:
            diff_summaries(baseline, candidate)
        assert "coskq-bench-macro/999" in str(excinfo.value)

    def test_version_mismatch_beats_generic_validation(self):
        # Even a thoroughly broken candidate reports the version drift
        # first — the actionable error, not a wall of missing keys.
        baseline = make_summary(5)
        with pytest.raises(SchemaVersionMismatchError):
            diff_summaries(baseline, {"schema_version": "coskq-bench-macro/999"})

    def test_invalid_baseline_raises(self):
        broken = make_summary(6)
        del broken["workloads"][0]["latency_ms"]
        with pytest.raises(SummarySchemaError):
            diff_summaries(broken, make_summary(6))
