"""Tests for the constrained cover search and cover enumeration."""

import pytest

from repro.algorithms.cover import (
    CoverBudgetExceeded,
    find_constrained_cover,
    iter_covers,
)
from repro.geometry.point import Point
from repro.model.objects import SpatialObject


def obj(oid, x, y, keywords):
    return SpatialObject(oid, Point(x, y), frozenset(keywords))


class TestFindConstrainedCover:
    def test_empty_uncovered_is_trivial(self):
        assert find_constrained_cover(frozenset(), [], [], None) == []

    def test_simple_cover(self):
        candidates = [obj(0, 0, 0, [1]), obj(1, 1, 0, [2])]
        cover = find_constrained_cover(frozenset({1, 2}), candidates, [], None)
        assert cover is not None
        assert {o.oid for o in cover} == {0, 1}

    def test_missing_keyword_returns_none(self):
        candidates = [obj(0, 0, 0, [1])]
        assert find_constrained_cover(frozenset({1, 2}), candidates, [], None) is None

    def test_pair_cap_excludes_far_candidates(self):
        near = obj(0, 0, 0, [1])
        far = obj(1, 100, 0, [2])
        # Without cap a cover exists; with a tight cap it does not.
        assert find_constrained_cover(frozenset({1, 2}), [near, far], [], None)
        assert (
            find_constrained_cover(frozenset({1, 2}), [near, far], [], pair_cap=10.0)
            is None
        )

    def test_anchor_constraint(self):
        anchor = obj(9, 0, 0, [])
        good = obj(0, 1, 0, [1])
        bad = obj(1, 50, 0, [1])
        cover = find_constrained_cover(
            frozenset({1}), [bad, good], [anchor], pair_cap=5.0
        )
        assert cover is not None
        assert cover[0].oid == 0

    def test_cap_boundary_inclusive(self):
        anchor = obj(9, 0, 0, [])
        candidate = obj(0, 3, 4, [1])  # distance exactly 5 from anchor
        cover = find_constrained_cover(frozenset({1}), [candidate], [anchor], 5.0)
        assert cover is not None

    def test_multi_keyword_object_preferred(self):
        rich = obj(0, 0, 0, [1, 2, 3])
        poor = [obj(1, 1, 0, [1]), obj(2, 2, 0, [2]), obj(3, 3, 0, [3])]
        cover = find_constrained_cover(frozenset({1, 2, 3}), [rich] + poor, [], None)
        assert cover is not None
        assert len(cover) == 1 and cover[0].oid == 0

    def test_requires_backtracking(self):
        # Choosing the rich object for keyword 1 makes keyword 3
        # uncoverable within the cap; the search must back off to the
        # poor pair.
        a = obj(0, 0, 0, [1, 2])
        b = obj(1, 100, 0, [1])
        c = obj(2, 101, 0, [2, 3])
        cover = find_constrained_cover(
            frozenset({1, 2, 3}), [a, b, c], [], pair_cap=5.0
        )
        assert cover is not None
        assert {o.oid for o in cover} == {1, 2}

    def test_colocated_duplicate_traces_deduplicated(self):
        twins = [obj(i, 0, 0, [1]) for i in range(50)]
        cover = find_constrained_cover(frozenset({1}), twins, [], None)
        assert cover is not None and len(cover) == 1

    def test_budget_exceeded_raises(self):
        # Many interchangeable candidates per keyword with an impossible
        # joint constraint forces exhaustive backtracking.
        candidates = []
        oid = 0
        for t in (1, 2, 3, 4):
            for i in range(12):
                candidates.append(obj(oid, t * 1000 + i, i * 7, [t]))
                oid += 1
        with pytest.raises(CoverBudgetExceeded):
            find_constrained_cover(
                frozenset({1, 2, 3, 4}), candidates, [], pair_cap=1.0, node_budget=5
            )


class TestIterCovers:
    def test_yields_all_irredundant_covers(self):
        # "Irredundant" is insertion-order: every object covers a keyword
        # new at its insertion time.  [0, 2] qualifies (0 brought keyword
        # 1, then 2 brought keyword 2) even though 0 is globally
        # redundant — the oracle only needs completeness, and the minimum
        # cost is unaffected by extra covers.
        candidates = [obj(0, 0, 0, [1]), obj(1, 1, 0, [2]), obj(2, 2, 0, [1, 2])]
        covers = [sorted(o.oid for o in c) for c in iter_covers(frozenset({1, 2}), candidates)]
        assert sorted(covers) == [[0, 1], [0, 2], [2]]

    def test_no_duplicates(self):
        candidates = [obj(i, i, 0, [1, 2]) for i in range(4)]
        covers = [tuple(sorted(o.oid for o in c)) for c in iter_covers(frozenset({1, 2}), candidates)]
        assert len(covers) == len(set(covers)) == 4

    def test_uncoverable_yields_nothing(self):
        assert list(iter_covers(frozenset({1}), [obj(0, 0, 0, [2])])) == []

    def test_cover_sizes_bounded_by_keywords(self):
        candidates = [obj(i, i, 0, [i % 3]) for i in range(9)]
        for cover in iter_covers(frozenset({0, 1, 2}), candidates):
            assert len(cover) <= 3
            covered = set()
            for o in cover:
                covered |= o.keywords
            assert {0, 1, 2} <= covered
