"""Seeding soundness: an external upper bound prunes, never answers.

The ``initial_upper_bound`` contract (docs/ADAPTIVE.md §3) promises that
for any *feasible* bound — the true cost of some feasible set, so always
>= the optimum — every exact solver returns the bit-identical optimum
cost it would have found unseeded.  This suite distrusts that promise
from every angle:

- every registered appro counterpart's cost seeds its exact solver to
  the same answer (the pairing :data:`APPRO_COUNTERPARTS` ships);
- hypothesis-drawn bounds (optimum × factor, factor >= 1) never change
  the cost, under kernels/signatures forced on *and* off;
- the bound survives the sharded scatter-gather engine and the
  resilient executor unchanged;
- the adversarial ladder dataset behaves as designed (seed == optimum,
  seeded search strictly cheaper).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive.seeding import (
    APPRO_COUNTERPARTS,
    appro_counterpart,
    compute_seed,
    make_seeder,
)
from repro.algorithms.base import SearchContext
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.data.generators import (
    WORLD_SIZE,
    ladder_dataset,
    ladder_keywords,
)
from repro.index import signatures
from repro.kernels import flat as kernels_flat
from repro.model.query import Query

#: The exact solvers whose seeding the package vouches for.
SEEDED_EXACTS = sorted(APPRO_COUNTERPARTS)


def outcome(result):
    return (result.cost, tuple(sorted(o.oid for o in result.objects)))


class TestCounterpartTable:
    def test_every_pairing_is_registered(self):
        for exact_name, appro_name in APPRO_COUNTERPARTS.items():
            assert exact_name in ALGORITHM_NAMES
            assert appro_name in ALGORITHM_NAMES

    def test_unseedable_solvers_absent(self):
        # top-k and the brute-force oracle must never be seeded.
        assert "topk" not in APPRO_COUNTERPARTS
        assert "bruteforce" not in APPRO_COUNTERPARTS
        assert appro_counterpart("topk") is None

    def test_counterpart_lookup(self):
        assert appro_counterpart("maxsum-exact") == "maxsum-appro"
        assert appro_counterpart("no-such-solver") is None


class TestComputeSeed:
    @pytest.mark.parametrize("exact_name", SEEDED_EXACTS)
    def test_seed_is_feasible_upper_bound(self, tiny_context, tiny_queries, exact_name):
        exact = make_algorithm(exact_name, tiny_context)
        for query in tiny_queries[:4]:
            seed = compute_seed(tiny_context, exact.cost, query)
            assert seed is not None
            optimum = exact.solve(query)
            assert seed.cost >= optimum.cost - 1e-9
            # The seed realizes its own cost with a feasible set.
            covered = set()
            for obj in seed.objects:
                covered |= obj.keywords
            assert query.keywords <= covered

    @pytest.mark.parametrize("exact_name", SEEDED_EXACTS)
    def test_counterpart_seed_preserves_answers(
        self, tiny_context, tiny_queries, exact_name
    ):
        exact = make_algorithm(exact_name, tiny_context)
        for query in tiny_queries[:4]:
            plain = exact.solve(query)
            seed = compute_seed(tiny_context, exact.cost, query)
            seeded = exact.solve(query, initial_upper_bound=seed.cost)
            assert outcome(seeded) == outcome(plain)

    def test_min_aggregate_has_no_seeder(self, tiny_context):
        # MIN-aggregate costs admit no monotone owner bound.
        from repro.cost.base import Combiner, QueryAggregate
        from repro.cost.unified import UnifiedCost

        cost = UnifiedCost(0.5, QueryAggregate.MIN, Combiner.ADD)
        assert make_seeder(tiny_context, cost) is None
        assert compute_seed(tiny_context, cost, Query.create(1, 1, [0])) is None


class TestSeedingSoundnessProperty:
    """Hypothesis: any feasible bound, any toggles → identical cost."""

    @settings(max_examples=20, deadline=None)
    @given(
        query_index=st.integers(min_value=0, max_value=9),
        factor=st.floats(min_value=1.0, max_value=50.0),
        kernels_on=st.booleans(),
        signatures_on=st.booleans(),
    )
    def test_bound_never_changes_the_answer(
        self, tiny_context, tiny_queries, query_index, factor, kernels_on, signatures_on
    ):
        query = tiny_queries[query_index]
        exact = make_algorithm("maxsum-exact", tiny_context)
        kernels_flat.set_enabled(kernels_on)
        signatures.set_enabled(signatures_on)
        try:
            plain = exact.solve(query)
            bound = plain.cost * factor  # >= optimum, hence feasible-valued
            seeded = exact.solve(query, initial_upper_bound=bound)
        finally:
            kernels_flat.set_enabled(None)
            signatures.set_enabled(None)
        assert outcome(seeded) == outcome(plain)

    @settings(max_examples=10, deadline=None)
    @given(
        query_index=st.integers(min_value=0, max_value=9),
        exact_name=st.sampled_from(SEEDED_EXACTS),
    )
    def test_tight_bound_is_exact_across_solvers(
        self, tiny_context, tiny_queries, query_index, exact_name
    ):
        # The tightest legal bound — the optimum itself — must survive.
        query = tiny_queries[query_index]
        exact = make_algorithm(exact_name, tiny_context)
        plain = exact.solve(query)
        seeded = exact.solve(query, initial_upper_bound=plain.cost)
        assert seeded.cost == plain.cost


class TestBoundThroughEngines:
    def test_scatter_gather_forwards_external_bound(self, tiny_dataset, tiny_queries):
        from repro.shard import ScatterGather, ShardedIndexFactory

        sharded = SearchContext(tiny_dataset, index_cls=ShardedIndexFactory(4))
        engine = ScatterGather(sharded, "maxsum-exact")
        plain_context = SearchContext(tiny_dataset)
        exact = make_algorithm("maxsum-exact", plain_context)
        for query in tiny_queries[:4]:
            plain = exact.solve(query)
            seed = compute_seed(plain_context, exact.cost, query)
            via_engine = engine.solve(query, initial_upper_bound=seed.cost)
            assert outcome(via_engine) == outcome(plain)

    def test_resilient_executor_forwards_external_bound(
        self, tiny_context, tiny_queries
    ):
        from repro.exec.executor import ResilientExecutor
        from repro.exec.fallback import FallbackChain
        from repro.exec.policy import ExecutionPolicy

        chain = FallbackChain.of(tiny_context, "maxsum-exact", "maxsum-appro")
        executor = ResilientExecutor(chain, ExecutionPolicy())
        exact = make_algorithm("maxsum-exact", tiny_context)
        for query in tiny_queries[:4]:
            plain = exact.solve(query)
            seed = compute_seed(tiny_context, exact.cost, query)
            seeded = executor.solve(query, initial_upper_bound=seed.cost)
            assert outcome(seeded) == outcome(plain)


class TestLadderDataset:
    def test_shape_and_determinism(self):
        ladder = ladder_dataset()
        again = ladder_dataset()
        assert len(ladder) == len(again) == 10 * (1 + 8 * 10) + (1 + 8 * 1)
        assert [o.location for o in ladder.objects] == [
            o.location for o in again.objects
        ]

    def test_object_count_formula(self):
        # rungs full rungs of (1 bait + (m-1)*choices) plus a trivial rung.
        ladder = ladder_dataset(num_keywords=5, rungs=3, choices=4)
        assert len(ladder) == 3 * (1 + 4 * 4) + (1 + 4 * 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ladder_dataset(num_keywords=2)
        with pytest.raises(ValueError):
            ladder_dataset(rungs=0)

    def test_seed_equals_optimum_and_prunes(self):
        ladder = ladder_dataset()
        context = SearchContext(ladder)
        exact = make_algorithm("maxsum-exact", context)
        center = WORLD_SIZE / 2.0
        query = Query.create(center, center, ladder_keywords(ladder, 9))
        plain = exact.solve(query)
        seed = compute_seed(context, exact.cost, query)
        # The final trivial rung is both the optimum and what the appro
        # counterpart finds — the seed is exactly the optimum.
        assert math.isclose(seed.cost, plain.cost, rel_tol=1e-9)
        seeded = exact.solve(query, initial_upper_bound=seed.cost)
        assert outcome(seeded) == outcome(plain)
        # The bound must do real work: strictly fewer cost evaluations.
        assert seeded.counters.get("sets_evaluated", 0) < plain.counters.get(
            "sets_evaluated", 10**9
        )
