"""Determinism + cache integrity of the pinned benchmark datasets.

The macro harness's whole comparability story rests on one contract:
same spec ⇒ byte-identical dataset, wherever it is generated.  These
tests pin that across repeated in-process builds, across a process pool
(the same fork-based workers ``repro.parallel`` uses), and across the
disk cache round-trip — plus the corruption path: a cache file whose
bytes stop matching the recorded hash must be regenerated, not trusted.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.bench.macro.datasets import (
    DatasetCache,
    DatasetSpec,
    build_dataset,
    content_hash,
    spec_content_hash,
)
from repro.data.queries import generate_queries
from repro.errors import InvalidParameterError

SPEC = DatasetSpec(name="det", kind="uniform", size=400, seed=13)


class TestDeterminism:
    def test_same_spec_same_hash_across_builds(self):
        assert content_hash(build_dataset(SPEC)) == content_hash(build_dataset(SPEC))

    def test_hash_is_sensitive_to_seed_and_size_and_kind(self):
        baseline = spec_content_hash(SPEC)
        assert spec_content_hash(DatasetSpec("det", "uniform", 400, seed=14)) != baseline
        assert spec_content_hash(DatasetSpec("det", "uniform", 401, seed=13)) != baseline
        assert spec_content_hash(DatasetSpec("det", "hotel", 400, seed=13)) != baseline

    def test_name_participates_in_identity(self):
        # The name seeds the generator substreams (via GeneratorProfile),
        # so it is part of the pinned identity — two profiles must never
        # silently share bytes just because their shape parameters match.
        renamed = DatasetSpec(name="other", kind="uniform", size=400, seed=13)
        assert spec_content_hash(renamed) != spec_content_hash(SPEC)

    def test_same_hash_across_worker_pool(self):
        """Forked pool workers reproduce the parent's bytes exactly."""
        parent_hash = spec_content_hash(SPEC)
        with ProcessPoolExecutor(max_workers=2) as pool:
            worker_hashes = list(pool.map(spec_content_hash, [SPEC] * 4))
        assert worker_hashes == [parent_hash] * 4

    def test_scaled_datasets_extend_organic_prefix(self):
        # The 10k → 1M ladder grows with the paper's scaling recipe;
        # growing must never perturb the organic prefix.
        small = build_dataset(DatasetSpec("ladder", "uniform", 400, seed=13))
        from repro.bench.macro import datasets as datasets_module

        big = build_dataset(DatasetSpec("ladder", "uniform", 500, seed=13))
        assert len(big) == 500
        assert datasets_module.ORGANIC_CAP > 500  # grown via generator here
        for lhs, rhs in zip(small.objects[:400], big.objects[:400]):
            assert lhs.location == rhs.location


class TestCache:
    def test_miss_then_hit_with_stable_hash(self, tmp_path):
        cache = DatasetCache(tmp_path)
        first, first_meta = cache.materialize(SPEC)
        second, second_meta = cache.materialize(SPEC)
        assert first_meta["cache"] == "miss"
        assert second_meta["cache"] == "hit"
        assert first_meta["content_hash"] == second_meta["content_hash"]
        assert content_hash(first) == content_hash(second)

    def test_hit_and_miss_hand_out_identical_workloads(self, tmp_path):
        """Keyword ids are pinned by the round-trip (see datasets.py)."""
        missed, _ = DatasetCache(tmp_path / "a").materialize(SPEC)
        primed = DatasetCache(tmp_path / "b")
        primed.materialize(SPEC)
        hit, meta = primed.materialize(SPEC)
        assert meta["cache"] == "hit"
        for lhs, rhs in zip(
            generate_queries(missed, 3, 5, seed=1), generate_queries(hit, 3, 5, seed=1)
        ):
            assert lhs.keywords == rhs.keywords
            assert lhs.location == rhs.location

    def test_corrupt_cache_file_is_regenerated(self, tmp_path):
        cache = DatasetCache(tmp_path)
        _, meta = cache.materialize(SPEC)
        path = tmp_path / [p for p in tmp_path.iterdir() if p.suffix == ".tsv"][0].name
        path.write_text(
            path.read_text(encoding="utf-8") + "0.0\t0.0\tinjected\n", encoding="utf-8"
        )
        dataset, regenerated = cache.materialize(SPEC)
        assert regenerated["cache"] == "miss"
        assert regenerated["content_hash"] == meta["content_hash"]
        assert len(dataset) == SPEC.size

    def test_missing_meta_regenerates(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.materialize(SPEC)
        for meta_file in tmp_path.glob("*.meta.json"):
            meta_file.unlink()
        _, meta = cache.materialize(SPEC)
        assert meta["cache"] == "miss"

    def test_meta_records_spec_and_hash(self, tmp_path):
        cache = DatasetCache(tmp_path)
        _, meta = cache.materialize(SPEC)
        recorded = json.loads(
            next(tmp_path.glob("*.meta.json")).read_text(encoding="utf-8")
        )
        assert recorded["content_hash"] == meta["content_hash"]
        assert recorded["spec"]["size"] == SPEC.size
        assert recorded["spec"]["seed"] == SPEC.seed


class TestSpecValidation:
    def test_unknown_kind_refused(self):
        with pytest.raises(InvalidParameterError):
            DatasetSpec(name="x", kind="galaxy", size=10)

    def test_non_positive_size_refused(self):
        with pytest.raises(InvalidParameterError):
            DatasetSpec(name="x", kind="uniform", size=0)
