"""Tests for the geo-textual object value type."""

import pytest

from repro.geometry.point import Point
from repro.model.objects import SpatialObject


def obj(oid, x, y, keywords):
    return SpatialObject(oid, Point(x, y), frozenset(keywords))


class TestSpatialObject:
    def test_create_convenience(self):
        o = SpatialObject.create(3, 1.0, 2.0, [4, 5])
        assert o.oid == 3
        assert o.location == Point(1.0, 2.0)
        assert o.keywords == frozenset({4, 5})

    def test_covers_any(self):
        o = obj(0, 0, 0, [1, 2])
        assert o.covers_any(frozenset({2, 9}))
        assert not o.covers_any(frozenset({3, 9}))

    def test_covered(self):
        o = obj(0, 0, 0, [1, 2, 3])
        assert o.covered(frozenset({2, 3, 9})) == frozenset({2, 3})

    def test_distance_to(self):
        assert obj(0, 0, 0, [1]).distance_to(obj(1, 3, 4, [2])) == pytest.approx(5.0)

    def test_distance_to_point(self):
        assert obj(0, 0, 0, [1]).distance_to_point(Point(0, 2)) == pytest.approx(2.0)

    def test_identity_is_by_oid(self):
        a = obj(7, 0, 0, [1])
        b = obj(7, 5, 5, [2])  # same id, different payload
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_different_oids_differ(self):
        assert obj(1, 0, 0, [1]) != obj(2, 0, 0, [1])

    def test_not_equal_to_other_types(self):
        assert obj(1, 0, 0, [1]) != "object"

    def test_immutability(self):
        o = obj(0, 0, 0, [1])
        with pytest.raises(AttributeError):
            o.oid = 9  # type: ignore[misc]
