"""Tests for the shared algorithm machinery (context, N(q), helpers)."""

import pytest

from repro.algorithms.base import NNSet, SearchContext, minimal_subset
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.cost.functions import DiaCost, MaxSumCost, cost_by_name
from repro.errors import InfeasibleQueryError, InvalidParameterError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.irtree import IRTree
from repro.index.neighbors import LinearScanIndex
from repro.model.objects import SpatialObject
from repro.model.query import Query


class TestSearchContext:
    def test_index_is_lazy_and_cached(self, tiny_dataset):
        context = SearchContext(tiny_dataset)
        assert context._index is None
        index = context.index
        assert isinstance(index, IRTree)
        assert context.index is index

    def test_inverted_cached(self, tiny_dataset):
        context = SearchContext(tiny_dataset)
        assert context.inverted is context.inverted

    def test_alternative_index_class(self, tiny_dataset):
        context = SearchContext(tiny_dataset, index_cls=LinearScanIndex)
        assert isinstance(context.index, LinearScanIndex)

    def test_check_feasible(self, tiny_context):
        tiny_context.check_feasible(Query.create(0, 0, [0]))
        with pytest.raises(InfeasibleQueryError):
            tiny_context.check_feasible(Query.create(0, 0, [0, 40_000]))

    def test_relevant_in_circle_delegates(self, tiny_context, tiny_dataset):
        circle = Circle(Point(500, 500), 300.0)
        got = tiny_context.relevant_in_circle(circle, frozenset({0}))
        for obj in got:
            assert 0 in obj.keywords
            assert circle.contains(obj.location)


class TestNNSet:
    def test_compute(self, tiny_context, tiny_queries):
        query = tiny_queries[0]
        nn = tiny_context.nn_set(query)
        assert set(nn.by_keyword) == set(query.keywords)
        assert nn.d_f == pytest.approx(
            max(d for d, _ in nn.by_keyword.values())
        )
        # Deduplicated and ordered by oid.
        oids = [o.oid for o in nn.objects]
        assert oids == sorted(set(oids))

    def test_nn_objects_actually_nearest(self, tiny_context, tiny_dataset, tiny_queries):
        query = tiny_queries[0]
        nn = tiny_context.nn_set(query)
        for t, (dist, obj) in nn.by_keyword.items():
            assert t in obj.keywords
            for other in tiny_dataset:
                if t in other.keywords:
                    assert dist <= query.location.distance_to(other.location) + 1e-9

    def test_nnset_type(self, tiny_context, tiny_queries):
        assert isinstance(tiny_context.nn_set(tiny_queries[0]), NNSet)


class TestMinimalSubset:
    def _obj(self, oid, x, y, keywords):
        return SpatialObject(oid, Point(x, y), frozenset(keywords))

    def test_drops_redundant_objects(self):
        query = Query.create(0, 0, [1, 2])
        rich = self._obj(0, 1, 0, [1, 2])
        redundant = self._obj(1, 50, 0, [1])
        kept = minimal_subset(query, [rich, redundant])
        assert [o.oid for o in kept] == [0]

    def test_keeps_necessary_objects(self):
        query = Query.create(0, 0, [1, 2])
        a = self._obj(0, 1, 0, [1])
        b = self._obj(1, 2, 0, [2])
        kept = minimal_subset(query, [a, b])
        assert sorted(o.oid for o in kept) == [0, 1]

    def test_prefers_dropping_far_objects(self):
        query = Query.create(0, 0, [1])
        near = self._obj(0, 1, 0, [1])
        far = self._obj(1, 100, 0, [1])
        kept = minimal_subset(query, [near, far])
        assert [o.oid for o in kept] == [0]


class TestRegistry:
    def test_names_listed(self):
        assert "maxsum-exact" in ALGORITHM_NAMES
        assert "dia-appro" in ALGORITHM_NAMES
        assert ALGORITHM_NAMES == tuple(sorted(ALGORITHM_NAMES))

    def test_every_algorithm_solves(self, tiny_context, tiny_queries):
        query = tiny_queries[0]
        for name in ALGORITHM_NAMES:
            algorithm = make_algorithm(name, tiny_context)
            result = algorithm.solve(query)
            assert result.is_feasible_for(query), name

    def test_unknown_name_raises(self, tiny_context):
        with pytest.raises(InvalidParameterError):
            make_algorithm("nope", tiny_context)

    def test_cost_override(self, tiny_context, tiny_queries):
        algo = make_algorithm("cao-exact", tiny_context, cost=DiaCost())
        assert isinstance(algo.cost, DiaCost)
        reference = make_algorithm("dia-exact", tiny_context)
        for query in tiny_queries[:3]:
            assert algo.solve(query).cost == pytest.approx(
                reference.solve(query).cost, rel=1e-6
            )

    def test_paper_algorithms_have_fixed_default_costs(self, tiny_context):
        assert isinstance(make_algorithm("maxsum-exact", tiny_context).cost, MaxSumCost)
        assert isinstance(make_algorithm("dia-exact", tiny_context).cost, DiaCost)
        assert make_algorithm("sum-greedy", tiny_context).cost.name == "sum"

    def test_exactness_flags(self, tiny_context):
        assert make_algorithm("maxsum-exact", tiny_context).exact
        assert not make_algorithm("maxsum-appro", tiny_context).exact
        assert make_algorithm("bruteforce", tiny_context).exact
