"""Tests for dataset scaling and keyword densification."""

import pytest

from repro.data.augment import densify_keywords, scale_dataset
from repro.data.generators import uniform_dataset


@pytest.fixture(scope="module")
def base():
    return uniform_dataset(150, 25, mean_keywords=3.0, seed=17)


class TestScaleDataset:
    def test_grows_to_target(self, base):
        scaled = scale_dataset(base, 400, seed=1)
        assert len(scaled) == 400
        assert [o.oid for o in scaled] == list(range(400))

    def test_originals_preserved(self, base):
        scaled = scale_dataset(base, 300, seed=1)
        for original, kept in zip(base, scaled):
            assert original.location == kept.location
            assert original.keywords == kept.keywords

    def test_same_size_is_identity(self, base):
        assert scale_dataset(base, len(base)) is base

    def test_shrinking_refused(self, base):
        with pytest.raises(ValueError):
            scale_dataset(base, 10)

    def test_new_objects_follow_distribution(self, base):
        scaled = scale_dataset(base, 600, seed=2, jitter=1.0)
        rect = base.mbr()
        slack = 10.0  # jitter can step slightly outside the original MBR
        for obj in scaled.objects[len(base):]:
            assert rect.min_x - slack <= obj.location.x <= rect.max_x + slack
            assert rect.min_y - slack <= obj.location.y <= rect.max_y + slack
            assert obj.keywords  # copied from a donor, never empty

    def test_vocabulary_shared(self, base):
        scaled = scale_dataset(base, 200, seed=3)
        assert scaled.vocabulary is base.vocabulary

    def test_deterministic(self, base):
        a = scale_dataset(base, 250, seed=4)
        b = scale_dataset(base, 250, seed=4)
        assert [(o.location, o.keywords) for o in a] == [
            (o.location, o.keywords) for o in b
        ]


class TestDensifyKeywords:
    def test_raises_mean(self, base):
        denser = densify_keywords(base, 8.0, seed=1)
        before = sum(len(o.keywords) for o in base) / len(base)
        after = sum(len(o.keywords) for o in denser) / len(denser)
        assert after > before
        assert after == pytest.approx(8.0, rel=0.35)

    def test_noop_when_target_not_above_current(self, base):
        assert densify_keywords(base, 1.0) is base

    def test_locations_and_count_unchanged(self, base):
        denser = densify_keywords(base, 6.0, seed=2)
        assert len(denser) == len(base)
        for a, b in zip(base, denser):
            assert a.location == b.location
            assert a.keywords <= b.keywords

    def test_deterministic(self, base):
        a = densify_keywords(base, 6.0, seed=3)
        b = densify_keywords(base, 6.0, seed=3)
        assert [o.keywords for o in a] == [o.keywords for o in b]

    def test_name_records_transformation(self, base):
        assert "k6" in densify_keywords(base, 6.0).name
