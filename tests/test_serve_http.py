"""The serving daemon's request path: outcomes, statuses, endpoints.

Most coverage drives :class:`repro.serve.QueryService` directly (no
sockets); one class exercises the real HTTP stack on an ephemeral port.
"""

from __future__ import annotations

import json

import pytest

from repro.data.generators import uniform_dataset
from repro.errors import InvalidParameterError
from repro.parallel.spec import ChaosSpec
from repro.serve import (
    OUTCOME_STATUS,
    OUTCOMES,
    QueryService,
    ServerConfig,
    create_server,
)
from repro.serve.service import STATUS_DEADLINE


@pytest.fixture(scope="module")
def serve_dataset():
    return uniform_dataset(150, 14, mean_keywords=2.5, seed=19, name="serve")


@pytest.fixture(scope="module")
def frequent_words(serve_dataset):
    return [
        serve_dataset.vocabulary.word_of(k)
        for k in serve_dataset.keywords_by_frequency()[:4]
    ]


def query_body(words, **extra):
    payload = {"x": 500.0, "y": 500.0, "keywords": list(words)}
    payload.update(extra)
    return json.dumps(payload).encode("utf-8")


class TestOutcomeTable:
    def test_every_outcome_has_a_status(self):
        assert set(OUTCOME_STATUS) == set(OUTCOMES)

    def test_statuses_are_distinct_per_failure_class(self):
        failure_statuses = [
            status
            for outcome, status in OUTCOME_STATUS.items()
            if outcome not in ("ok", "degraded")
        ]
        assert len(failure_statuses) == len(set(failure_statuses))


class TestQueryService:
    def test_clean_answer_matches_direct_solve(self, serve_dataset, frequent_words):
        from repro.algorithms.base import SearchContext
        from repro.algorithms.registry import make_algorithm
        from repro.model.query import Query

        service = QueryService(
            serve_dataset, ServerConfig(cache_mode="none", deadline_ms=None)
        )
        response = service.handle_query(query_body(frequent_words[:2]))
        assert response.status == 200
        assert response.outcome == "ok"
        direct = make_algorithm(
            "maxsum-exact", SearchContext(serve_dataset)
        ).solve(
            Query.from_words(
                500.0, 500.0, frequent_words[:2], serve_dataset.vocabulary
            )
        )
        assert response.payload["cost"] == direct.cost
        assert [o["oid"] for o in response.payload["objects"]] == list(
            direct.object_ids
        )

    def test_answer_covers_the_query_keywords(self, serve_dataset, frequent_words):
        service = QueryService(serve_dataset, ServerConfig())
        response = service.handle_query(query_body(frequent_words[:3]))
        covered = set()
        for obj in response.payload["objects"]:
            covered.update(obj["keywords"])
        assert set(frequent_words[:3]) <= covered

    def test_degraded_response_serializes_provenance(
        self, serve_dataset, frequent_words
    ):
        service = QueryService(
            serve_dataset,
            ServerConfig(cache_mode="none", deadline_ms=None, work_budget=3),
        )
        response = service.handle_query(query_body(frequent_words[:3]))
        assert response.status == 200
        assert response.outcome == "degraded"
        provenance = response.payload["provenance"]
        assert provenance["degraded"] is True
        assert provenance["answered_by"] == "nn-set"
        failed_stages = [f["stage"] for f in provenance["failures"]]
        assert failed_stages == ["maxsum-exact", "maxsum-appro"]
        assert all(
            f["error_type"] == "BudgetExceededError"
            for f in provenance["failures"]
        )

    def test_bad_json_is_bad_request(self, serve_dataset):
        service = QueryService(serve_dataset, ServerConfig())
        response = service.handle_query(b"{not json")
        assert response.status == 400
        assert response.outcome == "bad_request"
        assert response.payload["error"]["type"] == "InvalidParameterError"

    @pytest.mark.parametrize(
        "body",
        [
            b"[]",
            b'{"x": 1.0, "y": 2.0}',
            b'{"x": 1.0, "y": 2.0, "keywords": []}',
            b'{"x": 1.0, "y": 2.0, "keywords": [3]}',
            b'{"x": "a", "y": 2.0, "keywords": ["w"]}',
            b'{"x": true, "y": 2.0, "keywords": ["w"]}',
            b'{"x": 1.0, "y": 2.0, "keywords": ["w"], "deadline_ms": "fast"}',
            b'{"x": 1.0, "y": 2.0, "keywords": ["w"], "max_retries": 99}',
        ],
    )
    def test_malformed_requests_are_bad_request(self, serve_dataset, body):
        service = QueryService(serve_dataset, ServerConfig())
        response = service.handle_query(body)
        assert response.status == 400
        assert response.outcome == "bad_request"

    def test_unknown_chain_name_is_bad_request(self, serve_dataset, frequent_words):
        service = QueryService(serve_dataset, ServerConfig())
        response = service.handle_query(
            query_body(frequent_words[:1], chain="no-such-solver")
        )
        assert response.status == 400
        assert "no-such-solver" in response.payload["error"]["message"]

    def test_unknown_keyword_is_404(self, serve_dataset):
        service = QueryService(serve_dataset, ServerConfig())
        response = service.handle_query(query_body(["never-a-word"]))
        assert response.status == 404
        assert response.outcome == "unknown_keyword"
        assert response.payload["error"]["type"] == "UnknownKeywordError"

    def test_infeasible_query_is_422(self):
        dataset = uniform_dataset(50, 8, mean_keywords=2.0, seed=3, name="ghost")
        dataset.vocabulary.add("ghostword")  # in the vocabulary, on no object
        service = QueryService(dataset, ServerConfig())
        response = service.handle_query(query_body(["ghostword"]))
        assert response.status == 422
        assert response.outcome == "infeasible"

    def test_drain_mode_sheds_with_retry_after(self, serve_dataset, frequent_words):
        service = QueryService(
            serve_dataset, ServerConfig(max_inflight=0, retry_after_s=0.25)
        )
        response = service.handle_query(query_body(frequent_words[:1]))
        assert response.status == 429
        assert response.outcome == "shed"
        assert response.retry_after_s == 0.25
        assert service.stats.snapshot()["by_outcome"]["shed"] == 1
        assert service.admission.snapshot()["shed"] == 1

    def test_all_deadline_failure_maps_to_504(self, serve_dataset, frequent_words):
        config = ServerConfig(
            chain="maxsum-exact,maxsum-appro",
            deadline_ms=0.0001,
            max_deadline_ms=0.0001,
            always_answer=False,
            cache_mode="none",
        )
        service = QueryService(serve_dataset, config)
        response = service.handle_query(query_body(frequent_words[:2]))
        assert response.status == STATUS_DEADLINE
        assert response.outcome == "failed"
        failures = response.payload["error"]["failures"]
        assert failures and all(
            f["error_type"] == "DeadlineExceededError" for f in failures
        )

    def test_every_request_is_counted_exactly_once(
        self, serve_dataset, frequent_words
    ):
        service = QueryService(serve_dataset, ServerConfig())
        bodies = [
            query_body(frequent_words[:2]),
            b"{bad",
            query_body(["never-a-word"]),
            query_body(frequent_words[:1]),
        ]
        for body in bodies:
            service.handle_query(body)
        snapshot = service.stats.snapshot()
        assert snapshot["total"] == len(bodies)
        assert sum(snapshot["by_outcome"].values()) == len(bodies)

    def test_result_cache_serves_repeats(self, serve_dataset, frequent_words):
        service = QueryService(
            serve_dataset, ServerConfig(cache_mode="result")
        )
        body = query_body(frequent_words[:2])
        first = service.handle_query(body)
        second = service.handle_query(body)
        assert first.payload["cost"] == second.payload["cost"]
        stats = service.result_cache.stats_dict()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_chaos_with_result_cache_is_rejected(self):
        with pytest.raises(InvalidParameterError):
            ServerConfig(cache_mode="full", chaos=ChaosSpec(fail_rate=0.5))

    def test_per_request_deadline_is_clamped(self, serve_dataset, frequent_words):
        config = ServerConfig(max_deadline_ms=50.0)
        assert config.clamp_deadline(10.0) == 10.0
        assert config.clamp_deadline(10_000.0) == 50.0
        assert config.clamp_deadline(None) == config.deadline_ms


class TestHttpEndpoints:
    @pytest.fixture(scope="class")
    def server(self, serve_dataset):
        server = create_server(serve_dataset, ServerConfig(port=0))
        server.serve_background()
        yield server
        server.shutdown()
        server.server_close()

    @pytest.fixture(scope="class")
    def client(self, server):
        from repro.serve.client import LoadClient

        return LoadClient(server.url, seed=7)

    def test_healthz(self, client, serve_dataset):
        health = client.get_json("/healthz")
        assert health["status"] == "ok"
        assert health["objects"] == len(serve_dataset)
        assert len(health["bounds"]) == 4

    def test_query_roundtrip(self, client, frequent_words):
        record = client.query(
            {"x": 500.0, "y": 500.0, "keywords": frequent_words[:2]}
        )
        assert record.status == 200
        assert record.outcome == "ok"
        assert record.feasible is True

    def test_error_statuses_carry_json_taxonomy(self, client):
        status, body, _ = client._post_query({"x": 1.0, "y": 2.0, "keywords": [3]})
        assert status == 400
        assert body["error"]["type"] == "InvalidParameterError"

    def test_stats_shape(self, client):
        stats = client.get_json("/stats")
        assert set(stats["by_outcome"]) == set(OUTCOMES)
        assert "latency" in stats and "admission" in stats and "cache" in stats

    def test_vocabulary_endpoint(self, client):
        vocabulary = client.get_json("/vocabulary?limit=5")
        assert len(vocabulary["words"]) == 5
        counts = [entry["objects"] for entry in vocabulary["words"]]
        assert counts == sorted(counts, reverse=True)

    def test_unknown_paths_are_json_404(self, client):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as info:
            client.get_json("/nope")
        assert info.value.code == 404
        assert json.loads(info.value.read())["error"]["type"] == "NotFound"
