"""Tests for the unified extension: Unified-E and Unified-A on every cost."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.cao_exact import BranchBoundExact
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.algorithms.sum_algorithms import SumExact
from repro.algorithms.unified_appro import UnifiedAppro, ratio_bound_for
from repro.algorithms.unified_exact import UnifiedExact, make_exact_solver
from repro.cost.base import Combiner, QueryAggregate
from repro.cost.functions import cost_by_name
from repro.cost.unified import INTERESTING_SETTINGS, UnifiedCost
from repro.data.generators import uniform_dataset
from repro.data.queries import generate_queries

TOL = 1e-6

#: Named costs whose exact solver the oracle can cross-check cheaply.
NAMED_COSTS = ("maxsum", "dia", "sum", "summax", "minmax", "minmax2", "max")


def close(a, b):
    return abs(a - b) <= TOL * max(1.0, abs(a), abs(b))


@pytest.fixture(scope="module")
def small():
    dataset = uniform_dataset(60, 8, mean_keywords=2.0, seed=77)
    context = SearchContext(dataset)
    queries = generate_queries(dataset, 3, 4, percentile_range=(0.0, 1.0), seed=78)
    return context, queries


class TestDispatch:
    def test_max_aggregate_uses_owner_engine(self, small):
        context, _ = small
        solver = make_exact_solver(context, cost_by_name("maxsum"))
        assert isinstance(solver, OwnerDrivenExact)

    def test_sum_uses_mask_dijkstra(self, small):
        context, _ = small
        solver = make_exact_solver(context, cost_by_name("sum"))
        assert isinstance(solver, SumExact)

    def test_others_use_branch_and_bound(self, small):
        context, _ = small
        for name in ("summax", "minmax", "minmax2"):
            solver = make_exact_solver(context, cost_by_name(name))
            assert isinstance(solver, BranchBoundExact), name

    def test_delegate_exposed(self, small):
        context, _ = small
        unified = UnifiedExact(context, cost_by_name("dia"))
        assert isinstance(unified.delegate, OwnerDrivenExact)


class TestUnifiedExactCorrectness:
    @pytest.mark.parametrize("name", NAMED_COSTS)
    def test_matches_bruteforce(self, small, name):
        context, queries = small
        cost = cost_by_name(name)
        for query in queries:
            optimal = BruteForceExact(context, cost_by_name(name)).solve(query)
            got = UnifiedExact(context, cost).solve(query)
            assert got.is_feasible_for(query)
            assert close(got.cost, optimal.cost), name

    @given(st.integers(0, 20_000))
    @settings(max_examples=10)
    def test_minmax_exact_random(self, seed):
        # MIN-aggregate costs exercise the one-extra-object machinery.
        dataset = uniform_dataset(50, 8, mean_keywords=2.0, seed=seed)
        context = SearchContext(dataset)
        cost_name = "minmax" if seed % 2 == 0 else "minmax2"
        for query in generate_queries(
            dataset, 3, 2, percentile_range=(0.0, 1.0), seed=seed + 1
        ):
            optimal = BruteForceExact(context, cost_by_name(cost_name)).solve(query)
            got = UnifiedExact(context, cost_by_name(cost_name)).solve(query)
            assert close(got.cost, optimal.cost)

    def test_unified_cost_settings(self, small):
        context, queries = small
        for alpha, phi1, phi2 in INTERESTING_SETTINGS:
            cost = UnifiedCost(alpha, phi1, phi2)
            oracle_cost = UnifiedCost(alpha, phi1, phi2)
            for query in queries[:2]:
                optimal = BruteForceExact(context, oracle_cost).solve(query)
                got = UnifiedExact(context, cost).solve(query)
                assert close(got.cost, optimal.cost), cost.name


class TestUnifiedAppro:
    @pytest.mark.parametrize("name", NAMED_COSTS)
    def test_within_proven_ratio(self, small, name):
        context, queries = small
        for query in queries:
            optimal = BruteForceExact(context, cost_by_name(name)).solve(query)
            got = UnifiedAppro(context, cost_by_name(name)).solve(query)
            assert got.is_feasible_for(query)
            bound = ratio_bound_for(name, query.size)
            assert got.cost <= optimal.cost * bound + TOL, name

    def test_exact_for_max_cost(self, small):
        context, queries = small
        for query in queries:
            optimal = BruteForceExact(context, cost_by_name("max")).solve(query)
            got = UnifiedAppro(context, cost_by_name("max")).solve(query)
            assert close(got.cost, optimal.cost)

    def test_ratio_bound_for_table(self):
        assert ratio_bound_for("maxsum", 5) == pytest.approx(1.375)
        assert ratio_bound_for("dia", 5) == pytest.approx(3 ** 0.5)
        assert ratio_bound_for("minmax", 5) == pytest.approx(2.0)
        assert ratio_bound_for("sum", 3) == pytest.approx(1 + 0.5 + 1 / 3)
        assert ratio_bound_for("unknown", 3) == float("inf")

    @given(st.integers(0, 20_000))
    @settings(max_examples=10)
    def test_random_instances_all_costs(self, seed):
        dataset = uniform_dataset(50, 8, mean_keywords=2.0, seed=seed)
        context = SearchContext(dataset)
        queries = generate_queries(
            dataset, 3, 1, percentile_range=(0.0, 1.0), seed=seed + 1
        )
        for name in ("maxsum", "dia", "minmax", "summax"):
            for query in queries:
                optimal = BruteForceExact(context, cost_by_name(name)).solve(query)
                got = UnifiedAppro(context, cost_by_name(name)).solve(query)
                bound = ratio_bound_for(name, query.size)
                assert got.cost <= optimal.cost * bound + TOL, name


class TestAggregateEnumIntegrity:
    def test_interesting_settings_cover_papers(self):
        names = {
            UnifiedCost(a, p1, p2).named_equivalent()
            for a, p1, p2 in INTERESTING_SETTINGS
        }
        assert {"maxsum", "dia", "sum", "summax", "minmax", "minmax2", "max"} <= names

    def test_aggregates_and_combiners_are_closed(self):
        assert {a.value for a in QueryAggregate} == {"sum", "max", "min"}
        assert {c.value for c in Combiner} == {"add", "max"}
