"""The memoizing caches under thread pressure (the serving daemon's use).

Both caches promise: every lookup increments exactly one of hits/misses,
the LRU never exceeds its capacity, racing misses converge on one
canonical entry, and ``stats_dict`` snapshots are internally consistent.
"""

from __future__ import annotations

import threading

import pytest

from repro.algorithms.base import SearchContext
from repro.geometry.point import Point
from repro.index.cache import CachingIndex
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.parallel.cache import ResultCache, result_key

THREADS = 8
ROUNDS = 40


def hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on many threads; re-raise any failure."""
    errors = []

    def run(index):
        try:
            worker(index)
        except Exception as err:  # pragma: no cover - surfaced below
            errors.append(err)

    pool = [
        threading.Thread(target=run, args=(i,), daemon=True)
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors


class TestCachingIndexConcurrency:
    @pytest.fixture()
    def raw_index(self, tiny_dataset):
        return SearchContext(tiny_dataset).index

    def test_hammered_lookups_count_and_agree(self, tiny_dataset, raw_index):
        cache = CachingIndex(raw_index, capacity=64)
        keywords = tiny_dataset.keywords_by_frequency()[:4]
        points = [Point(float(i * 7 % 100), float(i * 13 % 100)) for i in range(10)]

        def worker(thread_index):
            for round_number in range(ROUNDS):
                point = points[(thread_index + round_number) % len(points)]
                keyword = keywords[round_number % len(keywords)]
                got = cache.keyword_nn(point, keyword)
                expected = raw_index.keyword_nn(point, keyword)
                assert (got is None) == (expected is None)
                if got is not None:
                    assert got[0] == expected[0]
                    assert got[1].oid == expected[1].oid

        hammer(worker)
        stats = cache.stats_dict()
        assert stats["hits"] + stats["misses"] == THREADS * ROUNDS
        assert stats["misses"] >= len(points) * len(keywords) - stats["evictions"]

    def test_capacity_bound_holds_under_threads(self, tiny_dataset, raw_index):
        capacity = 8
        cache = CachingIndex(raw_index, capacity=capacity)
        keywords = tiny_dataset.keywords_by_frequency()[:6]

        def worker(thread_index):
            for round_number in range(ROUNDS):
                point = Point(
                    float((thread_index * 31 + round_number) % 50),
                    float((thread_index * 17 + round_number) % 50),
                )
                cache.keyword_nn(point, keywords[round_number % len(keywords)])

        hammer(worker)
        assert len(cache._entries) <= capacity
        stats = cache.stats_dict()
        assert stats["evictions"] > 0
        assert stats["hits"] + stats["misses"] == THREADS * ROUNDS

    def test_racing_misses_converge_on_one_snapshot(self, tiny_dataset, raw_index):
        cache = CachingIndex(raw_index, capacity=64)
        query = Query(
            Point(50.0, 50.0),
            frozenset(tiny_dataset.keywords_by_frequency()[:3]),
        )
        barrier = threading.Barrier(THREADS)
        results = [None] * THREADS

        def worker(thread_index):
            barrier.wait()  # all threads miss at once
            results[thread_index] = cache.nearest_neighbor_set(query)

        hammer(worker)
        first = results[0]
        assert all(result == first for result in results)
        stats = cache.stats_dict()
        assert stats["hits"] + stats["misses"] == THREADS

    def test_mutating_a_result_cannot_poison_the_cache(
        self, tiny_dataset, raw_index
    ):
        cache = CachingIndex(raw_index, capacity=64)
        query = Query(
            Point(10.0, 10.0),
            frozenset(tiny_dataset.keywords_by_frequency()[:2]),
        )
        first = cache.nearest_neighbor_set(query)
        first.clear()
        second = cache.nearest_neighbor_set(query)
        assert second and second != {}


class TestResultCacheConcurrency:
    def make_result(self, label):
        return CoSKQResult(algorithm=label, objects=(), cost=1.0)

    def test_hammered_get_put_counts_exactly(self, tiny_dataset):
        cache = ResultCache(capacity=16)
        keywords = frozenset(tiny_dataset.keywords_by_frequency()[:2])
        keys = [
            result_key(
                Query(Point(float(i), float(i)), keywords), "solver", "maxsum"
            )
            for i in range(6)
        ]

        def worker(thread_index):
            for round_number in range(ROUNDS):
                key = keys[(thread_index + round_number) % len(keys)]
                if cache.get(key) is None:
                    cache.put(key, self.make_result("r%d" % thread_index))

        hammer(worker)
        stats = cache.stats_dict()
        assert stats["hits"] + stats["misses"] == THREADS * ROUNDS
        assert len(cache) <= 16
        # steady state: every key resident, no evictions for 6 < 16 keys
        assert stats["evictions"] == 0
        assert len(cache) == len(keys)

    def test_capacity_bound_with_eviction_pressure(self, tiny_dataset):
        cache = ResultCache(capacity=4)
        keywords = frozenset(tiny_dataset.keywords_by_frequency()[:2])

        def worker(thread_index):
            for round_number in range(ROUNDS):
                query = Query(
                    Point(
                        float(thread_index * ROUNDS + round_number), 0.0
                    ),
                    keywords,
                )
                cache.put(
                    result_key(query, "solver", None),
                    self.make_result("x"),
                )

        hammer(worker)
        assert len(cache) <= 4
        stats = cache.stats_dict()
        assert stats["evictions"] == THREADS * ROUNDS - 4

    def test_snapshot_is_internally_consistent_under_load(self, tiny_dataset):
        cache = ResultCache(capacity=8)
        keywords = frozenset(tiny_dataset.keywords_by_frequency()[:2])
        key = result_key(Query(Point(1.0, 1.0), keywords), "solver", None)
        cache.put(key, self.make_result("seed"))
        stop = threading.Event()
        snapshots = []

        def reader(_):
            while not stop.is_set():
                snapshots.append(cache.stats_dict())

        def writer(thread_index):
            for _ in range(ROUNDS * 5):
                cache.get(key)
            stop.set()

        reader_thread = threading.Thread(target=reader, args=(0,), daemon=True)
        reader_thread.start()
        hammer(writer, threads=4)
        stop.set()
        reader_thread.join()
        final = cache.stats_dict()
        assert final["hits"] == 4 * ROUNDS * 5
        # monotone counters: no snapshot may exceed the final tally
        for snap in snapshots:
            assert snap["hits"] <= final["hits"]
            assert snap["misses"] <= final["misses"]
