"""Tests for queries and results."""

import pytest

from repro.errors import InvalidParameterError, UnknownKeywordError
from repro.geometry.point import Point
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.model.vocabulary import Vocabulary


class TestQuery:
    def test_create(self):
        q = Query.create(1.0, 2.0, [3, 4])
        assert q.location == Point(1.0, 2.0)
        assert q.keywords == frozenset({3, 4})
        assert q.size == 2

    def test_empty_keywords_rejected(self):
        with pytest.raises(InvalidParameterError):
            Query.create(0, 0, [])

    def test_from_words(self):
        v = Vocabulary(["spa", "gym"])
        q = Query.from_words(0, 0, ["gym"], v)
        assert q.keywords == frozenset({1})

    def test_from_words_unknown_raises(self):
        v = Vocabulary(["spa"])
        with pytest.raises(UnknownKeywordError):
            Query.from_words(0, 0, ["pool"], v)

    def test_distance_to(self):
        q = Query.create(0, 0, [1])
        assert q.distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_immutability(self):
        q = Query.create(0, 0, [1])
        with pytest.raises(AttributeError):
            q.location = Point(1, 1)  # type: ignore[misc]


def _obj(oid, x, y, keywords):
    return SpatialObject(oid, Point(x, y), frozenset(keywords))


class TestCoSKQResult:
    def test_of_orders_objects_by_oid(self):
        r = CoSKQResult.of([_obj(5, 0, 0, [1]), _obj(2, 1, 1, [2])], 3.0, "algo")
        assert r.object_ids == (2, 5)
        assert len(r) == 2

    def test_covered_keywords(self):
        r = CoSKQResult.of([_obj(0, 0, 0, [1, 2]), _obj(1, 1, 1, [3])], 1.0, "a")
        assert r.covered_keywords() == frozenset({1, 2, 3})

    def test_feasibility(self):
        r = CoSKQResult.of([_obj(0, 0, 0, [1, 2])], 1.0, "a")
        assert r.is_feasible_for(Query.create(0, 0, [1]))
        assert r.is_feasible_for(Query.create(0, 0, [1, 2]))
        assert not r.is_feasible_for(Query.create(0, 0, [1, 3]))

    def test_counters_default(self):
        r = CoSKQResult.of([_obj(0, 0, 0, [1])], 1.0, "a")
        assert r.counters == {}

    def test_repr_contains_algorithm_and_cost(self):
        r = CoSKQResult.of([_obj(0, 0, 0, [1])], 2.5, "maxsum-exact")
        text = repr(r)
        assert "maxsum-exact" in text and "2.5" in text
