"""Tests for the plain R-tree: structure, range and NN correctness."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.rtree import RTree

coords = st.floats(0, 1000, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.builds(Point, coords, coords), min_size=0, max_size=120)


def linear_range(entries, circle):
    return sorted(
        payload for p, payload in entries if circle.contains(p)
    )


def linear_nearest(entries, point, k):
    ranked = sorted(
        ((point.distance_to(p), payload) for p, payload in entries),
        key=lambda t: (t[0], t[1]),
    )
    return ranked[:k]


def build_entries(points):
    return [(p, i) for i, p in enumerate(points)]


class TestConstruction:
    def test_min_capacity_enforced(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_empty_tree(self):
        tree: RTree[int] = RTree()
        assert len(tree) == 0
        assert tree.range_search(Circle(Point(0, 0), 10)) == []
        assert tree.nearest(Point(0, 0)) == []

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_insert_counts(self):
        tree: RTree[int] = RTree(max_entries=4)
        for i in range(50):
            tree.insert(Point(i, i % 7), i)
        assert len(tree) == 50
        tree.check_invariants()

    def test_bulk_load_invariants(self):
        rng = random.Random(0)
        entries = build_entries(
            [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(300)]
        )
        tree = RTree.bulk_load(entries, max_entries=8)
        assert len(tree) == 300
        tree.check_invariants()
        assert sorted(p for _, p in tree.all_entries()) == sorted(
            p for _, p in entries
        )

    def test_height_grows_with_size(self):
        small = RTree.bulk_load(build_entries([Point(i, 0) for i in range(10)]), 4)
        large = RTree.bulk_load(build_entries([Point(i, 0) for i in range(500)]), 4)
        assert large.height() > small.height()


class TestQueries:
    def test_range_search_small(self):
        entries = build_entries([Point(0, 0), Point(5, 5), Point(10, 10)])
        tree = RTree.bulk_load(entries)
        found = tree.range_search(Circle(Point(0, 0), 7.1))
        assert sorted(found) == [0, 1]

    def test_range_boundary_inclusive(self):
        tree = RTree.bulk_load(build_entries([Point(3, 4)]))
        assert tree.range_search(Circle(Point(0, 0), 5.0)) == [0]

    def test_nearest_order(self):
        entries = build_entries([Point(10, 0), Point(1, 0), Point(5, 0)])
        tree = RTree.bulk_load(entries)
        ranked = [payload for _, _, payload in tree.nearest_iter(Point(0, 0))]
        assert ranked == [1, 2, 0]

    def test_nearest_k(self):
        entries = build_entries([Point(i, 0) for i in range(20)])
        tree = RTree.bulk_load(entries)
        got = tree.nearest(Point(0, 0), k=3)
        assert [p for _, p in got] == [0, 1, 2]

    @given(point_lists, st.builds(Point, coords, coords), st.floats(0, 500))
    @settings(max_examples=30)
    def test_range_matches_linear_scan(self, points, center, radius):
        entries = build_entries(points)
        tree = RTree.bulk_load(entries, max_entries=5)
        circle = Circle(center, radius)
        assert sorted(tree.range_search(circle)) == linear_range(entries, circle)

    @given(point_lists, st.builds(Point, coords, coords))
    @settings(max_examples=30)
    def test_nearest_matches_linear_scan(self, points, query):
        entries = build_entries(points)
        tree = RTree.bulk_load(entries, max_entries=5)
        expected = linear_nearest(entries, query, 5)
        got = tree.nearest(query, k=5)
        assert [round(d, 9) for d, _ in got] == [round(d, 9) for d, _ in expected]

    @given(point_lists)
    @settings(max_examples=20)
    def test_insert_equals_bulk_load_contents(self, points):
        entries = build_entries(points)
        inserted: RTree[int] = RTree(max_entries=5)
        for p, payload in entries:
            inserted.insert(p, payload)
        inserted.check_invariants()
        bulk = RTree.bulk_load(entries, max_entries=5)
        bulk.check_invariants()
        assert sorted(x for _, x in inserted.all_entries()) == sorted(
            x for _, x in bulk.all_entries()
        )

    @given(point_lists, st.builds(Point, coords, coords))
    @settings(max_examples=20)
    def test_nearest_iter_is_sorted(self, points, query):
        tree = RTree.bulk_load(build_entries(points), max_entries=5)
        distances = [d for d, _, _ in tree.nearest_iter(query)]
        assert distances == sorted(distances)
