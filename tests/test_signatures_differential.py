"""Differential gate: signatures on and off must be *bit-identical*.

The signature layer (repro.index.signatures) claims that swapping
frozenset keyword algebra for integer bitmasks changes no observable
behavior — not the costs, not the chosen objects, not the pruning
decisions feeding either.  The gate mirrors the kernels differential:
for every registered solver and several seeded instances, the
signatures-on run must return the same cost float and the same object
set as the signatures-off run, and the equality must survive a
chaos-wrapped index and forked parallel workers (where the toggle
travels via the environment).
"""

from __future__ import annotations

import pytest

from conftest import make_random_instance
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.exec.batch import BatchExecutor
from repro.exec.chaos import ChaosIndex, FaultPlan, chaos_context
from repro.index import signatures
from repro.parallel import ParallelBatchExecutor, SolverSpec, WorkerEnv

SEEDS = (101, 202, 303)


@pytest.fixture(autouse=True)
def restore_toggle():
    yield
    signatures.set_enabled(None)


@pytest.fixture(scope="module", params=SEEDS)
def instance(request):
    dataset, context, queries = make_random_instance(
        request.param, num_objects=40, vocab=8
    )
    return dataset, context, queries


def run_solver(context, name, queries, enabled):
    signatures.set_enabled(enabled)
    try:
        solver = make_algorithm(name, context)
        out = []
        for query in queries:
            result = solver.solve(query)
            out.append((result.cost, tuple(sorted(o.oid for o in result.objects))))
        return out
    finally:
        signatures.set_enabled(None)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_every_solver_is_bit_identical(instance, name):
    _, context, queries = instance
    baseline = run_solver(context, name, queries, enabled=False)
    masked = run_solver(context, name, queries, enabled=True)
    assert masked == baseline  # exact: same cost floats, same object sets


def test_chaos_wrapped_index_stays_identical(instance):
    """The signature path must survive (and use) a decorated index."""
    _, context, queries = instance
    wrapped = chaos_context(context, FaultPlan())
    baseline = run_solver(wrapped, "maxsum-exact", queries, enabled=False)
    masked = run_solver(wrapped, "maxsum-exact", queries, enabled=True)
    assert masked == baseline
    chaos = wrapped.index
    assert isinstance(chaos, ChaosIndex)
    assert any(method == "relevant_objects" for method, _ in chaos.call_log)


@pytest.mark.parametrize("env_value", ["0", "1"])
def test_toggle_propagates_into_forked_workers(instance, monkeypatch, env_value):
    """REPRO_SIGNATURES travels by environment, so workers see the setting."""
    dataset, context, queries = instance
    monkeypatch.setenv("REPRO_SIGNATURES", env_value)
    serial = BatchExecutor(make_algorithm("maxsum-exact", context)).run(queries)
    env = WorkerEnv(dataset=dataset)
    with ParallelBatchExecutor(env, workers=2) as engine:
        parallel = engine.run(queries, SolverSpec(algorithm="maxsum-exact"))
    assert parallel.failed == serial.failed == 0
    for mine, theirs in zip(serial.results, parallel.results):
        assert theirs.cost == mine.cost
        assert {o.oid for o in theirs.objects} == {o.oid for o in mine.objects}
