"""Tests for the IR-tree: keyword summaries, keyword NN, regions, N(q)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import uniform_dataset
from repro.errors import InfeasibleQueryError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.irtree import IRTree
from repro.index.neighbors import LinearScanIndex
from repro.model.dataset import Dataset
from repro.model.query import Query


@pytest.fixture(scope="module")
def ds():
    return uniform_dataset(250, 10, mean_keywords=2.5, seed=42)


@pytest.fixture(scope="module")
def tree(ds):
    return IRTree.build(ds, max_entries=6)


@pytest.fixture(scope="module")
def oracle(ds):
    return LinearScanIndex(ds)


class TestStructure:
    def test_min_capacity_enforced(self):
        with pytest.raises(ValueError):
            IRTree(max_entries=3)

    def test_build_counts_and_invariants(self, ds, tree):
        assert len(tree) == len(ds)
        tree.check_invariants()

    def test_all_objects_round_trip(self, ds, tree):
        assert sorted(o.oid for o in tree.all_objects()) == list(range(len(ds)))

    def test_root_keywords_are_dataset_union(self, ds, tree):
        expected = set()
        for o in ds:
            expected.update(o.keywords)
        assert tree.root.keywords == expected

    def test_incremental_insert_matches(self, ds):
        tree = IRTree(max_entries=5)
        for obj in ds:
            tree.insert(obj)
        tree.check_invariants()
        assert len(tree) == len(ds)

    def test_empty_tree_queries(self):
        tree = IRTree()
        assert tree.relevant_in_circle(Circle(Point(0, 0), 10), frozenset({1})) == []
        assert tree.keyword_nn(Point(0, 0), 1) is None
        assert list(tree.nearest_relevant_iter(Point(0, 0), frozenset({1}))) == []

    def test_height(self, tree):
        assert tree.height() >= 2


class TestKeywordNN:
    def test_matches_linear_scan(self, ds, tree, oracle):
        for k in range(len(ds.vocabulary)):
            for q in (Point(100, 100), Point(900, 200), Point(0, 0)):
                got = tree.keyword_nn(q, k)
                expected = oracle.keyword_nn(q, k)
                if expected is None:
                    assert got is None
                else:
                    assert got is not None
                    assert got[0] == pytest.approx(expected[0])

    def test_missing_keyword(self, tree):
        assert tree.keyword_nn(Point(0, 0), 99999) is None

    def test_nearest_relevant_iter_sorted_and_relevant(self, tree):
        keywords = frozenset({0, 1})
        hits = list(tree.nearest_relevant_iter(Point(500, 500), keywords))
        distances = [d for d, _ in hits]
        assert distances == sorted(distances)
        assert all(not o.keywords.isdisjoint(keywords) for _, o in hits)

    def test_nearest_relevant_iter_within_disk(self, tree, oracle):
        keywords = frozenset({0, 1, 2})
        disk = Circle(Point(500, 500), 150.0)
        got = [o.oid for _, o in tree.nearest_relevant_iter(Point(100, 100), keywords, within=disk)]
        expected = [
            o.oid
            for _, o in oracle.nearest_relevant_iter(Point(100, 100), keywords, within=disk)
        ]
        assert sorted(got) == sorted(expected)

    def test_nearest_relevant_iter_exhaustive(self, ds, tree):
        keywords = frozenset({3})
        got = {o.oid for _, o in tree.nearest_relevant_iter(Point(0, 0), keywords)}
        expected = {o.oid for o in ds if 3 in o.keywords}
        assert got == expected


class TestRegions:
    def test_relevant_in_circle_matches_linear(self, tree, oracle):
        keywords = frozenset({0, 4})
        for center, radius in ((Point(500, 500), 200.0), (Point(0, 0), 50.0)):
            circle = Circle(center, radius)
            got = sorted(o.oid for o in tree.relevant_in_circle(circle, keywords))
            expected = sorted(o.oid for o in oracle.relevant_in_circle(circle, keywords))
            assert got == expected

    def test_relevant_in_region_is_intersection(self, tree, oracle):
        keywords = frozenset({0, 1, 2, 3})
        a = Circle(Point(400, 400), 300.0)
        b = Circle(Point(600, 400), 300.0)
        got = sorted(o.oid for o in tree.relevant_in_region([a, b], keywords))
        expected = sorted(o.oid for o in oracle.relevant_in_region([a, b], keywords))
        assert got == expected
        single = {o.oid for o in tree.relevant_in_circle(a, keywords)}
        assert set(got) <= single

    def test_relevant_in_region_empty_circles(self, tree):
        assert tree.relevant_in_region([], frozenset({0})) == []

    def test_objects_in_circle(self, ds, tree):
        circle = Circle(Point(500, 500), 250.0)
        got = sorted(o.oid for o in tree.objects_in_circle(circle))
        expected = sorted(o.oid for o in ds if circle.contains(o.location))
        assert got == expected


class TestNNSet:
    def test_nearest_neighbor_set(self, ds, tree, oracle):
        query = Query.create(500, 500, [0, 1, 2])
        got = tree.nearest_neighbor_set(query)
        expected = oracle.nearest_neighbor_set(query)
        assert set(got) == set(expected)
        for t in got:
            assert got[t][0] == pytest.approx(expected[t][0])

    def test_infeasible_raises(self, tree):
        with pytest.raises(InfeasibleQueryError) as err:
            tree.nearest_neighbor_set(Query.create(0, 0, [0, 99999]))
        assert 99999 in err.value.missing_keywords


class TestPropertyBased:
    @given(st.integers(0, 10_000), st.integers(4, 12))
    @settings(max_examples=15)
    def test_random_dataset_agreement(self, seed, fanout):
        dataset = uniform_dataset(80, 6, mean_keywords=2.0, seed=seed)
        tree = IRTree.build(dataset, max_entries=fanout)
        tree.check_invariants()
        oracle = LinearScanIndex(dataset)
        point = Point(321.0, 456.0)
        for keyword in range(3):
            got = tree.keyword_nn(point, keyword)
            expected = oracle.keyword_nn(point, keyword)
            assert (got is None) == (expected is None)
            if got is not None and expected is not None:
                assert got[0] == pytest.approx(expected[0])

    @given(st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_insert_preserves_summaries(self, seed):
        dataset = uniform_dataset(60, 5, mean_keywords=2.0, seed=seed)
        tree = IRTree(max_entries=4)
        for obj in dataset:
            tree.insert(obj)
        tree.check_invariants()


class TestBooleanKNN:
    def test_results_cover_all_keywords(self, ds, tree):
        query = Query.create(500, 500, [0, 1])
        hits = tree.boolean_knn(query, k=5)
        for dist, obj in hits:
            assert query.keywords <= obj.keywords

    def test_ascending_distance(self, ds, tree):
        query = Query.create(500, 500, [0])
        hits = tree.boolean_knn(query, k=10)
        distances = [d for d, _ in hits]
        assert distances == sorted(distances)
        assert len(hits) == 10

    def test_matches_linear_scan(self, ds, tree):
        query = Query.create(123, 456, [0, 2])
        hits = tree.boolean_knn(query, k=4)
        expected = sorted(
            (query.location.distance_to(o.location), o.oid)
            for o in ds
            if query.keywords <= o.keywords
        )[:4]
        assert [round(d, 9) for d, _ in hits] == [round(d, 9) for d, _ in expected]

    def test_impossible_combination_is_empty(self, ds, tree):
        # With enough keywords no single object covers them all.
        query = Query.create(0, 0, list(range(10)))
        assert tree.boolean_knn(query, k=3) == []

    def test_nonpositive_k(self, tree):
        assert tree.boolean_knn(Query.create(0, 0, [0]), k=0) == []
