"""The summary schema: golden file + validator unit coverage.

The golden file pins the canonical (timing-free) projection of a smoke
run, making every schema change an explicit, reviewable fixture diff —
the same pattern as ``tests/fixtures/dataflow_r10.golden.json``.
Regenerate deliberately with::

    coskq-bench run --profile smoke --out /tmp/run.json \
        --canonical-out tests/fixtures/bench_macro_smoke.golden.json
"""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro.bench.macro.schema import (
    SCHEMA_VERSION,
    SummarySchemaError,
    assert_valid,
    canonical_summary,
    validate_summary,
)

GOLDEN = pathlib.Path(__file__).parent / "fixtures" / "bench_macro_smoke.golden.json"


class TestGoldenFile:
    def test_canonical_projection_matches_golden(self, macro_smoke_run):
        _, summary = macro_smoke_run
        expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert canonical_summary(summary) == expected

    def test_golden_declares_current_schema_version(self):
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert golden["schema_version"] == SCHEMA_VERSION

    def test_canonical_projection_neutralizes_measurements(self, macro_smoke_run):
        _, summary = macro_smoke_run
        projected = canonical_summary(summary)
        assert projected["totals"]["wall_s"] == 0.0
        assert projected["environment"]["python"] == "<python>"
        for entry in projected["datasets"]:
            assert entry["content_hash"] == "<sha256>"
        for entry in projected["workloads"]:
            assert entry["provenance"] == {}
            if entry["latency_ms"] is not None:
                assert entry["latency_ms"]["p99_ms"] == 0.0
                assert entry["latency_ms"]["count"] > 0  # counts stay pinned


class TestValidator:
    @pytest.fixture()
    def valid(self, macro_smoke_run):
        return copy.deepcopy(macro_smoke_run[1])

    def test_accepts_real_summary(self, valid):
        assert validate_summary(valid) == []
        assert_valid(valid)  # must not raise

    def test_rejects_non_object(self):
        assert validate_summary([]) != []
        assert validate_summary(None) != []

    def test_rejects_missing_top_level_key(self, valid):
        del valid["workloads"]
        assert any("workloads" in p for p in validate_summary(valid))

    def test_rejects_wrong_schema_version(self, valid):
        valid["schema_version"] = "coskq-bench-macro/0"
        assert any("schema_version" in p for p in validate_summary(valid))

    def test_rejects_non_monotone_latency(self, valid):
        cell = next(w for w in valid["workloads"] if w["latency_ms"])
        cell["latency_ms"]["p50_ms"] = cell["latency_ms"]["p99_ms"] + 1.0
        cell["latency_ms"]["p95_ms"] = 0.0
        assert any("monotone" in p for p in validate_summary(valid))

    def test_rejects_duplicate_workload_ids(self, valid):
        valid["workloads"].append(copy.deepcopy(valid["workloads"][0]))
        valid["totals"]["queries"] += valid["workloads"][0]["queries"]
        assert any("duplicate workload id" in p for p in validate_summary(valid))

    def test_rejects_unknown_dataset_reference(self, valid):
        valid["workloads"][0]["dataset"] = "no-such-dataset"
        assert any("unknown dataset" in p for p in validate_summary(valid))

    def test_rejects_totals_query_mismatch(self, valid):
        valid["totals"]["queries"] += 1
        assert any("totals" in p for p in validate_summary(valid))

    def test_rejects_bool_masquerading_as_int(self, valid):
        valid["seed"] = True
        assert any("seed" in p for p in validate_summary(valid))

    def test_rejects_bad_workload_kind(self, valid):
        valid["workloads"][0]["kind"] = "mystery"
        assert any("kind" in p for p in validate_summary(valid))

    def test_assert_valid_raises_with_every_problem(self, valid):
        del valid["profile"]
        valid["schema_version"] = "nope"
        with pytest.raises(SummarySchemaError) as excinfo:
            assert_valid(valid)
        message = str(excinfo.value)
        assert "profile" in message and "schema_version" in message
