"""The adaptive planner stack: features, hardness model, plan execution.

Three layers under test (docs/ADAPTIVE.md):

- :func:`extract_features` reads what the engine already built, agrees
  with the inverted index, and fails exactly where a solver would;
- :class:`HardnessModel` round-trips through JSON byte-identically and
  trains deterministically from records;
- :class:`AdaptivePlanner` routes on the model's verdict, stamps the
  decision into execution provenance, and never changes answers — for
  either routing — versus the direct exact solver.
"""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AdaptivePlanner,
    HardnessModel,
    QueryFeatures,
    extract_features,
)
from repro.adaptive.model import FEATURE_NAMES
from repro.adaptive.planner import SeededStage
from repro.adaptive.train import (
    TrainingRecord,
    collect_records,
    evaluate_model,
    label_records,
    load_records,
    save_records,
    train_from_records,
)
from repro.algorithms.base import SearchContext
from repro.algorithms.registry import make_algorithm
from repro.errors import InfeasibleQueryError, InvalidParameterError
from repro.exec.fallback import ExecutionProvenance
from repro.exec.policy import Budget, ExecutionPolicy
from repro.model.query import Query


def force(hard: bool) -> HardnessModel:
    """A model that routes everything one way (sigmoid(±10) ≈ 1 / 0)."""
    return HardnessModel(weights={}, bias=10.0 if hard else -10.0)


class TestFeatures:
    def test_agrees_with_inverted_index(self, tiny_context, tiny_queries):
        inverted = tiny_context.inverted
        for query in tiny_queries:
            features = extract_features(tiny_context, query)
            frequencies = [
                inverted.document_frequency(t) for t in query.keywords
            ]
            assert features.num_keywords == len(query.keywords)
            assert features.min_selectivity == min(frequencies)
            assert features.max_selectivity == max(frequencies)
            assert features.mean_selectivity == pytest.approx(
                sum(frequencies) / len(frequencies)
            )
            carriers = set()
            for t in query.keywords:
                carriers.update(inverted.posting_list(t))
            assert features.relevant_universe == len(carriers)
            assert features.anchor_spread == pytest.approx(
                features.d_f - features.d_n
            )
            assert features.d_f >= features.d_n >= 0.0
            assert features.shard_fanout == 1

    def test_sharded_fanout(self, tiny_dataset, tiny_queries):
        from repro.shard import ShardedIndexFactory

        sharded = SearchContext(tiny_dataset, index_cls=ShardedIndexFactory(4))
        fanouts = [
            extract_features(sharded, q).shard_fanout for q in tiny_queries
        ]
        assert all(1 <= fanout <= 4 for fanout in fanouts)

    def test_infeasible_query_raises(self, tiny_context, tiny_dataset):
        missing = max(o for obj in tiny_dataset.objects for o in obj.keywords) + 7
        with pytest.raises(InfeasibleQueryError):
            extract_features(tiny_context, Query.create(1.0, 1.0, [missing]))

    def test_dict_round_trip(self, tiny_context, tiny_queries):
        features = extract_features(tiny_context, tiny_queries[0])
        assert QueryFeatures.from_dict(features.as_dict()) == features
        assert tuple(features.as_dict()) == FEATURE_NAMES


class TestHardnessModel:
    def test_json_round_trip_is_byte_identical(self):
        model = HardnessModel(
            weights={"num_keywords": 0.5, "d_f": -0.25},
            bias=1.5,
            standardize={"num_keywords": (4.0, 2.0)},
            threshold=0.4,
            meta={"source": "test"},
        )
        text = model.to_json()
        assert HardnessModel.from_json(text).to_json() == text

    def test_rejects_unknown_features_and_formats(self):
        with pytest.raises(InvalidParameterError):
            HardnessModel(weights={"no_such_feature": 1.0})
        with pytest.raises(InvalidParameterError):
            HardnessModel.from_dict({"format": "something-else"})

    def test_default_splits_easy_from_hard(self):
        model = HardnessModel.default()
        small = QueryFeatures(
            num_keywords=3, relevant_universe=30, min_selectivity=5,
            max_selectivity=15, mean_selectivity=10.0, d_f=2.0, d_n=1.0,
            anchor_spread=1.0, shard_fanout=1,
        )
        large = QueryFeatures(
            num_keywords=9, relevant_universe=600, min_selectivity=40,
            max_selectivity=90, mean_selectivity=70.0, d_f=9.0, d_n=1.0,
            anchor_spread=8.0, shard_fanout=1,
        )
        assert not model.predict_hard(small)
        assert model.predict_hard(large)
        assert 0.0 < model.predict_proba(small) < model.predict_proba(large) < 1.0

    def test_training_is_deterministic_and_learns(self, tiny_context, tiny_queries):
        rows = [extract_features(tiny_context, q) for q in tiny_queries]
        labels = [f.relevant_universe > 50 for f in rows]
        first = HardnessModel.train(rows, labels, epochs=150)
        second = HardnessModel.train(rows, labels, epochs=150)
        assert first.to_json() == second.to_json()
        agree = sum(
            first.predict_hard(f) == label for f, label in zip(rows, labels)
        )
        assert agree >= int(0.8 * len(rows))

    def test_train_validation(self):
        with pytest.raises(InvalidParameterError):
            HardnessModel.train([], [])


class TestTrainingLoop:
    def test_collect_label_fit_round_trip(self, tiny_context, tiny_queries, tmp_path):
        records = collect_records(tiny_context, tiny_queries, algorithm="maxsum-exact")
        assert len(records) == len(tiny_queries)
        path = tmp_path / "records.jsonl"
        save_records(str(path), records)
        assert load_records(str(path)) == records
        model = train_from_records(records, epochs=50)
        assert model.meta["source"] == "trained"
        assert model.meta["hard_ms"] > 0.0
        metrics = evaluate_model(model, records)
        assert metrics["samples"] == len(records)
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_aborted_records_label_hard(self, tiny_context, tiny_queries):
        features = extract_features(tiny_context, tiny_queries[0])
        records = [
            TrainingRecord(features, "maxsum-exact", 0.01, {}, aborted=True),
            TrainingRecord(features, "maxsum-exact", 5.0, {}),
            TrainingRecord(features, "maxsum-exact", 9.0, {}),
        ]
        _, labels, hard_ms = label_records(records)
        assert labels[0] is True  # aborted → hard despite tiny elapsed
        assert hard_ms == 5.0  # median


class TestAdaptivePlanner:
    @pytest.mark.parametrize("hard", [False, True])
    def test_routing_never_changes_answers(
        self, tiny_context, tiny_queries, hard
    ):
        planner = AdaptivePlanner(
            tiny_context, algorithm="maxsum-exact", model=force(hard)
        )
        exact = make_algorithm("maxsum-exact", tiny_context)
        for query in tiny_queries:
            planned = planner.solve(query)
            direct = exact.solve(query)
            assert planned.cost == direct.cost

    def test_provenance_carries_the_decision(self, tiny_context, tiny_queries):
        planner = AdaptivePlanner(
            tiny_context, algorithm="maxsum-exact", model=force(True)
        )
        result = planner.solve(tiny_queries[0])
        stamp = result.provenance
        assert isinstance(stamp, ExecutionProvenance)
        decision = stamp.planner
        assert decision["solver"] == "maxsum-exact"
        assert decision["seeder"] == "maxsum-appro"
        assert decision["hard"] is True
        assert decision["seed_cost"] is not None
        assert decision["hardness"] > 0.99
        assert QueryFeatures.from_dict(decision["features"]).num_keywords == len(
            tiny_queries[0].keywords
        )

    def test_easy_plan_skips_seeding(self, tiny_context, tiny_queries):
        planner = AdaptivePlanner(
            tiny_context, algorithm="maxsum-exact", model=force(False)
        )
        decision = planner.solve(tiny_queries[0]).provenance.planner
        assert decision["hard"] is False
        assert decision["seeder"] is None
        assert decision["seed_cost"] is None

    def test_unseedable_algorithm_never_plans_hard(self, tiny_context, tiny_queries):
        # bruteforce has no appro counterpart: hard routing is impossible.
        planner = AdaptivePlanner(
            tiny_context, algorithm="bruteforce", model=force(True)
        )
        decision = planner.solve(tiny_queries[0]).provenance.planner
        assert decision["hard"] is False

    def test_deadline_policy_still_answers(self, tiny_context, tiny_queries):
        planner = AdaptivePlanner(
            tiny_context,
            algorithm="maxsum-exact",
            model=force(True),
            policy=ExecutionPolicy(deadline_ms=10_000.0, always_answer=True),
        )
        result = planner.solve(tiny_queries[0])
        assert result.is_feasible_for(tiny_queries[0])


class TestSeededStage:
    def test_starved_seeder_falls_back_to_unseeded(self, tiny_context, tiny_queries):
        appro = make_algorithm("maxsum-appro", tiny_context)
        exact = make_algorithm("maxsum-exact", tiny_context)
        stage = SeededStage(appro, exact, seed_fraction=1e-9)
        stage.budget = Budget(work_limit=10**6, checkpoint_interval=1)
        query = tiny_queries[0]
        try:
            result = stage.solve(query)
        finally:
            stage.budget = None
        # The split hands the seeding pass a 1-unit sub-budget, so it
        # aborts immediately; the exact pass still answers within the
        # (ample) attempt budget.
        assert stage.last_seed_cost is None
        assert result.is_feasible_for(query)

    def test_seed_counters_merge(self, tiny_context, tiny_queries):
        appro = make_algorithm("maxsum-appro", tiny_context)
        exact = make_algorithm("maxsum-exact", tiny_context)
        stage = SeededStage(appro, exact)
        result = stage.solve(tiny_queries[0])
        assert stage.last_seed_cost is not None
        assert result.counters.get("seed_runs") == 1


class TestSolverSpecAdaptive:
    def test_build_and_label(self, tiny_context):
        from repro.parallel import SolverSpec

        spec = SolverSpec(algorithm="maxsum-exact", adaptive=True)
        assert spec.label == "adaptive[maxsum-exact]"
        assert isinstance(spec.build(tiny_context), AdaptivePlanner)

    def test_model_json_travels_in_the_spec(self, tiny_context):
        from repro.parallel import SolverSpec

        spec = SolverSpec(
            algorithm="maxsum-exact",
            adaptive=True,
            model_json=force(False).to_json(),
        )
        planner = spec.build(tiny_context)
        assert planner.model.bias == -10.0

    def test_validation(self):
        from repro.parallel import SolverSpec

        with pytest.raises(InvalidParameterError):
            SolverSpec(adaptive=True, chain="maxsum-exact,maxsum-appro")
        with pytest.raises(InvalidParameterError):
            SolverSpec(model_json="{}")

    def test_parallel_batch_matches_serial(self, tiny_dataset, tiny_queries):
        from repro.exec.batch import BatchExecutor
        from repro.parallel import ParallelBatchExecutor, SolverSpec, WorkerEnv

        spec = SolverSpec(algorithm="maxsum-exact", adaptive=True)
        serial = BatchExecutor(spec.build(SearchContext(tiny_dataset)))
        serial_report = serial.run(tiny_queries[:6])
        env = WorkerEnv(dataset=tiny_dataset)
        with ParallelBatchExecutor(env, spec, workers=2) as engine:
            parallel_report = engine.run(tiny_queries[:6])
        assert serial_report.ok() and parallel_report.ok()
        assert [r.cost for r in serial_report.results] == [
            r.cost for r in parallel_report.results
        ]
