"""Tests for the paper-style query workload generator."""

import itertools

import pytest

from repro.data.generators import uniform_dataset
from repro.data.queries import QueryWorkload, generate_queries
from repro.errors import InvalidParameterError
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def ds():
    return uniform_dataset(500, 60, mean_keywords=3.0, seed=31)


class TestValidation:
    def test_bad_percentiles(self, ds):
        with pytest.raises(InvalidParameterError):
            QueryWorkload(ds, 3, percentile_range=(0.4, 0.4))
        with pytest.raises(InvalidParameterError):
            QueryWorkload(ds, 3, percentile_range=(-0.1, 0.4))
        with pytest.raises(InvalidParameterError):
            QueryWorkload(ds, 3, percentile_range=(0.0, 1.1))

    def test_needs_a_keyword(self, ds):
        with pytest.raises(InvalidParameterError):
            QueryWorkload(ds, 0)

    def test_band_too_small(self, ds):
        with pytest.raises(InvalidParameterError):
            QueryWorkload(ds, 50, percentile_range=(0.0, 0.01)).generate(1)


class TestGeneration:
    def test_count_and_size(self, ds):
        queries = generate_queries(ds, 5, 12, seed=1)
        assert len(queries) == 12
        assert all(q.size == 5 for q in queries)

    def test_locations_inside_mbr(self, ds):
        rect = ds.mbr()
        for q in generate_queries(ds, 3, 20, seed=2):
            assert rect.contains_point(q.location)

    def test_keywords_from_percentile_band(self, ds):
        ranked = ds.keywords_by_frequency()
        band = set(ranked[: max(1, int(0.4 * len(ranked)))])
        for q in generate_queries(ds, 3, 20, seed=3):
            assert q.keywords <= band

    def test_queries_always_coverable(self, ds):
        inverted = InvertedIndex(ds)
        for q in generate_queries(ds, 6, 20, seed=4):
            assert not inverted.missing_keywords(q.keywords)

    def test_determinism(self, ds):
        a = generate_queries(ds, 3, 10, seed=5)
        b = generate_queries(ds, 3, 10, seed=5)
        assert [(q.location, q.keywords) for q in a] == [
            (q.location, q.keywords) for q in b
        ]

    def test_different_seeds_differ(self, ds):
        a = generate_queries(ds, 3, 10, seed=5)
        b = generate_queries(ds, 3, 10, seed=6)
        assert [(q.location, q.keywords) for q in a] != [
            (q.location, q.keywords) for q in b
        ]

    def test_iterator_protocol_matches_generate(self, ds):
        workload = QueryWorkload(ds, 4, seed=8)
        streamed = list(itertools.islice(iter(workload), 5))
        generated = workload.generate(5)
        assert [(q.location, q.keywords) for q in streamed] == [
            (q.location, q.keywords) for q in generated
        ]

    def test_custom_band(self, ds):
        ranked = ds.keywords_by_frequency()
        lo, hi = 0.5, 0.9
        band = set(ranked[int(lo * len(ranked)) : int(hi * len(ranked))])
        for q in generate_queries(ds, 2, 10, percentile_range=(lo, hi), seed=9):
            assert q.keywords <= band
