"""Property-based checks of cost-function algebra (hypothesis).

Two families of invariants:

1. **MaxSum/Dia sandwich.**  Writing ``a = max d(o,q)`` and
   ``b = diam(S)``, the implementation evaluates MaxSum as
   ``0.5·a + 0.5·b`` (α = 0.5) and Dia as ``max(a, b)``, so for every
   feasible set ``maxsum(S) ≤ dia(S) ≤ 2·maxsum(S)`` — the unweighted
   paper form's ``dia ≤ maxsum ≤ 2·dia`` scaled by the α = 0.5 factor.
2. **minimal_subset safety.**  Pruning keyword-redundant objects keeps
   the set feasible and never increases a monotone cost.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.base import minimal_subset
from repro.cost.functions import DiaCost, MaxSumCost
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.utils.floatcmp import EPSILON, float_leq

COORD = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
KEYWORD_IDS = st.sets(st.integers(min_value=0, max_value=6), min_size=1, max_size=3)


@st.composite
def feasible_instance(draw):
    """A query plus a set of objects that collectively cover it.

    Built per-keyword: every query keyword gets at least one carrier
    object, so feasibility holds by construction.
    """
    query_keywords = draw(st.sets(st.integers(0, 6), min_size=1, max_size=4))
    query = Query.create(draw(COORD), draw(COORD), query_keywords)
    objects = []
    for oid, keyword in enumerate(sorted(query_keywords)):
        extra = draw(KEYWORD_IDS)
        objects.append(
            SpatialObject.create(
                oid, draw(COORD), draw(COORD), {keyword} | extra
            )
        )
    # A few redundant extras exercise the pruning path.
    for oid in range(len(objects), len(objects) + draw(st.integers(0, 3))):
        objects.append(
            SpatialObject.create(oid, draw(COORD), draw(COORD), draw(KEYWORD_IDS))
        )
    return query, objects


def covered(objects):
    keywords: set = set()
    for obj in objects:
        keywords |= obj.keywords
    return keywords


class TestMaxSumDiaSandwich:
    @given(feasible_instance())
    def test_maxsum_at_most_dia(self, instance):
        query, objects = instance
        maxsum = MaxSumCost().evaluate(query, objects)
        dia = DiaCost().evaluate(query, objects)
        assert float_leq(maxsum, dia)

    @given(feasible_instance())
    def test_dia_at_most_twice_maxsum(self, instance):
        query, objects = instance
        maxsum = MaxSumCost().evaluate(query, objects)
        dia = DiaCost().evaluate(query, objects)
        assert float_leq(dia, 2.0 * maxsum)

    @given(feasible_instance())
    def test_costs_nonnegative(self, instance):
        query, objects = instance
        assert MaxSumCost().evaluate(query, objects) >= -EPSILON
        assert DiaCost().evaluate(query, objects) >= -EPSILON

    @given(feasible_instance())
    def test_single_object_costs_agree(self, instance):
        # With |S| = 1 the diameter is 0, so dia = d(o,q) and
        # maxsum = 0.5·d(o,q): the sandwich is tight at the upper end.
        query, objects = instance
        solo = objects[:1]
        maxsum = MaxSumCost().evaluate(query, solo)
        dia = DiaCost().evaluate(query, solo)
        assert float_leq(dia, 2.0 * maxsum) and float_leq(2.0 * maxsum, dia)


class TestMinimalSubset:
    @given(feasible_instance())
    def test_stays_feasible(self, instance):
        query, objects = instance
        pruned = minimal_subset(query, objects)
        assert pruned
        assert query.keywords <= covered(pruned)

    @given(feasible_instance())
    def test_is_subset_of_input(self, instance):
        query, objects = instance
        pruned = minimal_subset(query, objects)
        oids = {obj.oid for obj in objects}
        assert {obj.oid for obj in pruned} <= oids

    @given(feasible_instance())
    def test_never_costlier_under_maxsum(self, instance):
        query, objects = instance
        pruned = minimal_subset(query, objects)
        before = MaxSumCost().evaluate(query, objects)
        after = MaxSumCost().evaluate(query, pruned)
        assert float_leq(after, before)

    @given(feasible_instance())
    def test_never_costlier_under_dia(self, instance):
        query, objects = instance
        pruned = minimal_subset(query, objects)
        before = DiaCost().evaluate(query, objects)
        after = DiaCost().evaluate(query, pruned)
        assert float_leq(after, before)

    @given(feasible_instance())
    def test_idempotent(self, instance):
        query, objects = instance
        once = minimal_subset(query, objects)
        twice = minimal_subset(query, once)
        assert {obj.oid for obj in twice} == {obj.oid for obj in once}
