"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file exists so the legacy
(non-PEP-517) editable install path works in offline environments.
"""

from setuptools import setup

setup()
