"""Deterministic random-number plumbing.

All generators and workloads take explicit seeds so every experiment is
reproducible; this module centralizes how seeds become `random.Random`
streams and how independent substreams are derived.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "substream"]


def make_rng(seed: int | None) -> random.Random:
    """A fresh `random.Random` for ``seed`` (system entropy when None)."""
    return random.Random(seed)


def substream(seed: int, label: str) -> random.Random:
    """An independent stream derived from ``(seed, label)``.

    Deriving named substreams (rather than sharing one stream) keeps a
    generator's spatial draw stable when only its textual draw changes,
    which makes A/B comparisons between dataset variants meaningful.
    """
    derived = random.Random()
    derived.seed("%d/%s" % (seed, label))
    return derived
