"""Shared float-comparison helpers — the repo's R3 contract.

Distances and costs in this codebase are floats assembled from square
roots and weighted sums, so exact ``==``/``!=`` between them is a bug
magnet: two mathematically equal costs routinely differ in the last ulp
depending on evaluation order.  The static-analysis rule R3 (see
``docs/STATIC_ANALYSIS.md``) bans direct float equality in the distance
and cost layers; these helpers are the sanctioned replacement, so every
tolerance decision lives in one place.
"""

from __future__ import annotations

import math

__all__ = [
    "EPSILON",
    "float_eq",
    "float_ne",
    "float_leq",
    "float_geq",
    "is_zero",
]

#: Default tolerance, used both relatively and absolutely.  Coordinates
#: live in the unit square, so absolute and relative scales coincide.
EPSILON = 1e-9


def float_eq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Tolerant equality for distances/costs (relative *or* absolute)."""
    return math.isclose(a, b, rel_tol=eps, abs_tol=eps)


def float_ne(a: float, b: float, eps: float = EPSILON) -> bool:
    """Tolerant inequality: the negation of :func:`float_eq`."""
    return not float_eq(a, b, eps)


def float_leq(a: float, b: float, eps: float = EPSILON) -> bool:
    """``a ≤ b`` up to tolerance (true when the values are ε-equal)."""
    return a <= b or float_eq(a, b, eps)


def float_geq(a: float, b: float, eps: float = EPSILON) -> bool:
    """``a ≥ b`` up to tolerance (true when the values are ε-equal)."""
    return b <= a or float_eq(a, b, eps)


def is_zero(value: float, eps: float = EPSILON) -> bool:
    """Whether a distance-like value is zero up to tolerance."""
    return abs(value) <= eps
