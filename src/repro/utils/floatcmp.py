"""Shared float-comparison helpers — the repo's R3 contract.

Distances and costs in this codebase are floats assembled from square
roots and weighted sums, so exact ``==``/``!=`` between them is a bug
magnet: two mathematically equal costs routinely differ in the last ulp
depending on evaluation order.  The static-analysis rule R3 (see
``docs/STATIC_ANALYSIS.md``) bans direct float equality in the distance
and cost layers; these helpers are the sanctioned replacement, so every
tolerance decision lives in one place.
"""

from __future__ import annotations

import math

__all__ = [
    "EPSILON",
    "PRUNE_REL_SLACK",
    "PRUNE_ABS_SLACK",
    "float_eq",
    "float_ne",
    "float_leq",
    "float_geq",
    "is_zero",
    "prune_cutoff",
]

#: Default tolerance, used both relatively and absolutely.  Coordinates
#: live in the unit square, so absolute and relative scales coincide.
EPSILON = 1e-9

#: Relative + absolute slack applied to an *externally supplied* cost
#: bound before it is used in a ``>=``-style pruning comparison (the
#: shard engine's bound rule, the seeded exact searches).  A feasible
#: solution whose cost equals the bound exactly then stays strictly
#: below the cutoff and is explored rather than pruned — which is what
#: makes seeded and unseeded runs return bit-identical costs even when
#: the seed already is the optimum.
PRUNE_REL_SLACK = 1e-9
PRUNE_ABS_SLACK = 1e-12


def float_eq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Tolerant equality for distances/costs (relative *or* absolute)."""
    return math.isclose(a, b, rel_tol=eps, abs_tol=eps)


def float_ne(a: float, b: float, eps: float = EPSILON) -> bool:
    """Tolerant inequality: the negation of :func:`float_eq`."""
    return not float_eq(a, b, eps)


def float_leq(a: float, b: float, eps: float = EPSILON) -> bool:
    """``a ≤ b`` up to tolerance (true when the values are ε-equal)."""
    return a <= b or float_eq(a, b, eps)


def float_geq(a: float, b: float, eps: float = EPSILON) -> bool:
    """``a ≥ b`` up to tolerance (true when the values are ε-equal)."""
    return b <= a or float_eq(a, b, eps)


def is_zero(value: float, eps: float = EPSILON) -> bool:
    """Whether a distance-like value is zero up to tolerance."""
    return abs(value) <= eps


def prune_cutoff(bound: float) -> float:
    """The slacked pruning threshold for an external cost bound.

    ``bound`` must be the cost of some *feasible* solution (hence an
    upper bound on the optimum).  Search-state prunes of the form
    ``candidate_lower_bound >= cutoff`` are then sound *and* identity
    preserving: every set costing at most ``bound`` — the optimum in
    particular — stays strictly below the cutoff, so it is still
    explored, while anything provably above the bound is cut.  The
    slack also absorbs last-ulp float noise in bound arithmetic (same
    constants the sharded scatter-gather engine has always used for its
    bound rule).
    """
    if math.isinf(bound):
        return bound
    return bound * (1.0 + PRUNE_REL_SLACK) + PRUNE_ABS_SLACK
