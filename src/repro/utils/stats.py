"""Small numeric helpers shared by the harness and the analyses."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["harmonic_number", "Summary", "summarize", "percentile"]


def harmonic_number(k: int) -> float:
    """``H_k = 1 + 1/2 + … + 1/k`` (0 for k ≤ 0).

    The greedy weighted-set-cover approximation for the Sum cost carries
    an ``H_{|q.ψ|}`` guarantee; the ratio tests use this.
    """
    if k <= 0:
        return 0.0
    return sum(1.0 / i for i in range(1, k + 1))


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rank = min(len(sorted_values) - 1, int(math.ceil(fraction * len(sorted_values))) - 1)
    return sorted_values[max(rank, 0)]


@dataclass(frozen=True, slots=True)
class Summary:
    """Average / min / max / count of a sample.

    The paper reports approximation ratios as (average, minimum, maximum)
    bar charts; this is that triple plus the sample size.
    """

    mean: float
    minimum: float
    maximum: float
    count: int

    def as_row(self) -> dict:
        return {
            "avg": round(self.mean, 6),
            "min": round(self.minimum, 6),
            "max": round(self.maximum, 6),
            "n": self.count,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    data: List[float] = list(values)
    if not data:
        raise ValueError("summarize() of an empty sample")
    return Summary(
        mean=sum(data) / len(data),
        minimum=min(data),
        maximum=max(data),
        count=len(data),
    )
