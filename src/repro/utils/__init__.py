"""Shared numeric and randomness helpers."""

from repro.utils.floatcmp import (
    EPSILON,
    float_eq,
    float_geq,
    float_leq,
    float_ne,
    is_zero,
)
from repro.utils.rng import make_rng, substream
from repro.utils.stats import Summary, harmonic_number, percentile, summarize

__all__ = [
    "EPSILON",
    "float_eq",
    "float_ne",
    "float_leq",
    "float_geq",
    "is_zero",
    "make_rng",
    "substream",
    "harmonic_number",
    "percentile",
    "Summary",
    "summarize",
]
