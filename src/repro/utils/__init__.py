"""Shared numeric and randomness helpers."""

from repro.utils.rng import make_rng, substream
from repro.utils.stats import Summary, harmonic_number, percentile, summarize

__all__ = [
    "make_rng",
    "substream",
    "harmonic_number",
    "percentile",
    "Summary",
    "summarize",
]
