"""CoSKQ — collective spatial keyword queries, distance owner-driven.

A from-scratch reproduction of *"Collective Spatial Keyword Queries: A
Distance Owner-Driven Approach"* (Long, Wong, Wang, Fu — SIGMOD 2013):
the CoSKQ problem over geo-textual objects, the MaxSum and Dia cost
functions, the distance owner-driven exact and approximate algorithms,
the Cao et al. baselines, the IR-tree substrate they all run on, and the
paper's full experiment suite.

Quickstart::

    from repro import (
        hotel_like, SearchContext, Query, MaxSumExact, MaxSumAppro,
    )

    dataset = hotel_like(scale=0.1, seed=1)
    context = SearchContext(dataset)
    query = Query.from_words(500.0, 500.0, ["w0001", "w0002", "w0003"],
                             dataset.vocabulary)
    print(MaxSumExact(context).solve(query))
    print(MaxSumAppro(context).solve(query))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.algorithms import (
    ALGORITHM_NAMES,
    BranchBoundExact,
    BruteForceExact,
    CaoAppro1,
    CaoAppro2,
    CaoExact,
    CoSKQAlgorithm,
    DiaAppro,
    DiaExact,
    MaxSumAppro,
    MaxSumExact,
    NNSetAlgorithm,
    OwnerDrivenExact,
    OwnerRingApproximation,
    SearchContext,
    SumExact,
    SumGreedy,
    TopKCoSKQ,
    UnifiedAppro,
    UnifiedExact,
    make_algorithm,
)
from repro.cost import (
    ALL_COSTS,
    CostFunction,
    DiaCost,
    MaxSumCost,
    SumCost,
    UnifiedCost,
    cost_by_name,
)
from repro.data import (
    QueryWorkload,
    clustered_dataset,
    densify_keywords,
    generate_queries,
    gn_like,
    hotel_like,
    scale_dataset,
    uniform_dataset,
    web_like,
)
from repro.errors import (
    BudgetExceededError,
    CoSKQError,
    DatasetFormatError,
    DeadlineExceededError,
    ExecutionError,
    ExecutionFailedError,
    InfeasibleQueryError,
    InjectedFaultError,
    InvalidParameterError,
    SearchAbortedError,
    UnknownKeywordError,
)
from repro.exec import (
    BatchExecutor,
    ChaosIndex,
    ExecutionPolicy,
    ExecutionProvenance,
    FallbackChain,
    FaultPlan,
    ResilientExecutor,
    chaos_context,
)
from repro.geometry import MBR, Circle, Point
from repro.index import InvertedIndex, IRTree, LinearScanIndex, RTree
from repro.model import CoSKQResult, Dataset, Query, SpatialObject, Vocabulary

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Point",
    "MBR",
    "Circle",
    "SpatialObject",
    "Vocabulary",
    "Dataset",
    "Query",
    "CoSKQResult",
    # indexes
    "RTree",
    "IRTree",
    "InvertedIndex",
    "LinearScanIndex",
    # costs
    "CostFunction",
    "MaxSumCost",
    "DiaCost",
    "SumCost",
    "UnifiedCost",
    "cost_by_name",
    "ALL_COSTS",
    # algorithms
    "SearchContext",
    "CoSKQAlgorithm",
    "MaxSumExact",
    "MaxSumAppro",
    "DiaExact",
    "DiaAppro",
    "OwnerDrivenExact",
    "OwnerRingApproximation",
    "CaoExact",
    "CaoAppro1",
    "CaoAppro2",
    "BranchBoundExact",
    "NNSetAlgorithm",
    "SumExact",
    "SumGreedy",
    "TopKCoSKQ",
    "UnifiedExact",
    "UnifiedAppro",
    "BruteForceExact",
    "make_algorithm",
    "ALGORITHM_NAMES",
    # data
    "uniform_dataset",
    "clustered_dataset",
    "hotel_like",
    "gn_like",
    "web_like",
    "generate_queries",
    "QueryWorkload",
    "scale_dataset",
    "densify_keywords",
    # errors
    "CoSKQError",
    "InfeasibleQueryError",
    "UnknownKeywordError",
    "DatasetFormatError",
    "InvalidParameterError",
    "ExecutionError",
    "SearchAbortedError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "InjectedFaultError",
    "ExecutionFailedError",
    # resilient execution
    "ExecutionPolicy",
    "FallbackChain",
    "ResilientExecutor",
    "ExecutionProvenance",
    "BatchExecutor",
    "FaultPlan",
    "ChaosIndex",
    "chaos_context",
]
