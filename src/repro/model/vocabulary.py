"""Keyword interning: string keywords ⇄ dense integer ids.

Every structure downstream (objects, inverted lists, IR-tree node keyword
sets, query keyword sets) works on small integers instead of strings, so a
dataset carries one :class:`Vocabulary` translating between the two
worlds.  Ids are assigned densely in first-seen order, which keeps them
usable as list indexes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.errors import UnknownKeywordError

__all__ = ["Vocabulary"]


class Vocabulary:
    """A bidirectional keyword ⇄ id mapping with dense ids."""

    __slots__ = ("_word_to_id", "_id_to_word")

    def __init__(self, words: Iterable[str] = ()):
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        for word in words:
            self.add(word)

    def add(self, word: str) -> int:
        """Intern ``word`` and return its id (existing id if already known)."""
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        new_id = len(self._id_to_word)
        self._word_to_id[word] = new_id
        self._id_to_word.append(word)
        return new_id

    def add_all(self, words: Iterable[str]) -> List[int]:
        """Intern many words, returning their ids in order."""
        return [self.add(w) for w in words]

    def id_of(self, word: str) -> int:
        """The id of a known word; raises :class:`UnknownKeywordError`."""
        try:
            return self._word_to_id[word]
        except KeyError:
            raise UnknownKeywordError(word) from None

    def word_of(self, keyword_id: int) -> str:
        """The word for a known id; raises :class:`UnknownKeywordError`."""
        if 0 <= keyword_id < len(self._id_to_word):
            return self._id_to_word[keyword_id]
        raise UnknownKeywordError(str(keyword_id))

    def ids_of(self, words: Iterable[str]) -> frozenset[int]:
        """Ids of many known words as a frozenset."""
        return frozenset(self.id_of(w) for w in words)

    def words_of(self, keyword_ids: Iterable[int]) -> frozenset[str]:
        """Words of many known ids as a frozenset."""
        return frozenset(self.word_of(k) for k in keyword_ids)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._id_to_word == other._id_to_word

    def __repr__(self) -> str:
        return "Vocabulary(%d words)" % len(self)
