"""The CoSKQ query: a location plus a set of query keyword ids.

A query in the paper is ``q = (q.λ, q.ψ)``.  Queries here always carry
keyword *ids*; use :meth:`Query.from_words` to build one from strings
against a dataset's vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.errors import InvalidParameterError
from repro.geometry.point import Point
from repro.model.vocabulary import Vocabulary

__all__ = ["Query"]


@dataclass(frozen=True, slots=True)
class Query:
    """A collective spatial keyword query."""

    location: Point
    keywords: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.keywords:
            raise InvalidParameterError("a CoSKQ query needs at least one keyword")

    @staticmethod
    def create(x: float, y: float, keywords: Iterable[int]) -> "Query":
        """Build a query from raw coordinates and keyword ids."""
        return Query(Point(x, y), frozenset(keywords))

    @staticmethod
    def from_words(
        x: float, y: float, words: Iterable[str], vocabulary: Vocabulary
    ) -> "Query":
        """Build a query from keyword strings via ``vocabulary``.

        Raises :class:`~repro.errors.UnknownKeywordError` for words absent
        from the vocabulary — such a query would be trivially infeasible.
        """
        return Query(Point(x, y), vocabulary.ids_of(words))

    @property
    def size(self) -> int:
        """``|q.ψ|`` — the number of query keywords."""
        return len(self.keywords)

    def distance_to(self, p: Point) -> float:
        """Euclidean distance from the query location to ``p``."""
        return self.location.distance_to(p)
