"""Data model: vocabularies, objects, datasets, queries and results."""

from repro.model.dataset import Dataset, DatasetStatistics
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.model.vocabulary import Vocabulary

__all__ = [
    "Vocabulary",
    "SpatialObject",
    "Dataset",
    "DatasetStatistics",
    "Query",
    "CoSKQResult",
]
