"""Results returned by CoSKQ algorithms.

A :class:`CoSKQResult` pairs the selected object set with the cost it was
scored at, plus light provenance (algorithm name, counters useful for the
ablation benchmarks).  Results validate their own feasibility so tests and
the benchmark harness can assert correctness uniformly.

The optional ``provenance`` slot carries execution provenance when the
result came through the resilience runtime (see
:class:`repro.exec.ExecutionProvenance`): which solver answered, why
stronger solvers failed, and the guaranteed approximation ratio of the
answer.  It is typed loosely here so the model layer stays independent of
:mod:`repro.exec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["CoSKQResult"]


@dataclass(frozen=True)
class CoSKQResult:
    """The outcome of running a CoSKQ algorithm on one query."""

    objects: Tuple[SpatialObject, ...]
    cost: float
    algorithm: str
    counters: Dict[str, int] = field(default_factory=dict)
    #: Execution provenance stamped by the resilience runtime (an
    #: ``repro.exec.ExecutionProvenance``), or None for direct solves.
    provenance: Optional[object] = None

    @staticmethod
    def of(
        objects: Iterable[SpatialObject],
        cost: float,
        algorithm: str,
        counters: Dict[str, int] | None = None,
    ) -> "CoSKQResult":
        """Build a result with objects ordered deterministically by oid."""
        ordered = tuple(sorted(objects, key=lambda o: o.oid))
        return CoSKQResult(ordered, cost, algorithm, counters or {})

    def with_provenance(self, provenance: object) -> "CoSKQResult":
        """A copy of this result stamped with execution provenance."""
        return replace(self, provenance=provenance)

    @property
    def object_ids(self) -> Tuple[int, ...]:
        return tuple(o.oid for o in self.objects)

    def covered_keywords(self) -> FrozenSet[int]:
        """Union of the keyword sets of the selected objects."""
        covered: set[int] = set()
        for obj in self.objects:
            covered.update(obj.keywords)
        return frozenset(covered)

    def is_feasible_for(self, query: Query) -> bool:
        """Whether the selected set covers every query keyword."""
        return query.keywords <= self.covered_keywords()

    def __len__(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:
        return "CoSKQResult(%s, cost=%.6g, objects=%s)" % (
            self.algorithm,
            self.cost,
            list(self.object_ids),
        )
