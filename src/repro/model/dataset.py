"""Datasets: an object collection, its vocabulary and its statistics.

A :class:`Dataset` is the unit the rest of the library operates on — the
indexes are built over one, the generators produce one, the benchmark
harness sweeps over several.  A simple line-oriented text format
(``x<TAB>y<TAB>word word ...``) supports saving/loading so experiments are
repeatable without regenerating data.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence

from repro.errors import DatasetFormatError
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.model.objects import SpatialObject
from repro.model.vocabulary import Vocabulary

__all__ = ["Dataset", "DatasetStatistics"]


@dataclass(frozen=True, slots=True)
class DatasetStatistics:
    """The dataset statistics reported in the paper's Table 1."""

    num_objects: int
    num_unique_words: int
    num_words: int
    avg_keywords_per_object: float

    def as_row(self) -> Dict[str, float]:
        """The statistics as a flat dict (for report tables)."""
        return {
            "objects": self.num_objects,
            "unique_words": self.num_unique_words,
            "words": self.num_words,
            "avg_obj_keywords": round(self.avg_keywords_per_object, 3),
        }


class Dataset:
    """An immutable-after-construction collection of geo-textual objects."""

    __slots__ = ("name", "objects", "vocabulary", "_mbr")

    def __init__(
        self,
        objects: Sequence[SpatialObject],
        vocabulary: Vocabulary,
        name: str = "dataset",
    ):
        self.name = name
        self.objects: List[SpatialObject] = list(objects)
        self.vocabulary = vocabulary
        self._mbr: MBR | None = None
        for expected_oid, obj in enumerate(self.objects):
            if obj.oid != expected_oid:
                raise DatasetFormatError(
                    "object ids must be dense and ordered; found oid %d at "
                    "position %d" % (obj.oid, expected_oid)
                )

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def from_records(
        records: Iterable[tuple[float, float, Iterable[str]]],
        name: str = "dataset",
    ) -> "Dataset":
        """Build a dataset from ``(x, y, words)`` records, interning words."""
        vocabulary = Vocabulary()
        objects: List[SpatialObject] = []
        for oid, (x, y, words) in enumerate(records):
            keyword_ids = frozenset(vocabulary.add(w) for w in words)
            objects.append(SpatialObject(oid, Point(x, y), keyword_ids))
        return Dataset(objects, vocabulary, name=name)

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self.objects)

    def __getitem__(self, oid: int) -> SpatialObject:
        return self.objects[oid]

    def __repr__(self) -> str:
        return "Dataset(%r, %d objects, %d words)" % (
            self.name,
            len(self.objects),
            len(self.vocabulary),
        )

    # -- derived data ----------------------------------------------------------

    def mbr(self) -> MBR:
        """The bounding rectangle of all object locations (cached)."""
        if self._mbr is None:
            if not self.objects:
                raise DatasetFormatError("empty dataset has no MBR")
            self._mbr = MBR.from_points(o.location for o in self.objects)
        return self._mbr

    def keyword_frequencies(self) -> Dict[int, int]:
        """Map keyword id → number of objects carrying it."""
        freq: Dict[int, int] = {}
        for obj in self.objects:
            for k in obj.keywords:
                freq[k] = freq.get(k, 0) + 1
        return freq

    def keywords_by_frequency(self) -> List[int]:
        """Keyword ids sorted by descending document frequency.

        Ties broken by id so the order is deterministic; the paper's query
        generator samples keywords from percentile ranges of this ranking.
        """
        freq = self.keyword_frequencies()
        return sorted(freq, key=lambda k: (-freq[k], k))

    def statistics(self) -> DatasetStatistics:
        """Table-1 style statistics of this dataset."""
        num_words = sum(len(o.keywords) for o in self.objects)
        used_words = set()
        for obj in self.objects:
            used_words.update(obj.keywords)
        n = len(self.objects)
        return DatasetStatistics(
            num_objects=n,
            num_unique_words=len(used_words),
            num_words=num_words,
            avg_keywords_per_object=(num_words / n) if n else 0.0,
        )

    # -- serialization -----------------------------------------------------

    def dump(self, stream: io.TextIOBase) -> None:
        """Write the dataset in the line-oriented text format."""
        for obj in self.objects:
            words = sorted(self.vocabulary.word_of(k) for k in obj.keywords)
            stream.write(
                "%r\t%r\t%s\n" % (obj.location.x, obj.location.y, " ".join(words))
            )

    def save(self, path: str | Path) -> None:
        """Write the dataset to ``path`` in the text format."""
        with open(path, "w", encoding="utf-8") as f:
            self.dump(f)

    @staticmethod
    def parse(stream: Iterable[str], name: str = "dataset") -> "Dataset":
        """Read a dataset from lines in the text format."""

        def records() -> Iterator[tuple[float, float, List[str]]]:
            for lineno, line in enumerate(stream, start=1):
                line = line.rstrip("\n")
                if not line or line.startswith("#"):
                    continue
                parts = line.split("\t")
                if len(parts) != 3:
                    raise DatasetFormatError(
                        "line %d: expected 3 tab-separated fields, got %d"
                        % (lineno, len(parts))
                    )
                try:
                    x = float(parts[0])
                    y = float(parts[1])
                except ValueError as exc:
                    raise DatasetFormatError(
                        "line %d: bad coordinates: %s" % (lineno, exc)
                    ) from exc
                words = [w for w in parts[2].split(" ") if w]
                if not words:
                    raise DatasetFormatError("line %d: object has no keywords" % lineno)
                yield (x, y, words)

        return Dataset.from_records(records(), name=name)

    @staticmethod
    def load(path: str | Path, name: str | None = None) -> "Dataset":
        """Read a dataset from the text file at ``path``."""
        path = Path(path)
        with open(path, "r", encoding="utf-8") as f:
            return Dataset.parse(f, name=name if name is not None else path.stem)
