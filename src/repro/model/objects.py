"""The geo-textual object: a location plus a set of keyword ids.

In the paper's notation an object ``o ∈ O`` has a spatial location
``o.λ`` and a keyword set ``o.ψ``; :class:`SpatialObject` carries both
(attributes ``location`` and ``keywords``) plus a stable integer id used
by the indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.geometry.point import Point

__all__ = ["SpatialObject"]


@dataclass(frozen=True, slots=True)
class SpatialObject:
    """One geo-textual object.

    ``oid``
        Dense integer id, unique within its dataset.
    ``location``
        The spatial location ``o.λ``.
    ``keywords``
        The keyword-id set ``o.ψ`` (interned through the dataset's
        :class:`~repro.model.vocabulary.Vocabulary`).
    """

    oid: int
    location: Point
    keywords: FrozenSet[int]

    @staticmethod
    def create(oid: int, x: float, y: float, keywords: Iterable[int]) -> "SpatialObject":
        """Convenience constructor from raw coordinates and keyword ids."""
        return SpatialObject(oid, Point(x, y), frozenset(keywords))

    def covers_any(self, keyword_ids: FrozenSet[int]) -> bool:
        """Whether this object carries at least one of ``keyword_ids``.

        An object with this property is a *relevant object* for a query
        whose keyword set is ``keyword_ids``.
        """
        return not self.keywords.isdisjoint(keyword_ids)

    def covered(self, keyword_ids: FrozenSet[int]) -> FrozenSet[int]:
        """The subset of ``keyword_ids`` this object carries."""
        return self.keywords & keyword_ids

    def distance_to(self, other: "SpatialObject") -> float:
        """Euclidean distance between the two object locations."""
        return self.location.distance_to(other.location)

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from this object's location to ``p``."""
        return self.location.distance_to(p)

    def __hash__(self) -> int:
        return hash(self.oid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpatialObject):
            return NotImplemented
        return self.oid == other.oid
