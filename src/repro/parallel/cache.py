"""The cross-query result cache: whole answers, memoized per worker.

Where :class:`~repro.index.cache.CachingIndex` memoizes index
*primitives*, :class:`ResultCache` memoizes whole solves: production
CoSKQ traffic is heavily skewed (the same hotspot query arrives over and
over), and re-running an exponential exact search for a byte-identical
query is pure waste.  Keys follow the paper's query identity — the pair
``(q.λ, q.ψ)`` — extended with the solver label and cost name, because
the *same* query answered by a different algorithm or objective is a
different answer.

When result reuse is **unsound** (and therefore refused or bypassed):

- under chaos injection — a cached answer would skip the fault plan
  (:class:`~repro.parallel.spec.WorkerEnv` rejects the combination);
- for nondeterministic or stateful solvers — everything in the registry
  is deterministic by construction (lint rule R2) and index-read-only
  (lint rule R7), which is exactly what makes this cache sound;
- when per-solve provenance matters: a cached hit returns the original
  result object, whose ``provenance.elapsed_ms``/``attempts`` describe
  the *first* solve, not the hit.  Costs and objects are identical;
  telemetry is historical.  ``docs/PARALLELISM.md`` discusses this.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.index.cache import CacheStats
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["ResultCache", "CachedSolver", "result_key"]


def result_key(
    query: Query, solver_label: str, cost_name: Optional[str]
) -> Tuple[object, ...]:
    """The canonical cache key: ``(q.λ, frozenset(q.ψ), solver, cost)``."""
    return (
        query.location.x,
        query.location.y,
        query.keywords,
        solver_label,
        cost_name,
    )


class ResultCache:
    """A bounded LRU from :func:`result_key` to :class:`CoSKQResult`.

    Thread-safe: lookups, inserts and the counters share one lock, so
    the threaded serving daemon (:mod:`repro.serve`) can consult the
    cache from every request handler and still read consistent
    ``/stats`` snapshots.  Results are immutable, so a hit needs no
    defensive copy; the lock only covers the LRU bookkeeping.  The lock
    is per instance and never pickled — caches are built worker-side
    from a :class:`~repro.parallel.spec.CacheSpec`.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise InvalidParameterError("result cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[object, ...], CoSKQResult]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: Tuple[object, ...]) -> Optional[CoSKQResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(self, key: Tuple[object, ...], result: CoSKQResult) -> None:
        with self._lock:
            self._entries[key] = result
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def stats_dict(self, prefix: str = "") -> Dict[str, int]:
        """A consistent counter snapshot (all four read under the lock)."""
        with self._lock:
            return self.stats.as_dict(prefix)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return "ResultCache(%d/%d, hits=%d)" % (
            len(self._entries),
            self.capacity,
            self.stats.hits,
        )


class CachedSolver:
    """Drop-in solver wrapper that consults a :class:`ResultCache`.

    Duck-types the solver interface (``solve`` + ``name``), so it can be
    timed, batched and chained exactly like the solver it wraps.  Only
    successful solves are cached: failures must re-execute (a deadline
    blow-up yesterday says nothing about the retry budget today).
    """

    def __init__(
        self,
        solver,
        cache: ResultCache,
        cost_name: Optional[str] = None,
    ):
        self.solver = solver
        self.cache = cache
        self.name = str(getattr(solver, "name", type(solver).__name__))
        if cost_name is None:
            cost = getattr(solver, "cost", None)
            cost_name = getattr(cost, "name", None)
        self.cost_name = cost_name

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        # The cache key deliberately excludes ``initial_upper_bound``: a
        # feasible seed bound never changes the returned cost (see
        # CoSKQAlgorithm.solve), so a cached answer remains valid for any
        # bound and a seeded miss may serve later unseeded hits.
        key = result_key(query, self.name, self.cost_name)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        if initial_upper_bound is None:
            result = self.solver.solve(query)
        else:
            result = self.solver.solve(query, initial_upper_bound=initial_upper_bound)
        self.cache.put(key, result)
        return result

    def __repr__(self) -> str:
        return "CachedSolver(%s, %r)" % (self.name, self.cache)
