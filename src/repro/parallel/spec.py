"""Picklable, declarative specs for the parallel batch engine.

A :class:`ProcessPoolExecutor` worker cannot receive a live solver — a
built solver drags a :class:`~repro.algorithms.base.SearchContext`, an
IR-tree and (for resilient chains) clocks and budgets through pickle on
*every task*.  The parallel engine therefore ships *recipes*:

- :class:`WorkerEnv` — everything a worker builds **once** in its
  initializer: the dataset, the index parameters, the cache
  configuration and an optional chaos schedule;
- :class:`SolverSpec` — a tiny frozen description of one solver (a
  registry name or a fallback-chain spec plus policy knobs) that rides
  along with each task and is built (then memoized) inside the worker;
- :class:`CacheSpec` / :class:`ChaosSpec` — the cache and fault-plan
  configurations, reduced to primitives.

Everything here is a frozen dataclass of primitives, so pickling is
cheap and the specs double as dictionary keys inside the workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.algorithms.base import SearchContext
from repro.algorithms.registry import make_algorithm
from repro.cost.functions import cost_by_name
from repro.errors import InvalidParameterError
from repro.exec.chaos import FaultPlan
from repro.exec.fallback import FallbackChain
from repro.exec.policy import ExecutionPolicy
from repro.index.cache import DEFAULT_CACHE_CAPACITY
from repro.model.dataset import Dataset

__all__ = ["CacheSpec", "ChaosSpec", "SolverSpec", "WorkerEnv", "CACHE_MODES"]

#: Recognized cache modes: no caching, index-lookup memoization,
#: cross-query result reuse, or both ("full").
CACHE_MODES = ("none", "index", "result", "full")


@dataclass(frozen=True)
class CacheSpec:
    """Which memoization layers a worker enables, and how large."""

    mode: str = "none"
    index_capacity: int = DEFAULT_CACHE_CAPACITY
    result_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.mode not in CACHE_MODES:
            raise InvalidParameterError(
                "unknown cache mode %r; known: %s" % (self.mode, list(CACHE_MODES))
            )
        if self.index_capacity < 1 or self.result_capacity < 1:
            raise InvalidParameterError("cache capacities must be >= 1")

    @property
    def caches_index(self) -> bool:
        return self.mode in ("index", "full")

    @property
    def caches_results(self) -> bool:
        return self.mode in ("result", "full")


@dataclass(frozen=True)
class ChaosSpec:
    """A per-query deterministic fault schedule for chaos batches.

    A single shared :class:`~repro.exec.chaos.FaultPlan` would make the
    injected failure set depend on how queries interleave across
    workers.  Instead each query ``i`` gets a **fresh** plan seeded from
    ``(seed, i)`` — so the failure set of a batch is a pure function of
    the batch, identical for 1, 2 or 4 workers (the chaos-interplay
    guarantee tested in ``tests/test_exec_chaos.py``).
    """

    seed: int = 0
    fail_rate: float = 0.0
    flaky_once: Tuple[str, ...] = ()
    fail_method: Tuple[str, ...] = ()
    fail_nth: Tuple[int, ...] = ()
    #: Injected slowness: every ``latency_every``-th index call sleeps
    #: ``latency_s`` on the plan's clock (virtual under a ManualClock).
    #: ``latency_every=0`` disables it.
    latency_s: float = 0.0
    latency_every: int = 0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.latency_every < 0:
            raise InvalidParameterError(
                "latency_s and latency_every must be >= 0"
            )
        if (self.latency_s > 0) != (self.latency_every > 0):
            raise InvalidParameterError(
                "latency_s and latency_every must be set together"
            )

    def plan_for(self, query_index: int) -> FaultPlan:
        """The fault plan of query ``query_index``, order-independent."""
        plan = FaultPlan(seed=(self.seed * 1_000_003 + query_index) & 0x7FFFFFFF)
        if self.fail_rate:
            plan.fail_rate(self.fail_rate)
        for method in self.flaky_once:
            plan.flaky_once(method)
        for method in self.fail_method:
            plan.fail_method(method)
        if self.fail_nth:
            plan.fail_nth(*self.fail_nth)
        if self.latency_every:
            plan.latency(self.latency_s, every=self.latency_every)
        return plan


@dataclass(frozen=True)
class SolverSpec:
    """A solver, reduced to what a worker needs to rebuild it.

    ``chain``/``deadline_ms``/``work_budget``/``max_retries`` select the
    resilient path (a :class:`~repro.exec.executor.ResilientExecutor`
    over a :class:`~repro.exec.fallback.FallbackChain` — deadlines and
    fallback degrade **per worker**, exactly as they do serially);
    otherwise the bare registry algorithm is built.

    ``adaptive`` builds the feature-driven
    :class:`~repro.adaptive.planner.AdaptivePlanner` around
    ``algorithm`` instead — each worker plans every query it receives.
    The trained hardness model travels as its JSON text
    (``model_json``), not a path, so the spec stays self-contained
    across the process boundary; unset, workers use the heuristic
    default.  ``adaptive`` subsumes ``chain`` (the planner builds its
    own degradation chains) and the two cannot be combined.
    """

    algorithm: str = "maxsum-exact"
    chain: Optional[str] = None
    cost: Optional[str] = None
    deadline_ms: Optional[float] = None
    work_budget: Optional[int] = None
    max_retries: int = 0
    always_answer: bool = True
    adaptive: bool = False
    model_json: Optional[str] = None

    def __post_init__(self) -> None:
        if self.adaptive and self.chain is not None:
            raise InvalidParameterError(
                "adaptive specs plan their own chains; drop chain="
            )
        if self.model_json is not None and not self.adaptive:
            raise InvalidParameterError(
                "model_json only applies to adaptive specs (set adaptive=True)"
            )

    @property
    def resilient(self) -> bool:
        return (
            self.chain is not None
            or self.deadline_ms is not None
            or self.work_budget is not None
            or self.max_retries > 0
        )

    @property
    def stage_names(self) -> Tuple[str, ...]:
        spec = self.chain if self.chain is not None else self.algorithm
        return tuple(
            part.strip()
            for part in spec.replace("->", ",").split(",")
            if part.strip()
        )

    @property
    def label(self) -> str:
        """The name the built solver will report (for batch alignment)."""
        if self.adaptive:
            return "adaptive[%s]" % self.algorithm
        if self.resilient:
            return "exec[%s]" % "|".join(self.stage_names)
        return self.algorithm

    def build(self, context: SearchContext):
        """Instantiate the described solver over ``context``."""
        cost = cost_by_name(self.cost) if self.cost is not None else None
        if self.adaptive:
            from repro.adaptive.model import HardnessModel
            from repro.adaptive.planner import AdaptivePlanner

            model = (
                HardnessModel.from_json(self.model_json)
                if self.model_json is not None
                else None
            )
            policy = ExecutionPolicy(
                deadline_ms=self.deadline_ms,
                work_budget=self.work_budget,
                max_retries=self.max_retries,
                always_answer=self.always_answer,
            )
            return AdaptivePlanner(
                context,
                algorithm=self.algorithm,
                cost=cost,
                model=model,
                policy=policy,
            )
        if not self.resilient:
            return make_algorithm(self.algorithm, context, cost=cost)
        from repro.exec.executor import ResilientExecutor

        chain = FallbackChain.of(context, *self.stage_names, cost=cost)
        policy = ExecutionPolicy(
            deadline_ms=self.deadline_ms,
            work_budget=self.work_budget,
            max_retries=self.max_retries,
            always_answer=self.always_answer,
        )
        return ResilientExecutor(chain, policy)


@dataclass(frozen=True)
class WorkerEnv:
    """Everything one pool worker builds in its initializer.

    Shipped exactly once per worker (via ``initargs``), never per task.
    Under the ``fork`` start method the engine additionally pre-builds
    the index in the parent so children inherit it for free (see
    :mod:`repro.parallel.worker`).
    """

    dataset: Dataset
    max_entries: int = 16
    cache: CacheSpec = field(default_factory=CacheSpec)
    chaos: Optional[ChaosSpec] = None
    #: ``> 0`` builds a :class:`~repro.shard.index.ShardedIndex` with
    #: that many STR shards instead of one IR-tree; bare (non-resilient,
    #: non-chaos) solver specs then run through the
    #: :class:`~repro.shard.engine.ScatterGather` pruning engine.
    shards: int = 0

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise InvalidParameterError("shards must be >= 0")
        if self.chaos is not None and self.cache.caches_results:
            raise InvalidParameterError(
                "result caching under chaos is unsound: a cached answer "
                "skips the fault plan, so the injected failure set would "
                "depend on query order (see docs/PARALLELISM.md)"
            )
