"""The per-process worker runtime behind the parallel batch engine.

One :class:`WorkerRuntime` lives in each pool process (module global,
installed by the pool initializer).  It builds the expensive state
exactly once — dataset indexes, the memoizing caches — and then serves
``(index, spec, query)`` tasks, returning plain-dict payloads that the
parent reassembles into a :class:`~repro.exec.batch.BatchReport`.

Pickling constraints, made explicit:

- the :class:`~repro.parallel.spec.WorkerEnv` crosses the process
  boundary **once per worker** (``initargs``), not per task;
- each task ships only ``(int, SolverSpec, Query)`` — a few hundred
  bytes; solvers are rebuilt from the spec inside the worker and
  memoized per spec;
- each payload ships the :class:`~repro.model.result.CoSKQResult` (or a
  typed failure record) plus a cumulative cache-stats snapshot; live
  exceptions never cross the boundary, so unpicklable tracebacks cannot
  poison the pool;
- under the ``fork`` start method the parent may pre-build a runtime
  (:func:`prepare_inherited_runtime`) that children adopt by token,
  skipping the per-worker index build entirely.

Failure semantics mirror :class:`~repro.exec.batch.BatchExecutor`
exactly — same error types, same messages, same per-stage causes — which
is what the differential suite (``tests/test_differential_parallel.py``)
locks down.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Tuple

from repro.algorithms.base import SearchContext
from repro.cost.functions import cost_by_name
from repro.errors import ExecutionFailedError
from repro.exec.chaos import ChaosIndex
from repro.index.cache import CachingIndex
from repro.model.query import Query
from repro.parallel.cache import CachedSolver, ResultCache
from repro.parallel.spec import SolverSpec, WorkerEnv
from repro.shard.index import ShardedIndexFactory

__all__ = [
    "WorkerRuntime",
    "prepare_inherited_runtime",
    "discard_inherited_runtime",
]

#: The per-process runtime, installed by :func:`_initialize`.
_RUNTIME: Optional["WorkerRuntime"] = None

#: Parent-side prebuilt runtime for fork inheritance: ``(token, runtime)``.
_INHERITED: Optional[Tuple[int, "WorkerRuntime"]] = None

_TOKENS = itertools.count(1)


class WorkerRuntime:
    """One process's solving state: context, caches, memoized solvers."""

    def __init__(self, env: WorkerEnv, validate: bool = True):
        self.env = env
        self.validate = validate
        if env.shards > 0:
            base = SearchContext(
                env.dataset,
                max_entries=env.max_entries,
                index_cls=ShardedIndexFactory(env.shards),
            )
        else:
            base = SearchContext(env.dataset, max_entries=env.max_entries)
        # The raw (uncached, unwrapped) sharded context: the scatter-gather
        # engine needs the bare facade to read summaries and restrict it.
        self._sharded_context = base if env.shards > 0 else None
        self.index_cache: Optional[CachingIndex] = None
        if env.cache.caches_index:
            self.index_cache = CachingIndex(
                base.index, capacity=env.cache.index_capacity
            )
            base = base.with_index(self.index_cache)
        else:
            base.index  # force the build so it is paid once, not mid-batch
        self.context = base
        self.result_cache: Optional[ResultCache] = None
        if env.cache.caches_results:
            self.result_cache = ResultCache(env.cache.result_capacity)
        self._solvers: Dict[SolverSpec, object] = {}

    # -- solver construction ----------------------------------------------------

    def solver_for(self, spec: SolverSpec, query_index: int):
        """The (memoized) solver for ``spec``; chaos rebuilds per query.

        Chaos wraps the *outermost* index layer with a fresh per-query
        :class:`~repro.exec.chaos.ChaosIndex`, so every index call of
        query ``i`` is intercepted by plan ``i`` regardless of which
        worker runs it or what the cache already holds.
        """
        if self.env.chaos is not None:
            plan = self.env.chaos.plan_for(query_index)
            context = self.context.with_index(
                ChaosIndex(self.context.index, plan)
            )
            return spec.build(context)
        solver = self._solvers.get(spec)
        if solver is None:
            if (
                self._sharded_context is not None
                and not spec.resilient
                and not spec.adaptive
            ):
                # Bare registry solvers route through the scatter-gather
                # engine so shard pruning happens inside the worker;
                # resilient chains run directly over the sharded facade
                # (their stages still answer bit-identically — the
                # facade conforms to the index protocol — they just
                # skip the per-query shard restriction).
                from repro.shard.engine import ScatterGather

                cost = cost_by_name(spec.cost) if spec.cost is not None else None
                solver = ScatterGather(
                    self._sharded_context, spec.algorithm, cost=cost
                )
            else:
                solver = spec.build(self.context)
            if self.result_cache is not None:
                solver = CachedSolver(solver, self.result_cache, cost_name=spec.cost)
            self._solvers[spec] = solver
        return solver

    # -- one task ---------------------------------------------------------------

    def solve(self, index: int, spec: SolverSpec, query: Query) -> Dict[str, object]:
        """One isolated solve; failures become payload fields, not raises."""
        try:
            solver = self.solver_for(spec, index)
            result = solver.solve(query)
            if self.validate and not result.is_feasible_for(query):
                raise AssertionError(
                    "%s returned an infeasible set for %r" % (spec.label, query)
                )
        except Exception as err:  # KeyboardInterrupt et al. still propagate
            stage_failures: Tuple[object, ...] = ()
            if isinstance(err, ExecutionFailedError):
                stage_failures = err.failures
            return {
                "ok": False,
                "index": index,
                "result": None,
                "error_type": type(err).__name__,
                "message": str(err),
                "stage_failures": stage_failures,
                "pid": os.getpid(),
                "stats": self.stats_snapshot(),
            }
        return {
            "ok": True,
            "index": index,
            "result": result,
            "pid": os.getpid(),
            "stats": self.stats_snapshot(),
        }

    # -- observability ----------------------------------------------------------

    def stats_snapshot(self) -> Optional[Dict[str, int]]:
        """Cumulative cache counters, or None when caching is off.

        Snapshots are monotone per worker, so the parent can keep the
        largest per pid and sum across workers for batch totals.
        """
        if self.index_cache is None and self.result_cache is None:
            return None
        out: Dict[str, int] = {}
        if self.index_cache is not None:
            out.update(self.index_cache.stats.as_dict(prefix="index_"))
        if self.result_cache is not None:
            out.update(self.result_cache.stats.as_dict(prefix="result_"))
        out["ops"] = sum(out.values())
        return out


# -- fork inheritance ---------------------------------------------------------


def prepare_inherited_runtime(env: WorkerEnv, validate: bool) -> int:
    """Pre-build a runtime in the parent for fork children to adopt.

    Returns a token; children whose initializer receives the same token
    (and therefore forked after this call) reuse the inherited runtime —
    each child gets its own copy-on-write copy, with empty caches —
    instead of rebuilding the index from the pickled dataset.
    """
    global _INHERITED
    token = next(_TOKENS)
    _INHERITED = (token, WorkerRuntime(env, validate))
    return token


def discard_inherited_runtime() -> None:
    """Drop the parent-side template (frees the prebuilt index)."""
    global _INHERITED
    _INHERITED = None


def _initialize(env: WorkerEnv, validate: bool, token: Optional[int]) -> None:
    """Pool initializer: adopt the inherited runtime or build afresh."""
    global _RUNTIME
    inherited = _INHERITED
    if token is not None and inherited is not None and inherited[0] == token:
        _RUNTIME = inherited[1]
    else:
        _RUNTIME = WorkerRuntime(env, validate)


def _run_task(index: int, spec: SolverSpec, query: Query) -> Dict[str, object]:
    """Pool task entry point (module-level, so it pickles by reference)."""
    assert _RUNTIME is not None, "worker initializer did not run"
    return _RUNTIME.solve(index, spec, query)


def _run_chunk(
    tasks: List[Tuple[int, SolverSpec, Query]]
) -> List[Dict[str, object]]:
    """Chunked variant: one submission amortizes pickling over many tasks."""
    assert _RUNTIME is not None, "worker initializer did not run"
    return [_RUNTIME.solve(index, spec, query) for index, spec, query in tasks]
