"""The process-parallel batch query engine.

:class:`ParallelBatchExecutor` runs a query batch across ``workers``
processes and returns the exact same :class:`~repro.exec.batch.BatchReport`
a serial :class:`~repro.exec.batch.BatchExecutor` would: positional
alignment (``results[i]`` answers ``queries[i]`` or is None), typed
:class:`~repro.exec.batch.QueryFailure` records sorted by index, and
per-query isolation — one poisoned query never kills the batch, let
alone the pool.

Engineering decisions worth knowing:

- ``workers=1`` never touches multiprocessing: the batch runs through a
  local :class:`~repro.parallel.worker.WorkerRuntime` in-process, so the
  degenerate case is deterministic, debuggable and fork-free — and still
  exercises the identical solve/cache/failure path as the pooled case.
- The dataset ships **once per worker** via the pool initializer; tasks
  carry only ``(index, SolverSpec, Query)``.  Under the ``fork`` start
  method the engine additionally pre-builds the runtime in the parent so
  children inherit the index copy-on-write instead of rebuilding it.
- Cache statistics are cumulative per worker; the parent keeps the
  latest snapshot per pid (largest monotone ``ops`` counter) and sums
  across pids into :attr:`BatchReport.cache_stats`.
- Results arrive in any order; the report is reassembled positionally,
  so worker scheduling can never reorder answers.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.exec.batch import BatchReport, QueryFailure
from repro.model.query import Query
from repro.parallel import worker as worker_mod
from repro.parallel.spec import SolverSpec, WorkerEnv
from repro.parallel.worker import WorkerRuntime, _initialize, _run_task

__all__ = ["ParallelBatchExecutor"]


class ParallelBatchExecutor:
    """Run query batches over a worker pool (or in-process for 1 worker).

    Usable as a context manager; :meth:`run` may be called repeatedly —
    the pool (and its per-worker caches) persists across batches until
    :meth:`close`.
    """

    def __init__(
        self,
        env: WorkerEnv,
        spec: Optional[SolverSpec] = None,
        workers: int = 1,
        validate: bool = True,
    ):
        if workers < 1:
            raise InvalidParameterError("workers must be >= 1, got %d" % workers)
        self.env = env
        self.spec = spec if spec is not None else SolverSpec()
        self.workers = workers
        self.validate = validate
        self._pool: Optional[ProcessPoolExecutor] = None
        self._local: Optional[WorkerRuntime] = None

    # -- lifecycle --------------------------------------------------------------

    def _local_runtime(self) -> WorkerRuntime:
        if self._local is None:
            self._local = WorkerRuntime(self.env, self.validate)
        return self._local

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context()
            token: Optional[int] = None
            if context.get_start_method() == "fork":
                token = worker_mod.prepare_inherited_runtime(
                    self.env, self.validate
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_initialize,
                initargs=(self.env, self.validate, token),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down and drop local/inherited runtimes."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        worker_mod.discard_inherited_runtime()
        self._local = None

    def __enter__(self) -> "ParallelBatchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution --------------------------------------------------------------

    def run(
        self, queries: Sequence[Query], spec: Optional[SolverSpec] = None
    ) -> BatchReport:
        """Solve every query; identical semantics to the serial executor."""
        spec = spec if spec is not None else self.spec
        queries = list(queries)
        if self.workers == 1:
            runtime = self._local_runtime()
            payloads = [
                runtime.solve(index, spec, query)
                for index, query in enumerate(queries)
            ]
        else:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_run_task, index, spec, query)
                for index, query in enumerate(queries)
            ]
            payloads = [future.result() for future in futures]
        return self._assemble(spec, queries, payloads)

    def _assemble(
        self,
        spec: SolverSpec,
        queries: Sequence[Query],
        payloads: Sequence[Dict[str, object]],
    ) -> BatchReport:
        results: List[object] = [None] * len(queries)
        failures: List[QueryFailure] = []
        latest_by_pid: Dict[int, Dict[str, int]] = {}
        for payload in payloads:
            index = payload["index"]
            stats = payload.get("stats")
            if stats is not None:
                pid = payload["pid"]
                known = latest_by_pid.get(pid)
                if known is None or stats["ops"] >= known["ops"]:
                    latest_by_pid[pid] = stats
            if payload["ok"]:
                results[index] = payload["result"]
            else:
                failures.append(
                    QueryFailure(
                        index=index,
                        query=queries[index],
                        error_type=payload["error_type"],
                        message=payload["message"],
                        stage_failures=tuple(payload["stage_failures"]),
                    )
                )
        failures.sort(key=lambda failure: failure.index)
        return BatchReport(
            solver=spec.label,
            results=results,
            failures=failures,
            cache_stats=_merge_stats(latest_by_pid),
        )

    def __repr__(self) -> str:
        return "ParallelBatchExecutor(workers=%d, spec=%r, cache=%s)" % (
            self.workers,
            self.spec.label,
            self.env.cache.mode,
        )


def _merge_stats(
    latest_by_pid: Dict[int, Dict[str, int]]
) -> Optional[Dict[str, int]]:
    """Sum each worker's final cumulative snapshot into batch totals."""
    if not latest_by_pid:
        return None
    merged: Dict[str, int] = {"workers": len(latest_by_pid)}
    for snapshot in latest_by_pid.values():
        for key, value in snapshot.items():
            if key == "ops":
                continue
            merged[key] = merged.get(key, 0) + value
    return merged
