"""Process-parallel batch querying with memoizing caches.

The serial :class:`~repro.exec.batch.BatchExecutor` answers a workload
one query at a time; this package scales the same contract out:

- :class:`~repro.parallel.executor.ParallelBatchExecutor` — shards a
  batch over ``N`` worker processes (in-process for ``workers=1``),
  preserving positional alignment, per-query failure isolation and the
  serial engine's exact failure semantics;
- :class:`~repro.parallel.spec.WorkerEnv` /
  :class:`~repro.parallel.spec.SolverSpec` — picklable recipes so the
  dataset ships once per worker and solvers rebuild worker-side;
- :class:`~repro.index.cache.CachingIndex` (index-primitive memoization)
  and :class:`~repro.parallel.cache.ResultCache` (cross-query answer
  reuse) — the two cache layers, selected by
  :class:`~repro.parallel.spec.CacheSpec`;
- :class:`~repro.parallel.spec.ChaosSpec` — per-query deterministic
  fault plans, so chaos batches fail identically at any worker count.

The whole package is gated by a differential/metamorphic test suite:
``tests/test_differential_parallel.py`` (cost identity vs the serial
engine at 1/2/4 workers for every registry solver),
``tests/test_metamorphic_cache.py`` (order-invariance under caching) and
``tests/test_exec_chaos.py`` (worker-count-independent failure sets).
See ``docs/PARALLELISM.md`` for the design notes.
"""

from repro.parallel.cache import CachedSolver, ResultCache, result_key
from repro.parallel.executor import ParallelBatchExecutor
from repro.parallel.spec import (
    CACHE_MODES,
    CacheSpec,
    ChaosSpec,
    SolverSpec,
    WorkerEnv,
)
from repro.parallel.worker import WorkerRuntime

__all__ = [
    "ParallelBatchExecutor",
    "WorkerRuntime",
    "WorkerEnv",
    "SolverSpec",
    "CacheSpec",
    "ChaosSpec",
    "CACHE_MODES",
    "CachedSolver",
    "ResultCache",
    "result_key",
]
