"""Plain-text report tables in the shape of the paper's figures.

Each paper figure is a set of series over a swept parameter (running time
vs |q.ψ|, ratio bars vs |q.ψ|, time vs |O|).  :class:`SeriesTable`
collects those series and renders an aligned text table, which is what
the benchmark CLI prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["SeriesTable", "format_kv_table"]


@dataclass
class SeriesTable:
    """Series of numbers indexed by a swept x value."""

    title: str
    x_label: str
    x_values: List = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    unit: str = ""

    def add(self, name: str, value: float) -> None:
        """Append the next value to series ``name`` (x row order)."""
        self.series.setdefault(name, []).append(value)

    def render(self, precision: int = 6) -> str:
        names = list(self.series)
        header = [self.x_label] + names
        rows: List[List[str]] = []
        for i, x in enumerate(self.x_values):
            row = [str(x)]
            for name in names:
                values = self.series[name]
                row.append(
                    _fmt(values[i], precision) if i < len(values) else "-"
                )
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines = [self.title + (" [%s]" % self.unit if self.unit else "")]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def _fmt(value: float, precision: int) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
        return "%.*g" % (precision, value)
    return ("%.*f" % (precision, value)).rstrip("0").rstrip(".")


def format_kv_table(title: str, rows: Sequence[Dict[str, object]], key: str) -> str:
    """Render dict rows (e.g. dataset statistics) as an aligned table."""
    if not rows:
        return title + "\n(no rows)"
    columns = [key] + [c for c in rows[0] if c != key]
    table_rows = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in table_rows))
        for i in range(len(columns))
    ]
    lines = [title]
    lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(columns)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
