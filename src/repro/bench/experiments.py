"""The experiment suite: one entry per paper table/figure (DESIGN.md §5).

Every experiment has two presets:

- ``quick`` — small datasets and few queries; this is what the
  pytest-benchmark files under ``benchmarks/`` exercise so the whole
  suite runs in minutes on a laptop;
- ``full``  — the paper-shaped sweep (all |q.ψ| settings, larger
  datasets, more queries) used by the ``coskq-bench`` CLI and recorded in
  EXPERIMENTS.md.

Each experiment returns a plain-text report containing the same rows or
series the paper's corresponding figure plots.
"""

from __future__ import annotations

import functools
import math
import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.algorithms.cao_appro import CaoAppro1, CaoAppro2
from repro.algorithms.cao_exact import CaoExact
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.algorithms.unified_appro import UnifiedAppro
from repro.algorithms.unified_exact import UnifiedExact
from repro.bench.report import SeriesTable, format_kv_table
from repro.bench.runner import ratio_study, time_algorithm
from repro.cost.functions import cost_by_name
from repro.cost.unified import INTERESTING_SETTINGS, UnifiedCost
from repro.data.augment import densify_keywords, scale_dataset
from repro.data.generators import gn_like, hotel_like, web_like
from repro.data.queries import generate_queries
from repro.geometry.circle import Circle
from repro.index.neighbors import LinearScanIndex
from repro.model.dataset import Dataset

__all__ = ["EXPERIMENTS", "run_experiment", "Scale", "QUICK", "FULL"]


@dataclass(frozen=True)
class Scale:
    """Sizing knobs shared by all experiments."""

    hotel_scale: float
    gn_scale: float
    web_scale: float
    queries: int
    keyword_sweep: Tuple[int, ...]
    scalability_sizes: Tuple[int, ...]
    okeyword_sweep: Tuple[float, ...]
    seed: int = 7


QUICK = Scale(
    hotel_scale=0.12,
    gn_scale=0.004,
    web_scale=0.006,
    queries=6,
    keyword_sweep=(3, 6, 9),
    scalability_sizes=(4_000, 8_000, 12_000),
    okeyword_sweep=(4.0, 8.0, 16.0),
)

FULL = Scale(
    hotel_scale=1.0,
    gn_scale=0.04,
    web_scale=0.05,
    queries=25,
    keyword_sweep=(3, 6, 9, 12, 15),
    scalability_sizes=(20_000, 40_000, 60_000, 80_000, 100_000),
    okeyword_sweep=(4.0, 8.0, 16.0, 24.0, 32.0),
)

#: When set (the CLI's --svg flag), experiments additionally render
#: their series as SVG line/bar charts into this directory.
FIGURE_DIR: pathlib.Path | None = None


def _emit_tables(slug: str, tables) -> str:
    """Render tables as text; mirror them as SVG figures when enabled."""
    if FIGURE_DIR is not None:
        from repro.bench.svg import render_line_chart

        FIGURE_DIR.mkdir(parents=True, exist_ok=True)
        for index, table in enumerate(tables):
            log_y = "running time" in table.title
            path = FIGURE_DIR / ("%s_%d.svg" % (slug, index))
            path.write_text(render_line_chart(table, log_y=log_y))
    return "\n\n".join(table.render() for table in tables)


#: Expansion cap for the branch-and-bound baseline inside sweeps: past
#: this it registers as DNF (NaN in the tables) rather than stalling a
#: sweep — the paper reports the same situations as ">10 hours".
BASELINE_EXPANSION_CAP = 200_000


@functools.lru_cache(maxsize=16)
def _dataset(kind: str, scale: float, seed: int) -> Dataset:
    if kind == "hotel":
        return hotel_like(scale=scale, seed=seed)
    if kind == "gn":
        return gn_like(scale=scale, seed=seed)
    if kind == "web":
        return web_like(scale=scale, seed=seed)
    raise ValueError("unknown dataset kind %r" % (kind,))


def _scale_of(kind: str, scale: Scale) -> float:
    return {"hotel": scale.hotel_scale, "gn": scale.gn_scale, "web": scale.web_scale}[
        kind
    ]


def _safe_mean_time(algorithm: CoSKQAlgorithm, queries) -> float:
    """Mean per-query time; NaN when the algorithm blows its budget.

    Infeasible queries (possible when a sweep reuses one query set over
    truncated datasets) also land as NaN rather than aborting the sweep.
    """
    from repro.errors import InfeasibleQueryError, SearchAbortedError

    try:
        return time_algorithm(algorithm, queries, keep_results=False).mean_time
    except (RuntimeError, SearchAbortedError, InfeasibleQueryError):
        return math.nan


# -- Table 1 --------------------------------------------------------------------


def experiment_table1(scale: Scale) -> str:
    rows = []
    for kind in ("hotel", "gn", "web"):
        dataset = _dataset(kind, _scale_of(kind, scale), scale.seed)
        row = {"dataset": dataset.name}
        row.update(dataset.statistics().as_row())
        rows.append(row)
    report = format_kv_table(
        "Table 1: dataset statistics (synthetic stand-ins, see DESIGN.md §4)",
        rows,
        key="dataset",
    )
    return report


# -- per-cost, per-dataset |q.psi| sweeps (the paper's main figures) ---------------


def _sweep_cost_dataset(kind: str, cost_name: str, scale: Scale) -> str:
    """Running time (exact + appro) and ratios vs |q.ψ| for one dataset."""
    dataset = _dataset(kind, _scale_of(kind, scale), scale.seed)
    context = SearchContext(dataset)
    cost = cost_by_name(cost_name)

    exact_time = SeriesTable(
        title="%s on %s: exact running time" % (cost_name, dataset.name),
        x_label="|q.psi|",
        unit="s/query",
    )
    appro_time = SeriesTable(
        title="%s on %s: approximate running time" % (cost_name, dataset.name),
        x_label="|q.psi|",
        unit="s/query",
    )
    ratio_avg = SeriesTable(
        title="%s on %s: approximation ratio (average)" % (cost_name, dataset.name),
        x_label="|q.psi|",
    )
    ratio_max = SeriesTable(
        title="%s on %s: approximation ratio (maximum)" % (cost_name, dataset.name),
        x_label="|q.psi|",
    )

    for k in scale.keyword_sweep:
        queries = generate_queries(dataset, k, scale.queries, seed=scale.seed)
        exact_time.x_values.append(k)
        appro_time.x_values.append(k)
        ratio_avg.x_values.append(k)
        ratio_max.x_values.append(k)

        owner_exact = OwnerDrivenExact(context, cost)
        timing = time_algorithm(owner_exact, queries)
        exact_time.add("%s-exact" % cost_name, timing.mean_time)
        exact_time.add(
            "cao-exact", _safe_mean_time(
                CaoExact(
                    context,
                    cost_by_name(cost_name),
                    max_expansions=BASELINE_EXPANSION_CAP,
                ),
                queries,
            )
        )

        approximations = [
            OwnerRingApproximation(context, cost_by_name(cost_name)),
            CaoAppro1(context, cost_by_name(cost_name)),
            CaoAppro2(context, cost_by_name(cost_name)),
        ]
        approximations[0].name = "%s-appro" % cost_name
        for algo in approximations:
            appro_time.add(algo.name, _safe_mean_time(algo, queries))
        ratios = ratio_study(
            owner_exact, approximations, queries, optima=list(timing.results)
        )
        for algo in approximations:
            ratio_avg.add(algo.name, ratios[algo.name].ratios.mean)
            ratio_max.add(algo.name, ratios[algo.name].ratios.maximum)

    return _emit_tables(
        "%s_%s" % (cost_name, kind), (exact_time, appro_time, ratio_avg, ratio_max)
    )


# -- ratio bar chart ----------------------------------------------------------------


def experiment_ratio_bars(scale: Scale) -> str:
    """Avg/min/max ratio bars at the middle |q.ψ| setting (hotel)."""
    dataset = _dataset("hotel", scale.hotel_scale, scale.seed)
    context = SearchContext(dataset)
    k = scale.keyword_sweep[len(scale.keyword_sweep) // 2]
    queries = generate_queries(dataset, k, scale.queries, seed=scale.seed)
    sections: List[str] = []
    for cost_name in ("maxsum", "dia"):
        cost = cost_by_name(cost_name)
        exact = OwnerDrivenExact(context, cost)
        approximations = [
            OwnerRingApproximation(context, cost_by_name(cost_name)),
            CaoAppro1(context, cost_by_name(cost_name)),
            CaoAppro2(context, cost_by_name(cost_name)),
        ]
        approximations[0].name = "%s-appro" % cost_name
        ratios = ratio_study(exact, approximations, queries)
        rows = []
        for algo in approximations:
            row = {"algorithm": algo.name}
            row.update(ratios[algo.name].ratios.as_row())
            row["optimal_fraction"] = round(ratios[algo.name].optimal_fraction, 3)
            rows.append(row)
        title = "ratio bars: %s on %s, |q.psi|=%d" % (cost_name, dataset.name, k)
        sections.append(format_kv_table(title, rows, key="algorithm"))
        if FIGURE_DIR is not None:
            from repro.bench.svg import render_bar_chart

            FIGURE_DIR.mkdir(parents=True, exist_ok=True)
            bars = {
                algo.name: (
                    ratios[algo.name].ratios.mean,
                    ratios[algo.name].ratios.minimum,
                    ratios[algo.name].ratios.maximum,
                )
                for algo in approximations
            }
            (FIGURE_DIR / ("ratio_bars_%s.svg" % cost_name)).write_text(
                render_bar_chart(title, bars)
            )
    return "\n\n".join(sections)


# -- scalability -----------------------------------------------------------------------


def experiment_scalability(scale: Scale) -> str:
    base = _dataset("gn", scale.gn_scale, scale.seed)
    k = scale.keyword_sweep[min(1, len(scale.keyword_sweep) - 1)]
    table = SeriesTable(
        title="scalability: running time vs |O| (gn-like, |q.psi|=%d)" % k,
        x_label="|O|",
        unit="s/query",
    )
    # One query set for the whole size sweep, so the series varies only
    # in |O| and not in per-size query difficulty.  Queries come from the
    # *smallest* dataset of the sweep: every larger one is a superset
    # (prefix-truncations of the base plus augmented growths), so the
    # same queries stay feasible everywhere.
    def sized(size: int) -> Dataset:
        if size > len(base):
            return scale_dataset(base, size, seed=scale.seed)
        return Dataset(
            base.objects[:size], base.vocabulary, name="%s-%d" % (base.name, size)
        )

    smallest = sized(min(scale.scalability_sizes))
    queries = generate_queries(smallest, k, scale.queries, seed=scale.seed)
    for size in scale.scalability_sizes:
        dataset = sized(size)
        context = SearchContext(dataset)
        table.x_values.append(size)
        table.add(
            "maxsum-exact",
            _safe_mean_time(OwnerDrivenExact(context, cost_by_name("maxsum")), queries),
        )
        appro = OwnerRingApproximation(context, cost_by_name("maxsum"))
        appro.name = "maxsum-appro"
        table.add("maxsum-appro", _safe_mean_time(appro, queries))
        table.add(
            "cao-appro1", _safe_mean_time(CaoAppro1(context, cost_by_name("maxsum")), queries)
        )
        table.add(
            "dia-exact",
            _safe_mean_time(OwnerDrivenExact(context, cost_by_name("dia")), queries),
        )
        dia_appro = OwnerRingApproximation(context, cost_by_name("dia"))
        dia_appro.name = "dia-appro"
        table.add("dia-appro", _safe_mean_time(dia_appro, queries))
    return _emit_tables("scalability", (table,))


# -- effect of average |o.psi| -------------------------------------------------------------


def experiment_okeywords(scale: Scale) -> str:
    base = _dataset("hotel", scale.hotel_scale, scale.seed)
    k = scale.keyword_sweep[min(1, len(scale.keyword_sweep) - 1)]
    table = SeriesTable(
        title="effect of average |o.psi| (hotel-like, |q.psi|=%d)" % k,
        x_label="avg|o.psi|",
        unit="s/query",
    )
    # Fixed query set across the densification sweep: locations and
    # keyword ids stay meaningful because densification only *adds*
    # keywords at unchanged locations.
    queries = generate_queries(base, k, scale.queries, seed=scale.seed)
    for mean_keywords in scale.okeyword_sweep:
        dataset = densify_keywords(base, mean_keywords, seed=scale.seed)
        context = SearchContext(dataset)
        table.x_values.append(mean_keywords)
        table.add(
            "maxsum-exact",
            _safe_mean_time(OwnerDrivenExact(context, cost_by_name("maxsum")), queries),
        )
        appro = OwnerRingApproximation(context, cost_by_name("maxsum"))
        appro.name = "maxsum-appro"
        table.add("maxsum-appro", _safe_mean_time(appro, queries))
        table.add(
            "cao-exact", _safe_mean_time(
                CaoExact(
                    context,
                    cost_by_name("maxsum"),
                    max_expansions=BASELINE_EXPANSION_CAP,
                ),
                queries,
            )
        )
    return _emit_tables("okeywords", (table,))


# -- ablations -----------------------------------------------------------------------


def experiment_ablation_pruning(scale: Scale) -> str:
    dataset = _dataset("hotel", scale.hotel_scale, scale.seed)
    context = SearchContext(dataset)
    k = scale.keyword_sweep[min(1, len(scale.keyword_sweep) - 1)]
    queries = generate_queries(dataset, k, scale.queries, seed=scale.seed)
    variants = {
        "full-pruning": {},
        "appro-seeded": {"seed_with_appro": True},
        "no-candidate-filter": {"filter_candidates": False},
        "no-ring-pruning": {"ring_pruning": False},
        "no-pruning-at-all": {
            "filter_candidates": False,
            "ring_pruning": False,
        },
    }
    rows = []
    for label, kwargs in variants.items():
        algo = OwnerDrivenExact(context, cost_by_name("maxsum"), **kwargs)
        timing = time_algorithm(algo, queries, keep_results=False)
        owners = sum(
            algo.counters.get(c, 0) for c in ("owners_tried",)
        )
        rows.append(
            {
                "variant": label,
                "mean_time_s": round(timing.mean_time, 6),
                "last_query_owners": owners,
            }
        )
    return format_kv_table(
        "ablation: owner-driven pruning components (maxsum-exact, |q.psi|=%d)" % k,
        rows,
        key="variant",
    )


def experiment_ablation_index(scale: Scale) -> str:
    dataset = _dataset("hotel", scale.hotel_scale, scale.seed)
    k = scale.keyword_sweep[min(1, len(scale.keyword_sweep) - 1)]
    queries = generate_queries(dataset, k, scale.queries, seed=scale.seed)
    rows = []
    for label, index_cls in (("ir-tree", None), ("linear-scan", LinearScanIndex)):
        context = (
            SearchContext(dataset)
            if index_cls is None
            else SearchContext(dataset, index_cls=index_cls)
        )
        appro = OwnerRingApproximation(context, cost_by_name("maxsum"))
        timing = time_algorithm(appro, queries, keep_results=False)
        rows.append({"index": label, "appro_mean_time_s": round(timing.mean_time, 6)})
    return format_kv_table(
        "ablation: IR-tree vs linear scan (maxsum-appro, |q.psi|=%d)" % k,
        rows,
        key="index",
    )


# -- unified extension ------------------------------------------------------------------


def experiment_unified(scale: Scale) -> str:
    dataset = _dataset("hotel", min(scale.hotel_scale, 0.25), scale.seed)
    context = SearchContext(dataset)
    k = min(scale.keyword_sweep)
    queries = generate_queries(dataset, k, scale.queries, seed=scale.seed)
    rows = []
    for alpha, phi1, phi2 in INTERESTING_SETTINGS:
        cost = UnifiedCost(alpha, phi1, phi2)
        exact = UnifiedExact(context, cost)
        appro = UnifiedAppro(context, UnifiedCost(alpha, phi1, phi2))
        exact_timing = time_algorithm(exact, queries)
        ratios = ratio_study(exact, [appro], queries, optima=list(exact_timing.results))
        named = cost.named_equivalent() or cost.name
        rows.append(
            {
                "cost": named,
                "exact_time_s": round(exact_timing.mean_time, 6),
                "appro_ratio_avg": round(ratios[appro.name].ratios.mean, 4),
                "appro_ratio_max": round(ratios[appro.name].ratios.maximum, 4),
            }
        )
    return format_kv_table(
        "unified cost extension: Unified-E/Unified-A across settings (|q.psi|=%d)" % k,
        rows,
        key="cost",
    )


# -- parallel batch engine ------------------------------------------------------------

#: When set (``make parallel-bench`` / tests), :func:`experiment_parallel`
#: additionally writes its machine-readable results to this JSON file.
PARALLEL_JSON_PATH: pathlib.Path | None = None


def experiment_parallel(scale: Scale) -> str:
    """Throughput of the parallel batch engine vs the serial executor.

    The workload is deliberately **skewed** — few distinct queries, each
    repeated many times — because that is the regime the memoizing
    caches target (and the regime real serving traffic exhibits).  Each
    configuration is measured twice: ``cold`` includes pool startup and
    index builds, ``warm`` re-runs the same batch against the already
    populated caches (steady-state serving).  Cost identity against the
    serial :class:`~repro.exec.batch.BatchExecutor` is asserted for
    every configuration before any timing is reported.

    On a single-core machine (the CI box: ``os.cpu_count() == 1``) the
    speedup comes from memoization, not CPU scaling — the JSON records
    ``cpu_count`` so readers can interpret the curves honestly.
    """
    import json
    import os
    import time

    from repro.algorithms.registry import make_algorithm
    from repro.exec.batch import BatchExecutor
    from repro.parallel import (
        CacheSpec,
        ParallelBatchExecutor,
        SolverSpec,
        WorkerEnv,
    )

    dataset = _dataset("hotel", min(scale.hotel_scale, 0.25), scale.seed)
    k = min(scale.keyword_sweep)
    distinct = max(4, scale.queries // 2)
    repeats = 8
    base = generate_queries(dataset, k, distinct, seed=scale.seed)
    queries = [base[i % distinct] for i in range(distinct * repeats)]

    algorithm = "maxsum-appro"
    serial_solver = make_algorithm(algorithm, SearchContext(dataset))
    start = time.perf_counter()
    serial_report = BatchExecutor(serial_solver).run(queries)
    serial_s = time.perf_counter() - start
    assert serial_report.ok(), "serial baseline failed: %s" % serial_report.summary()
    serial_costs = [r.cost for r in serial_report.results]

    spec = SolverSpec(algorithm=algorithm)
    configs = [
        ("none", 1),
        ("none", 4),
        ("index", 1),
        ("full", 1),
        ("full", 2),
        ("full", 4),
    ]
    rows = []
    json_rows = []
    warm_by_config: Dict[Tuple[str, int], float] = {}
    stats_at_4 = None
    for mode, workers in configs:
        env = WorkerEnv(dataset=dataset, cache=CacheSpec(mode=mode))
        with ParallelBatchExecutor(env, spec, workers=workers) as engine:
            start = time.perf_counter()
            cold_report = engine.run(queries)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm_report = engine.run(queries)
            warm_s = time.perf_counter() - start
        for report in (cold_report, warm_report):
            assert report.ok(), "parallel run failed: %s" % report.summary()
            costs = [r.cost for r in report.results]
            assert all(
                abs(a - b) <= 1e-9 * max(1.0, abs(a))
                for a, b in zip(serial_costs, costs)
            ), "cost mismatch vs serial at mode=%s workers=%d" % (mode, workers)
        warm_by_config[(mode, workers)] = warm_s
        stats = warm_report.cache_stats or {}
        if mode == "full" and workers == 4:
            stats_at_4 = stats
        lookups = stats.get("index_hits", 0) + stats.get("index_misses", 0)
        hit_rate = stats.get("index_hits", 0) / lookups if lookups else 0.0
        row = {
            "config": "%s/x%d" % (mode, workers),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(serial_s / warm_s, 2) if warm_s else math.nan,
            "index_hit_rate": round(hit_rate, 3),
            "result_hits": stats.get("result_hits", 0),
        }
        rows.append(row)
        json_rows.append(dict(row, cache=mode, workers=workers))

    speedup_at_4 = serial_s / warm_by_config[("full", 4)]
    report_text = format_kv_table(
        "parallel batch engine: %d queries (%d distinct), %s, serial %.4fs"
        % (len(queries), distinct, algorithm, serial_s),
        rows,
        key="config",
    )
    report_text += "\nspeedup at 4 workers (full cache, warm): %.2fx" % speedup_at_4
    if PARALLEL_JSON_PATH is not None:
        payload = {
            "dataset": dataset.name,
            "algorithm": algorithm,
            "queries": len(queries),
            "distinct_queries": distinct,
            "cpu_count": os.cpu_count(),
            "serial_s": round(serial_s, 4),
            "speedup_at_4": round(speedup_at_4, 2),
            "cache_stats_at_4": stats_at_4,
            "runs": json_rows,
            "note": (
                "warm = steady-state re-run over populated caches; on a "
                "1-core machine speedups come from memoization, not CPU "
                "scaling (see docs/PARALLELISM.md)"
            ),
        }
        PARALLEL_JSON_PATH.parent.mkdir(parents=True, exist_ok=True)
        PARALLEL_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return report_text


# -- flat-array kernels ----------------------------------------------------------------

#: When set (``make kernels-bench`` / tests), :func:`experiment_kernels`
#: additionally writes its machine-readable results to this JSON file.
KERNELS_JSON_PATH: pathlib.Path | None = None


def experiment_kernels(scale: Scale) -> str:
    """Wall-clock effect of the flat-array kernels on the single-query path.

    Each solver runs the same medium synthetic workload twice — kernels
    forced *off* (the scalar pre-kernel code, kept as the toggle's off
    path) and forced *on* — over one shared index, and per-query result
    **bit-identity** (exact cost equality and identical object ids) is
    asserted before any timing is reported.  A second section
    microbenchmarks individual kernels against the naive scalar loops
    they replace on packed coordinates from the same dataset.

    Timings take the minimum of three interleaved passes per mode on
    whatever machine runs the bench (the JSON records ``cpu_count``);
    the speedups come from removing per-pair attribute chasing, from the
    per-owner :class:`~repro.kernels.DistanceOracle` memoizing distances
    across bisection probes, and from the per-query lens memo replacing
    per-owner index traversals — not from parallelism.
    """
    import json
    import os
    import time

    from repro.algorithms.registry import make_algorithm
    from repro.kernels import flat

    # The medium synthetic workload is pinned (hotel-like at 0.25 scale,
    # densified to ~4 keywords/object, |q.psi| = 9) rather than derived
    # from the preset, so the headline speedup measures the same work at
    # every scale; only the query count and seed follow ``scale``.
    # Densification keeps candidate sets large enough for the distance
    # work — the part the kernels accelerate — to dominate.
    base = _dataset("hotel", 0.25, scale.seed)
    dataset = densify_keywords(base, 4.0, seed=scale.seed)
    k = 9
    queries = generate_queries(dataset, k, scale.queries, seed=scale.seed)
    context = SearchContext(dataset)
    context.index  # build once, outside every timed region

    solver_names = ("maxsum-exact", "dia-exact", "maxsum-appro", "dia-appro")
    passes = 3
    rows = []
    json_rows = []
    speedups: Dict[str, float] = {}
    try:
        for name in solver_names:
            # Min of interleaved passes: both modes see the same machine
            # noise, and the minimum is the stable estimate of the code's
            # actual cost (same convention as timeit).
            timings: Dict[bool, float] = {False: math.inf, True: math.inf}
            outcomes: Dict[bool, list] = {}
            for _ in range(passes):
                for enabled in (False, True):
                    flat.set_enabled(enabled)
                    algo = make_algorithm(name, context)
                    start = time.perf_counter()
                    results = [algo.solve(q) for q in queries]
                    timings[enabled] = min(
                        timings[enabled], time.perf_counter() - start
                    )
                    run = [
                        (r.cost, tuple(sorted(o.oid for o in r.objects)))
                        for r in results
                    ]
                    outcomes.setdefault(enabled, run)
                    assert outcomes[enabled] == run, (
                        "%s is nondeterministic across passes" % name
                    )
            # Bit-identity, not tolerance: the kernels must produce the
            # very same costs and object sets as the scalar path.
            assert outcomes[False] == outcomes[True], (
                "kernels changed %s results" % name
            )
            speedup = timings[False] / timings[True] if timings[True] else math.nan
            speedups[name] = speedup
            row = {
                "solver": name,
                "scalar_s": round(timings[False], 4),
                "kernels_s": round(timings[True], 4),
                "speedup": round(speedup, 2),
            }
            rows.append(row)
            json_rows.append(dict(row, queries=len(queries)))

        micro_rows = _kernel_microbench(dataset)
    finally:
        flat.set_enabled(None)

    report_text = format_kv_table(
        "flat-array kernels: %s, %d queries, |q.psi|=%d (bit-identical results)"
        % (dataset.name, len(queries), k),
        rows,
        key="solver",
    )
    report_text += "\n\n" + format_kv_table(
        "kernel microbenchmarks (packed arrays vs naive scalar loops)",
        micro_rows,
        key="kernel",
    )
    report_text += "\nowner-exact (maxsum) speedup: %.2fx" % speedups["maxsum-exact"]
    if KERNELS_JSON_PATH is not None:
        payload = {
            "dataset": dataset.name,
            "objects": len(dataset),
            "queries": len(queries),
            "query_keywords": k,
            "cpu_count": os.cpu_count(),
            "owner_exact_speedup": round(speedups["maxsum-exact"], 2),
            "solvers": json_rows,
            "kernels": micro_rows,
            "note": (
                "min of %d interleaved passes, one process; both modes "
                "share one prebuilt index and per-query results are "
                "asserted bit-identical before timing is reported (see "
                "docs/PERFORMANCE.md)" % passes
            ),
        }
        KERNELS_JSON_PATH.parent.mkdir(parents=True, exist_ok=True)
        KERNELS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return report_text


def _kernel_microbench(dataset: Dataset) -> List[Dict[str, object]]:
    """Time individual kernels against their naive scalar equivalents."""
    import time

    from repro.kernels import flat

    objects = dataset.objects[:256]
    points = [o.location for o in objects]
    xs, ys = flat.pack_objects(objects)
    anchor = points[0]
    ax, ay = anchor.x, anchor.y
    cap = flat.max_distance_from(ax, ay, xs, ys) * 0.75
    repeats = 40

    def naive_pairwise() -> float:
        best = 0.0
        for i in range(len(points)):
            pi = points[i]
            for j in range(i + 1, len(points)):
                d = pi.distance_to(points[j])
                if d > best:
                    best = d
        return best

    def naive_distances() -> List[float]:
        return [anchor.distance_to(p) for p in points]

    def naive_any_beyond() -> bool:
        return any(anchor.distance_to(p) > cap for p in points)

    def naive_select() -> List[int]:
        return [
            i for i, p in enumerate(points) if anchor.distance_to(p) <= cap
        ]

    cases = (
        ("pairwise_max", naive_pairwise, lambda: flat.pairwise_max(xs, ys)),
        ("distances_from", naive_distances, lambda: flat.distances_from(ax, ay, xs, ys)),
        ("any_beyond", naive_any_beyond, lambda: flat.any_beyond(ax, ay, xs, ys, cap)),
        ("select_within", naive_select, lambda: flat.select_within(ax, ay, xs, ys, cap)),
    )
    rows: List[Dict[str, object]] = []
    for label, naive, kernel in cases:
        start = time.perf_counter()
        for _ in range(repeats):
            naive()
        naive_s = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(repeats):
            kernel()
        kernel_s = time.perf_counter() - start
        rows.append(
            {
                "kernel": label,
                "n": len(points),
                "naive_s": round(naive_s, 4),
                "kernel_s": round(kernel_s, 4),
                "speedup": round(naive_s / kernel_s, 2) if kernel_s else math.nan,
            }
        )
    return rows


# -- keyword signatures ----------------------------------------------------------------

#: When set (``make signatures-bench`` / tests), :func:`experiment_signatures`
#: additionally writes its machine-readable results to this JSON file.
SIGNATURES_JSON_PATH: pathlib.Path | None = None


def experiment_signatures(scale: Scale) -> str:
    """Wall-clock effect of the keyword-bitmap signatures on textual paths.

    Each workload runs twice on one shared prebuilt index — signatures
    forced *off* (the frozenset algebra, kept as the toggle's off path)
    and forced *on* — and **bit-identity** of every per-run outcome
    (costs, object ids, yielded distances) is asserted before any timing
    is reported.  Timings take the minimum of three interleaved passes
    per mode (same convention as ``kernels_study``).

    The workloads separate the end-to-end solver effect (masks are one
    ingredient among many) from the index-level hot paths the masks
    rewrite directly:

    - ``maxsum-exact`` / ``maxsum-appro`` — full solves, pinned workload;
    - ``boolean-knn`` — the IR-tree's covering traversal, where the
      signature path prunes whole subtrees that cannot cover ``q.ψ``
      instead of filtering the relevant-object stream;
    - ``early-break-scan`` — first 10 yields of the linear scan's
      ``nearest_relevant_iter``, where the lazy heap stops paying the
      full sort;
    - ``circle-sweep`` — ``relevant_in_circle`` over the IR-tree with
      mask-pruned nodes and mask-filtered leaves.
    """
    import json
    import os
    import time

    from repro.algorithms.registry import make_algorithm
    from repro.index import signatures

    # Pinned medium workload (hotel-like at 0.25 scale, densified to
    # ~4 keywords/object, |q.psi| = 9), as in ``kernels_study``: the
    # headline numbers measure the same work at every scale; only the
    # query count and seed follow ``scale``.
    base = _dataset("hotel", 0.25, scale.seed)
    dataset = densify_keywords(base, 4.0, seed=scale.seed)
    k = 9
    queries = generate_queries(dataset, k, scale.queries, seed=scale.seed)
    # Covering objects are rare at |q.psi| = 9; boolean kNN gets its own
    # 3-keyword queries so both toggle paths chase real results.
    bool_queries = generate_queries(dataset, 3, scale.queries, seed=scale.seed + 1)
    context = SearchContext(dataset)
    irtree = context.index  # build once, outside every timed region
    linear = LinearScanIndex(dataset)
    circles = [
        Circle(q.location, 2.0 * context.nn_set(q).d_f) for q in queries
    ]

    def solver_workload(name: str):
        def run():
            algo = make_algorithm(name, context)
            return [
                (r.cost, tuple(sorted(o.oid for o in r.objects)))
                for r in (algo.solve(q) for q in queries)
            ]

        return run

    def boolean_knn_workload():
        out = []
        for _ in range(20):
            for q in bool_queries:
                out.append(tuple((d, o.oid) for d, o in irtree.boolean_knn(q, 10)))
        return out

    def early_break_workload():
        out = []
        for _ in range(20):
            for q in queries:
                hits = []
                for d, obj in linear.nearest_relevant_iter(q.location, q.keywords):
                    hits.append((d, obj.oid))
                    if len(hits) == 10:
                        break
                out.append(tuple(hits))
        return out

    def circle_sweep_workload():
        out = []
        for _ in range(20):
            for q, circle in zip(queries, circles):
                out.append(
                    tuple(o.oid for o in irtree.relevant_in_circle(circle, q.keywords))
                )
        return out

    workloads = (
        ("maxsum-exact", solver_workload("maxsum-exact")),
        ("maxsum-appro", solver_workload("maxsum-appro")),
        ("boolean-knn", boolean_knn_workload),
        ("early-break-scan", early_break_workload),
        ("circle-sweep", circle_sweep_workload),
    )
    passes = 3
    rows = []
    json_rows = []
    speedups: Dict[str, float] = {}
    try:
        for label, run in workloads:
            timings: Dict[bool, float] = {False: math.inf, True: math.inf}
            outcomes: Dict[bool, object] = {}
            for _ in range(passes):
                for enabled in (False, True):
                    signatures.set_enabled(enabled)
                    start = time.perf_counter()
                    result = run()
                    timings[enabled] = min(
                        timings[enabled], time.perf_counter() - start
                    )
                    outcomes.setdefault(enabled, result)
                    assert outcomes[enabled] == result, (
                        "%s is nondeterministic across passes" % label
                    )
            # Bit-identity, not tolerance: the signature paths must
            # produce the very same outcomes as the frozenset algebra.
            assert outcomes[False] == outcomes[True], (
                "signatures changed %s results" % label
            )
            speedup = timings[False] / timings[True] if timings[True] else math.nan
            speedups[label] = speedup
            row = {
                "workload": label,
                "baseline_s": round(timings[False], 4),
                "signatures_s": round(timings[True], 4),
                "speedup": round(speedup, 2),
            }
            rows.append(row)
            json_rows.append(dict(row, queries=len(queries)))
    finally:
        signatures.set_enabled(None)

    best = max(speedups, key=lambda label: speedups[label])
    report_text = format_kv_table(
        "keyword signatures: %s, %d queries, |q.psi|=%d (bit-identical results)"
        % (dataset.name, len(queries), k),
        rows,
        key="workload",
    )
    report_text += "\nbest workload speedup: %s at %.2fx" % (best, speedups[best])
    if SIGNATURES_JSON_PATH is not None:
        payload = {
            "dataset": dataset.name,
            "objects": len(dataset),
            "queries": len(queries),
            "query_keywords": k,
            "cpu_count": os.cpu_count(),
            "best_workload": best,
            "best_speedup": round(speedups[best], 2),
            "workloads": json_rows,
            "note": (
                "min of %d interleaved passes, one process; both modes "
                "share one prebuilt index and per-run outcomes are "
                "asserted bit-identical before timing is reported (see "
                "docs/PERFORMANCE.md)" % passes
            ),
        }
        SIGNATURES_JSON_PATH.parent.mkdir(parents=True, exist_ok=True)
        SIGNATURES_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return report_text


# -- the adaptive planner -------------------------------------------------------------

#: When set (``make adaptive-bench`` / tests), :func:`experiment_adaptive`
#: additionally writes its machine-readable results to this JSON file.
ADAPTIVE_JSON_PATH: pathlib.Path | None = None


def experiment_adaptive(scale: Scale) -> str:
    """Appro-seeded exact pruning on the adversarial ladder (docs/ADAPTIVE.md §5).

    Three measurements over one pinned query on the seeding-adversarial
    :func:`~repro.data.generators.ladder_dataset`:

    - ``plain``   — the exact search with no upper bound;
    - ``seeded``  — the appro counterpart runs first and its feasible
      cost is handed to the exact search as ``initial_upper_bound``; the
      seeding pass is timed *inside* the seeded number, so the speedup
      is end-to-end honest;
    - ``planner`` — the full :class:`~repro.adaptive.AdaptivePlanner`
      (features + hardness model + routing) end to end.

    Cost identity between plain and seeded is asserted before any timing
    is reported; every timing is the min of 3 passes.  A second section
    routes a generated hotel-style workload through the planner under a
    deadline and reports the easy/hard split.
    """
    import json
    import time

    from repro.adaptive import AdaptivePlanner
    from repro.adaptive.seeding import compute_seed
    from repro.algorithms.registry import make_algorithm
    from repro.data.generators import WORLD_SIZE, ladder_dataset, ladder_keywords
    from repro.exec.policy import ExecutionPolicy
    from repro.model.query import Query

    algorithm = "maxsum-exact"
    passes = 3
    if scale is QUICK or scale.queries <= QUICK.queries:
        ladder = ladder_dataset(seed=scale.seed)
    else:
        ladder = ladder_dataset(rungs=14, choices=14, seed=scale.seed)
    context = SearchContext(ladder)
    context.index  # build outside every timed pass
    exact = make_algorithm(algorithm, context)
    center = WORLD_SIZE / 2.0
    query = Query.create(center, center, ladder_keywords(ladder, 9))

    def min_of(run: Callable[[], object]) -> float:
        best = math.inf
        for _ in range(passes):
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
        return best

    plain_result = exact.solve(query)
    seed = compute_seed(context, exact.cost, query)
    assert seed is not None, "%s has no structural seeder" % algorithm
    seeded_result = exact.solve(query, initial_upper_bound=seed.cost)
    assert seeded_result.cost == plain_result.cost, (
        "seeding changed the answer: %r vs %r"
        % (seeded_result.cost, plain_result.cost)
    )

    plain_s = min_of(lambda: exact.solve(query))

    def seeded_run() -> None:
        outcome = compute_seed(context, exact.cost, query)
        exact.solve(query, initial_upper_bound=outcome.cost)

    seeded_s = min_of(seeded_run)
    planner = AdaptivePlanner(context, algorithm=algorithm)
    planner_s = min_of(lambda: planner.solve(query))
    speedup = plain_s / seeded_s if seeded_s else math.nan

    rows = [
        {"mode": "plain", "min_s": round(plain_s, 5), "cost": round(plain_result.cost, 4)},
        {"mode": "seeded", "min_s": round(seeded_s, 5), "cost": round(seeded_result.cost, 4)},
        {"mode": "planner", "min_s": round(planner_s, 5), "cost": round(plain_result.cost, 4)},
    ]

    # Routing: a generated hotel-style workload through the planner.
    hotel = _dataset("hotel", min(scale.hotel_scale, 0.12), scale.seed)
    hotel_context = SearchContext(hotel)
    workload = generate_queries(
        hotel, min(scale.keyword_sweep), max(8, scale.queries // 2), seed=scale.seed
    )
    routed = AdaptivePlanner(
        hotel_context,
        algorithm=algorithm,
        policy=ExecutionPolicy(deadline_ms=500.0, always_answer=True),
    )
    routing = {"easy": 0, "hard": 0, "seeded": 0}
    for routed_query in workload:
        stamp = routed.solve(routed_query).provenance
        decision = stamp.planner if stamp is not None else None
        if decision is None:
            continue
        if decision["hard"]:
            routing["hard"] += 1
            if decision["seed_cost"] is not None:
                routing["seeded"] += 1
        else:
            routing["easy"] += 1

    report_text = format_kv_table(
        "adaptive planner: ladder %d objects, |q.psi|=9, %s, min of %d"
        % (len(ladder), algorithm, passes),
        rows,
        key="mode",
    )
    report_text += "\nseeded speedup over plain exact: %.2fx" % speedup
    report_text += "\nrouting on %s (%d queries): %d easy / %d hard (%d seeded)" % (
        hotel.name,
        len(workload),
        routing["easy"],
        routing["hard"],
        routing["seeded"],
    )
    if ADAPTIVE_JSON_PATH is not None:
        payload = {
            "dataset": ladder.name,
            "objects": len(ladder),
            "algorithm": algorithm,
            "query_keywords": 9,
            "passes": passes,
            "plain_s": round(plain_s, 5),
            "seeded_s": round(seeded_s, 5),
            "planner_s": round(planner_s, 5),
            "speedup": round(speedup, 2),
            "cost": plain_result.cost,
            "seed_cost": seed.cost,
            "routing": dict(routing, dataset=hotel.name, queries=len(workload)),
            "note": (
                "seeded_s includes the seeding pass; costs asserted "
                "bit-identical before timing (see docs/ADAPTIVE.md)"
            ),
        }
        ADAPTIVE_JSON_PATH.parent.mkdir(parents=True, exist_ok=True)
        ADAPTIVE_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return report_text


# -- registry -------------------------------------------------------------------------


EXPERIMENTS: Dict[str, Callable[[Scale], str]] = {
    "table1": experiment_table1,
    "maxsum_hotel": lambda s: _sweep_cost_dataset("hotel", "maxsum", s),
    "maxsum_gn": lambda s: _sweep_cost_dataset("gn", "maxsum", s),
    "maxsum_web": lambda s: _sweep_cost_dataset("web", "maxsum", s),
    "dia_hotel": lambda s: _sweep_cost_dataset("hotel", "dia", s),
    "dia_gn": lambda s: _sweep_cost_dataset("gn", "dia", s),
    "dia_web": lambda s: _sweep_cost_dataset("web", "dia", s),
    "ratio_bars": experiment_ratio_bars,
    "scalability": experiment_scalability,
    "okeywords": experiment_okeywords,
    "ablation_pruning": experiment_ablation_pruning,
    "ablation_index": experiment_ablation_index,
    "unified": experiment_unified,
    "parallel_study": experiment_parallel,
    "kernels_study": experiment_kernels,
    "signatures_study": experiment_signatures,
    "adaptive_study": experiment_adaptive,
}


def run_experiment(experiment_id: str, quick: bool = False, scale: Scale | None = None) -> str:
    """Run one experiment and return its text report."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            "unknown experiment %r; known: %s" % (experiment_id, sorted(EXPERIMENTS))
        )
    if scale is None:
        scale = QUICK if quick else FULL
    return EXPERIMENTS[experiment_id](scale)
