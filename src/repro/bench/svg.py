"""Minimal SVG figure rendering for the benchmark reports.

The paper presents its evaluation as line charts (running time vs
|q.ψ|, log-scale y) and bar charts (approximation ratios).  This module
renders :class:`~repro.bench.report.SeriesTable` data to standalone SVG
with nothing but the standard library, so the harness can emit
figure files next to the text tables even in this offline environment.

The output is deliberately simple — axes, ticks, series in distinct
dash patterns with markers, a legend — enough to eyeball the shapes the
reproduction is judged on.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.bench.report import SeriesTable

__all__ = ["render_line_chart", "render_bar_chart"]

WIDTH = 640
HEIGHT = 420
MARGIN_LEFT = 70
MARGIN_RIGHT = 160
MARGIN_TOP = 46
MARGIN_BOTTOM = 56

#: Grayscale-safe stroke styles (color, dash pattern, marker glyph).
SERIES_STYLES = [
    ("#1f77b4", "", "circle"),
    ("#d62728", "6,3", "square"),
    ("#2ca02c", "2,3", "diamond"),
    ("#9467bd", "8,3,2,3", "triangle"),
    ("#8c564b", "1,2", "cross"),
    ("#e377c2", "10,4", "circle"),
]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Roughly ``count`` round tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(count - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for multiplier in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = magnitude * multiplier
        if step >= raw_step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step / 2:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Powers of ten covering [lo, hi]."""
    start = math.floor(math.log10(lo))
    stop = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(start, stop + 1)]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return "%.0e" % value
    return ("%.3f" % value).rstrip("0").rstrip(".")


def _marker(shape: str, x: float, y: float, color: str) -> str:
    size = 4.0
    if shape == "square":
        return '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>' % (
            x - size / 2, y - size / 2, size, size, color,
        )
    if shape == "diamond":
        pts = "%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f" % (
            x, y - size, x + size, y, x, y + size, x - size, y,
        )
        return '<polygon points="%s" fill="%s"/>' % (pts, color)
    if shape == "triangle":
        pts = "%.1f,%.1f %.1f,%.1f %.1f,%.1f" % (
            x, y - size, x + size, y + size, x - size, y + size,
        )
        return '<polygon points="%s" fill="%s"/>' % (pts, color)
    if shape == "cross":
        return (
            '<path d="M%.1f %.1f L%.1f %.1f M%.1f %.1f L%.1f %.1f" '
            'stroke="%s" stroke-width="1.5"/>'
            % (x - size, y - size, x + size, y + size,
               x - size, y + size, x + size, y - size, color)
        )
    return '<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>' % (x, y, size / 1.4, color)


def render_line_chart(table: SeriesTable, log_y: bool = False) -> str:
    """Render a SeriesTable as an SVG line chart (one line per series).

    NaN cells (DNF entries) leave gaps in their series, mirroring how
    the paper omits points for algorithms that did not finish.
    """
    xs = [float(x) for x in table.x_values]
    all_values = _finite([v for series in table.series.values() for v in series])
    if not xs or not all_values:
        return _empty_chart(table.title)
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if log_y:
        positive = [v for v in all_values if v > 0]
        if not positive:
            return _empty_chart(table.title)
        y_lo, y_hi = min(positive), max(positive)
        y_ticks = _log_ticks(y_lo, y_hi)
        y_lo, y_hi = y_ticks[0], y_ticks[-1]

        def y_pos(v: float) -> float:
            span = math.log10(y_hi) - math.log10(y_lo) or 1.0
            frac = (math.log10(v) - math.log10(y_lo)) / span
            return HEIGHT - MARGIN_BOTTOM - frac * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)

    else:
        y_lo = min(all_values + [0.0]) if min(all_values) >= 0 else min(all_values)
        y_hi = max(all_values)
        y_ticks = _nice_ticks(y_lo, y_hi)
        y_lo, y_hi = y_ticks[0], y_ticks[-1]

        def y_pos(v: float) -> float:
            span = (y_hi - y_lo) or 1.0
            frac = (v - y_lo) / span
            return HEIGHT - MARGIN_BOTTOM - frac * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)

    def x_pos(v: float) -> float:
        frac = (v - x_lo) / (x_hi - x_lo)
        return MARGIN_LEFT + frac * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)

    parts: List[str] = [_svg_header(table.title)]
    parts.extend(_axes(x_pos, y_pos, xs, y_ticks, table.x_label, table.unit))
    for idx, (name, values) in enumerate(table.series.items()):
        color, dash, marker = SERIES_STYLES[idx % len(SERIES_STYLES)]
        points: List[Tuple[float, float]] = []
        segments: List[List[Tuple[float, float]]] = [[]]
        for x, v in zip(xs, values):
            if isinstance(v, float) and not math.isfinite(v):
                if segments[-1]:
                    segments.append([])
                continue
            if log_y and v <= 0:
                continue
            pt = (x_pos(x), y_pos(v))
            points.append(pt)
            segments[-1].append(pt)
        for segment in segments:
            if len(segment) >= 2:
                path = " ".join("%.1f,%.1f" % pt for pt in segment)
                parts.append(
                    '<polyline points="%s" fill="none" stroke="%s" '
                    'stroke-width="1.8"%s/>'
                    % (path, color, ' stroke-dasharray="%s"' % dash if dash else "")
                )
        for px, py in points:
            parts.append(_marker(marker, px, py, color))
        legend_y = MARGIN_TOP + 16 * idx
        legend_x = WIDTH - MARGIN_RIGHT + 12
        parts.append(
            '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.8"%s/>'
            % (legend_x, legend_y, legend_x + 22, legend_y, color,
               ' stroke-dasharray="%s"' % dash if dash else "")
        )
        parts.append(_marker(marker, legend_x + 11, legend_y, color))
        parts.append(
            '<text x="%d" y="%d" font-size="11">%s</text>'
            % (legend_x + 28, legend_y + 4, _escape(name))
        )
    parts.append("</svg>")
    return "\n".join(parts)


def render_bar_chart(
    title: str,
    bars: Dict[str, Tuple[float, float, float]],
    y_label: str = "approximation ratio",
) -> str:
    """Render (avg, min, max) ratio bars with error whiskers.

    ``bars`` maps series name → (average, minimum, maximum) — the shape
    of the paper's approximation-ratio charts.
    """
    if not bars:
        return _empty_chart(title)
    y_hi = max(high for _, _, high in bars.values())
    y_ticks = _nice_ticks(1.0, max(y_hi, 1.05))
    y_lo, y_hi = y_ticks[0], y_ticks[-1]

    def y_pos(v: float) -> float:
        span = (y_hi - y_lo) or 1.0
        frac = (v - y_lo) / span
        return HEIGHT - MARGIN_BOTTOM - frac * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)

    plot_width = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    slot = plot_width / len(bars)
    bar_width = slot * 0.5
    parts = [_svg_header(title)]
    # Y axis and ticks.
    parts.append(
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>'
        % (MARGIN_LEFT, MARGIN_TOP, MARGIN_LEFT, HEIGHT - MARGIN_BOTTOM)
    )
    for tick in y_ticks:
        ty = y_pos(tick)
        parts.append(
            '<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>'
            % (MARGIN_LEFT, ty, WIDTH - MARGIN_RIGHT, ty)
        )
        parts.append(
            '<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>'
            % (MARGIN_LEFT - 6, ty + 3, _format_tick(tick))
        )
    parts.append(
        '<text x="16" y="%d" font-size="11" transform="rotate(-90 16 %d)">%s</text>'
        % (HEIGHT // 2, HEIGHT // 2, _escape(y_label))
    )
    for idx, (name, (avg, low, high)) in enumerate(bars.items()):
        color, _, _ = SERIES_STYLES[idx % len(SERIES_STYLES)]
        center = MARGIN_LEFT + slot * (idx + 0.5)
        x0 = center - bar_width / 2
        top = y_pos(avg)
        bottom = y_pos(max(y_lo, min(1.0, avg)))
        base = y_pos(y_lo)
        parts.append(
            '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" '
            'fill-opacity="0.65"/>'
            % (x0, top, bar_width, max(base - top, 0.5), color)
        )
        # min/max whisker
        parts.append(
            '<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>'
            % (center, y_pos(low), center, y_pos(high))
        )
        for whisker in (low, high):
            parts.append(
                '<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>'
                % (center - 5, y_pos(whisker), center + 5, y_pos(whisker))
            )
        parts.append(
            '<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>'
            % (center, HEIGHT - MARGIN_BOTTOM + 16, _escape(name))
        )
        del bottom  # bars are drawn from avg down to the axis floor
    parts.append("</svg>")
    return "\n".join(parts)


def _svg_header(title: str) -> str:
    return (
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" '
        'viewBox="0 0 %d %d" font-family="sans-serif">\n'
        '<rect width="%d" height="%d" fill="white"/>\n'
        '<text x="%d" y="24" font-size="13" font-weight="bold">%s</text>'
        % (WIDTH, HEIGHT, WIDTH, HEIGHT, WIDTH, HEIGHT, MARGIN_LEFT, _escape(title))
    )


def _empty_chart(title: str) -> str:
    return _svg_header(title) + '\n<text x="70" y="200">no data</text>\n</svg>'


def _axes(x_pos, y_pos, xs, y_ticks, x_label: str, unit: str) -> List[str]:
    parts = []
    x_axis_y = HEIGHT - MARGIN_BOTTOM
    parts.append(
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>'
        % (MARGIN_LEFT, x_axis_y, WIDTH - MARGIN_RIGHT, x_axis_y)
    )
    parts.append(
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>'
        % (MARGIN_LEFT, MARGIN_TOP, MARGIN_LEFT, x_axis_y)
    )
    for x in sorted(set(xs)):
        px = x_pos(x)
        parts.append(
            '<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>'
            % (px, x_axis_y, px, x_axis_y + 4)
        )
        parts.append(
            '<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>'
            % (px, x_axis_y + 16, _format_tick(float(x)))
        )
    for tick in y_ticks:
        ty = y_pos(tick)
        parts.append(
            '<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>'
            % (MARGIN_LEFT, ty, WIDTH - MARGIN_RIGHT, ty)
        )
        parts.append(
            '<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>'
            % (MARGIN_LEFT - 6, ty + 3, _format_tick(tick))
        )
    parts.append(
        '<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>'
        % ((MARGIN_LEFT + WIDTH - MARGIN_RIGHT) // 2, HEIGHT - 12, _escape(x_label))
    )
    if unit:
        parts.append(
            '<text x="16" y="%d" font-size="11" transform="rotate(-90 16 %d)">%s</text>'
            % (HEIGHT // 2, HEIGHT // 2, _escape(unit))
        )
    return parts
