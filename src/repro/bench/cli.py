"""The ``coskq-bench`` command line: paper figures + macro benchmarks.

Usage::

    coskq-bench list                 # show available experiment ids
    coskq-bench all --quick          # run every experiment at quick scale
    coskq-bench maxsum_hotel         # one experiment at full scale
    coskq-bench scalability --quick

    coskq-bench run --profile smoke --out run.json   # macro harness
    coskq-bench diff baseline.json candidate.json    # regression gate
    coskq-bench profiles                             # list macro profiles

Experiment reports print to stdout in the table shapes EXPERIMENTS.md
records; the ``run``/``diff``/``profiles`` subcommands forward to the
macro harness (:mod:`repro.tools.macro_cli`, docs/BENCHMARKS.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-bench",
        description="Regenerate the CoSKQ paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'all', or 'list'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets / few queries (minutes instead of hours)",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        default=None,
        help="additionally write SVG figures of each experiment's series",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    if arguments and arguments[0] in ("run", "diff", "profiles"):
        # The macro harness owns these subcommands (no experiment id
        # collides with them); see docs/BENCHMARKS.md.
        from repro.tools.macro_cli import main as macro_main

        return macro_main(arguments)
    args = build_parser().parse_args(arguments)
    if args.svg is not None:
        import pathlib

        from repro.bench import experiments as experiments_module

        experiments_module.FIGURE_DIR = pathlib.Path(args.svg)
    if args.experiment == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in targets:
        if experiment_id not in EXPERIMENTS:
            print(
                "unknown experiment %r; try 'coskq-bench list'" % experiment_id,
                file=sys.stderr,
            )
            return 2
        started = time.perf_counter()
        print("=" * 72)
        print("experiment: %s (%s)" % (experiment_id, "quick" if args.quick else "full"))
        print("=" * 72)
        print(run_experiment(experiment_id, quick=args.quick))
        print("[%s finished in %.1fs]" % (experiment_id, time.perf_counter() - started))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
