"""Measurement plumbing: run algorithms over query workloads.

The paper's evaluation reports two measurements per experimental cell:

- *running time* — average wall time per query for each algorithm,
- *approximation ratio* — per query, approximate cost divided by the
  optimal cost, reported as (average, minimum, maximum) bars.

:func:`time_algorithm` and :func:`ratio_study` produce exactly those,
with feasibility asserted on every result so a silently wrong algorithm
cannot produce a pretty number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.algorithms.base import CoSKQAlgorithm
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.utils.stats import Summary, summarize

__all__ = ["TimingResult", "RatioResult", "time_algorithm", "ratio_study", "solve_all"]


@dataclass(frozen=True)
class TimingResult:
    """Per-algorithm timing over a workload."""

    algorithm: str
    times: Summary
    costs: Summary
    set_sizes: Summary
    results: tuple = field(repr=False, default=())

    @property
    def mean_time(self) -> float:
        return self.times.mean


@dataclass(frozen=True)
class RatioResult:
    """Per-algorithm approximation ratios against an exact reference."""

    algorithm: str
    ratios: Summary
    optimal_fraction: float  # fraction of queries answered exactly


def solve_all(
    algorithm: CoSKQAlgorithm, queries: Sequence[Query]
) -> List[CoSKQResult]:
    """Run one algorithm over all queries, asserting feasibility."""
    out: List[CoSKQResult] = []
    for query in queries:
        result = algorithm.solve(query)
        if not result.is_feasible_for(query):
            raise AssertionError(
                "%s returned an infeasible set for %r" % (algorithm.name, query)
            )
        out.append(result)
    return out


def time_algorithm(
    algorithm: CoSKQAlgorithm,
    queries: Sequence[Query],
    keep_results: bool = True,
) -> TimingResult:
    """Wall-time one algorithm per query (plus cost/set-size summaries)."""
    times: List[float] = []
    results: List[CoSKQResult] = []
    for query in queries:
        started = time.perf_counter()
        result = algorithm.solve(query)
        times.append(time.perf_counter() - started)
        if not result.is_feasible_for(query):
            raise AssertionError(
                "%s returned an infeasible set for %r" % (algorithm.name, query)
            )
        results.append(result)
    return TimingResult(
        algorithm=algorithm.name,
        times=summarize(times),
        costs=summarize([r.cost for r in results]),
        set_sizes=summarize([float(len(r)) for r in results]),
        results=tuple(results) if keep_results else (),
    )


def ratio_study(
    exact: CoSKQAlgorithm,
    approximations: Sequence[CoSKQAlgorithm],
    queries: Sequence[Query],
    tie_tolerance: float = 1e-9,
    optima: Sequence[CoSKQResult] | None = None,
) -> Dict[str, RatioResult]:
    """Approximation ratios of each algorithm against ``exact``.

    ``optimal_fraction`` counts queries where the approximate cost ties
    the optimum within ``tie_tolerance`` (relative) — the paper reports
    e.g. "ratio exactly 1 for more than 90% of queries".  Pass ``optima``
    (results of ``exact`` over the same queries, e.g. from a timing run)
    to avoid solving the exact problem twice.
    """
    if optima is None:
        optima = solve_all(exact, queries)
    out: Dict[str, RatioResult] = {}
    for algorithm in approximations:
        ratios: List[float] = []
        exact_hits = 0
        for query, optimum in zip(queries, optima):
            result = algorithm.solve(query)
            if not result.is_feasible_for(query):
                raise AssertionError(
                    "%s returned an infeasible set for %r" % (algorithm.name, query)
                )
            if optimum.cost <= 0.0:
                ratio = 1.0
            else:
                ratio = result.cost / optimum.cost
            # Guard against the reference being beaten by more than noise,
            # which would mean the "exact" algorithm is not exact.
            if ratio < 1.0 - 1e-6:
                raise AssertionError(
                    "approximation %s beat exact %s on %r (ratio %.9f)"
                    % (algorithm.name, exact.name, query, ratio)
                )
            ratio = max(ratio, 1.0)
            ratios.append(ratio)
            if ratio <= 1.0 + tie_tolerance:
                exact_hits += 1
        out[algorithm.name] = RatioResult(
            algorithm=algorithm.name,
            ratios=summarize(ratios),
            optimal_fraction=exact_hits / len(queries) if queries else 0.0,
        )
    return out
