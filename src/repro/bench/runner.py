"""Measurement plumbing: run algorithms over query workloads.

The paper's evaluation reports two measurements per experimental cell:

- *running time* — average wall time per query for each algorithm,
- *approximation ratio* — per query, approximate cost divided by the
  optimal cost, reported as (average, minimum, maximum) bars.

:func:`time_algorithm` and :func:`ratio_study` produce exactly those,
with feasibility asserted on every result so a silently wrong algorithm
cannot produce a pretty number.

Every entry point here takes a :class:`Solver` — anything with
``solve(query) -> CoSKQResult`` and a ``name`` — so a
:class:`repro.exec.ResilientExecutor` can be timed exactly like a bare
algorithm.  :func:`resilience_study` is the failure-aware variant: it
times a workload under per-query isolation (via
:class:`repro.exec.BatchExecutor`) and reports answered/degraded/failed
splits instead of dying on the first poisoned query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Protocol, Sequence, Tuple

from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.utils.stats import Summary, summarize

__all__ = [
    "Solver",
    "TimingResult",
    "RatioResult",
    "ResilienceResult",
    "time_algorithm",
    "ratio_study",
    "resilience_study",
    "solve_all",
]


class Solver(Protocol):
    """What the measurement plumbing needs from a solver.

    Satisfied by every :class:`~repro.algorithms.base.CoSKQAlgorithm`,
    the network solvers, and :class:`repro.exec.ResilientExecutor`.
    """

    name: str

    def solve(self, query: Query) -> CoSKQResult: ...


@dataclass(frozen=True)
class TimingResult:
    """Per-algorithm timing over a workload."""

    algorithm: str
    times: Summary
    costs: Summary
    set_sizes: Summary
    results: tuple = field(repr=False, default=())

    @property
    def mean_time(self) -> float:
        return self.times.mean


@dataclass(frozen=True)
class RatioResult:
    """Per-algorithm approximation ratios against an exact reference."""

    algorithm: str
    ratios: Summary
    optimal_fraction: float  # fraction of queries answered exactly


@dataclass(frozen=True)
class ResilienceResult:
    """Failure-aware timing over a workload (per-query isolation).

    Unlike :class:`TimingResult`, a query that fails does not abort the
    study: it is counted in ``failed`` and its failure detail kept in
    ``failures`` (tuples of ``(query index, error type, message)``).
    ``times`` summarizes only the answered queries.
    """

    algorithm: str
    times: Summary
    answered: int
    degraded: int
    failed: int
    failures: Tuple[Tuple[int, str, str], ...] = field(repr=False, default=())

    @property
    def total(self) -> int:
        return self.answered + self.failed

    def summary(self) -> str:
        return "%s: %d/%d answered (%d degraded, %d failed)" % (
            self.algorithm,
            self.answered,
            self.total,
            self.degraded,
            self.failed,
        )


def solve_all(
    algorithm: Solver, queries: Sequence[Query]
) -> List[CoSKQResult]:
    """Run one algorithm over all queries, asserting feasibility."""
    out: List[CoSKQResult] = []
    for query in queries:
        result = algorithm.solve(query)
        if not result.is_feasible_for(query):
            raise AssertionError(
                "%s returned an infeasible set for %r" % (algorithm.name, query)
            )
        out.append(result)
    return out


def time_algorithm(
    algorithm: Solver,
    queries: Sequence[Query],
    keep_results: bool = True,
) -> TimingResult:
    """Wall-time one algorithm per query (plus cost/set-size summaries)."""
    times: List[float] = []
    results: List[CoSKQResult] = []
    for query in queries:
        started = time.perf_counter()
        result = algorithm.solve(query)
        times.append(time.perf_counter() - started)
        if not result.is_feasible_for(query):
            raise AssertionError(
                "%s returned an infeasible set for %r" % (algorithm.name, query)
            )
        results.append(result)
    return TimingResult(
        algorithm=algorithm.name,
        times=summarize(times),
        costs=summarize([r.cost for r in results]),
        set_sizes=summarize([float(len(r)) for r in results]),
        results=tuple(results) if keep_results else (),
    )


def ratio_study(
    exact: Solver,
    approximations: Sequence[Solver],
    queries: Sequence[Query],
    tie_tolerance: float = 1e-9,
    optima: Sequence[CoSKQResult] | None = None,
) -> Dict[str, RatioResult]:
    """Approximation ratios of each algorithm against ``exact``.

    ``optimal_fraction`` counts queries where the approximate cost ties
    the optimum within ``tie_tolerance`` (relative) — the paper reports
    e.g. "ratio exactly 1 for more than 90% of queries".  Pass ``optima``
    (results of ``exact`` over the same queries, e.g. from a timing run)
    to avoid solving the exact problem twice.
    """
    if optima is None:
        optima = solve_all(exact, queries)
    out: Dict[str, RatioResult] = {}
    for algorithm in approximations:
        ratios: List[float] = []
        exact_hits = 0
        for query, optimum in zip(queries, optima):
            result = algorithm.solve(query)
            if not result.is_feasible_for(query):
                raise AssertionError(
                    "%s returned an infeasible set for %r" % (algorithm.name, query)
                )
            if optimum.cost <= 0.0:
                ratio = 1.0
            else:
                ratio = result.cost / optimum.cost
            # Guard against the reference being beaten by more than noise,
            # which would mean the "exact" algorithm is not exact.
            if ratio < 1.0 - 1e-6:
                raise AssertionError(
                    "approximation %s beat exact %s on %r (ratio %.9f)"
                    % (algorithm.name, exact.name, query, ratio)
                )
            ratio = max(ratio, 1.0)
            ratios.append(ratio)
            if ratio <= 1.0 + tie_tolerance:
                exact_hits += 1
        out[algorithm.name] = RatioResult(
            algorithm=algorithm.name,
            ratios=summarize(ratios),
            optimal_fraction=exact_hits / len(queries) if queries else 0.0,
        )
    return out


def resilience_study(
    solver: Solver, queries: Sequence[Query]
) -> ResilienceResult:
    """Time a workload under per-query isolation.

    Each query is timed individually; a failing query is recorded rather
    than propagated, so one poisoned query cannot sink the whole study.
    A result whose provenance says ``degraded`` (see
    :class:`repro.exec.ExecutionProvenance`) counts toward ``degraded``
    as well as ``answered``.
    """
    from repro.exec import BatchExecutor

    per_query: List[float] = []

    class _Timed:
        name = solver.name

        def solve(self, query: Query) -> CoSKQResult:
            started = time.perf_counter()
            try:
                return solver.solve(query)
            finally:
                per_query.append(time.perf_counter() - started)

    report = BatchExecutor(_Timed()).run(queries)
    # Only answered queries contribute a timing sample: a failed attempt
    # measures the failure path, not the algorithm.
    answered_times = [
        per_query[i]
        for i, result in enumerate(report.results)
        if result is not None
    ]
    return ResilienceResult(
        algorithm=solver.name,
        times=summarize(answered_times)
        if answered_times
        else Summary(mean=0.0, minimum=0.0, maximum=0.0, count=0),
        answered=report.answered,
        degraded=report.degraded,
        failed=report.failed,
        failures=tuple(
            (f.index, f.error_type, f.message) for f in report.failures
        ),
    )
