"""Execute a macro-benchmark profile into one schema-valid summary dict.

The runner owns the measurement discipline:

- **Index builds are not query latency.**  One
  :class:`~repro.algorithms.base.SearchContext` is built per dataset and
  shared by every workload over it; the build is timed separately and
  reported as ``index_build_s`` on the dataset entry.
- **Cold vs warm is explicit.**  A ``cold`` workload times the first
  (and only) pass over its queries against uncached state.  A ``warm``
  workload layers :class:`~repro.index.cache.CachingIndex` +
  :class:`~repro.parallel.cache.ResultCache` over the same context, runs
  one untimed priming pass, then times the second pass — and reports the
  cache counters so hit rates are visible in the summary.
- **Toggles are scoped.**  Kernels/signatures are forced per workload
  via :func:`repro.kernels.set_enabled` /
  :func:`repro.index.signatures.set_enabled` and restored to environment
  control afterwards, even on failure.
- **Failures never abort a run.**  A query that raises a typed CoSKQ
  error is counted in ``failures`` and excluded from the latency sample;
  an unexpected exception still propagates (a broken harness must not
  produce a pretty number).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from collections import Counter
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.algorithms.base import SearchContext
from repro.algorithms.registry import make_algorithm
from repro.bench.macro.aggregate import LatencyAccumulator, throughput_qps
from repro.bench.macro.datasets import DatasetCache
from repro.bench.macro.schema import SCHEMA_VERSION, assert_valid
from repro.bench.macro.workloads import Profile, WorkloadSpec, profile_by_name
from repro.data.queries import generate_queries
from repro.errors import CoSKQError
from repro.index import signatures
from repro.index.cache import CachingIndex
from repro.kernels import flat as kernels_flat
from repro.kernels.flat import kernels_enabled
from repro.model.dataset import Dataset
from repro.model.query import Query
from repro.parallel.cache import CachedSolver, ResultCache
from repro.parallel.executor import ParallelBatchExecutor
from repro.parallel.spec import CacheSpec, SolverSpec, WorkerEnv

__all__ = ["run_profile"]

Echo = Optional[Callable[[str], None]]


def _say(echo: Echo, message: str) -> None:
    if echo is not None:
        echo(message)


class _Toggles:
    """Force kernels/signatures for one workload; always restore."""

    def __init__(self, kernels_on: bool, signatures_on: bool):
        self.kernels_on = kernels_on
        self.signatures_on = signatures_on

    def __enter__(self) -> "_Toggles":
        kernels_flat.set_enabled(self.kernels_on)
        signatures.set_enabled(self.signatures_on)
        return self

    def __exit__(self, *exc_info: object) -> None:
        kernels_flat.set_enabled(None)
        signatures.set_enabled(None)


def _timed_pass(
    solve: Callable[[Query], object],
    queries: List[Query],
    provenance: "Counter[str]",
) -> Tuple[LatencyAccumulator, int, float]:
    """Time ``solve`` per query; returns (latencies, failures, wall_s)."""
    latencies = LatencyAccumulator()
    failures = 0
    pass_started = time.perf_counter()
    for query in queries:
        started = time.perf_counter()
        try:
            result = solve(query)
        except CoSKQError as exc:
            failures += 1
            provenance["failed:%s" % type(exc).__name__] += 1
            continue
        latencies.add((time.perf_counter() - started) * 1_000.0)
        _count_provenance(result, provenance)
    return latencies, failures, time.perf_counter() - pass_started


def _count_provenance(result: object, provenance: "Counter[str]") -> None:
    """Tally who answered: the chain stage when stamped, else the solver."""
    stamp = getattr(result, "provenance", None)
    if stamp is not None:
        provenance[getattr(stamp, "answered_by", "unknown")] += 1
        if getattr(stamp, "degraded", False):
            provenance["degraded"] += 1
    elif hasattr(result, "algorithm"):
        provenance[result.algorithm] += 1


def _solver_workload(
    spec: WorkloadSpec, context: SearchContext, queries: List[Query]
) -> Dict[str, object]:
    provenance: "Counter[str]" = Counter()
    cache_stats: Optional[Dict[str, int]] = None
    if spec.cache == "warm":
        index_cache = CachingIndex(context.index)
        warm_context = context.with_index(index_cache)
        result_cache = ResultCache()
        solver = CachedSolver(
            make_algorithm(spec.solver, warm_context), result_cache
        )
        for query in queries:  # priming pass, untimed
            solver.solve(query)
        latencies, failures, wall_s = _timed_pass(solver.solve, queries, provenance)
        cache_stats = {}
        cache_stats.update(index_cache.stats_dict("index_"))
        cache_stats.update(result_cache.stats_dict("result_"))
    else:
        solver = make_algorithm(spec.solver, context)
        latencies, failures, wall_s = _timed_pass(solver.solve, queries, provenance)
    return _workload_entry(spec, latencies, failures, wall_s, provenance, cache_stats)


def _chain_workload(
    spec: WorkloadSpec, context: SearchContext, queries: List[Query]
) -> Dict[str, object]:
    executor = SolverSpec(
        chain=spec.solver, deadline_ms=spec.deadline_ms, always_answer=True
    ).build(context)
    provenance: "Counter[str]" = Counter()
    latencies, failures, wall_s = _timed_pass(executor.solve, queries, provenance)
    return _workload_entry(spec, latencies, failures, wall_s, provenance, None)


def _knn_workload(
    spec: WorkloadSpec, context: SearchContext, queries: List[Query]
) -> Dict[str, object]:
    index = context.index
    provenance: "Counter[str]" = Counter()

    def solve(query: Query) -> object:
        neighbors = index.boolean_knn(query, spec.k)
        provenance["returned:%d" % len(neighbors)] += 1
        return neighbors

    latencies = LatencyAccumulator()
    failures = 0
    pass_started = time.perf_counter()
    for query in queries:
        started = time.perf_counter()
        solve(query)
        latencies.add((time.perf_counter() - started) * 1_000.0)
    wall_s = time.perf_counter() - pass_started
    return _workload_entry(spec, latencies, failures, wall_s, provenance, None)


def _batch_workload(
    spec: WorkloadSpec, dataset: Dataset, queries: List[Query]
) -> Dict[str, object]:
    env = WorkerEnv(dataset=dataset, cache=CacheSpec(mode="index"))
    solver_spec = SolverSpec(algorithm=spec.solver)
    provenance: "Counter[str]" = Counter()
    with ParallelBatchExecutor(env, solver_spec, workers=spec.workers) as executor:
        executor.run([])  # force pool + worker runtimes up before timing
        started = time.perf_counter()
        report = executor.run(queries)
        wall_s = time.perf_counter() - started
    for result in report.results:
        if result is not None:
            _count_provenance(result, provenance)
    entry = _workload_entry(
        spec,
        LatencyAccumulator(),
        len(report.failures),
        wall_s,
        provenance,
        dict(report.cache_stats) if report.cache_stats else None,
    )
    entry["latency_ms"] = None  # per-query wall is worker-local; batch reports throughput
    return entry


def _sharded_workload(
    spec: WorkloadSpec,
    dataset: Dataset,
    context: SearchContext,
    queries: List[Query],
) -> Dict[str, object]:
    """Paired measurement: the scatter-gather engine vs the single tree.

    Both passes run the same registry solver over the same query list.
    The sharded pass is the one the latency sample and throughput
    describe; the single-index pass (over the dataset's shared context,
    whose build the runner already excluded from query latency) is
    wall-clocked back to back, so the two numbers see the same machine
    state and their ratio is drift-free.  The ratio lands in provenance
    as ``speedup_pct`` (volatile, so the golden file never pins one
    machine's number); the shard build is reported separately as
    ``shard_build_s``, mirroring the dataset entries' ``index_build_s``
    discipline that index construction is not query latency.
    """
    from repro.shard import ScatterGather, ShardedIndexFactory

    provenance: "Counter[str]" = Counter()
    build_started = time.perf_counter()
    sharded_context = SearchContext(
        dataset, index_cls=ShardedIndexFactory(spec.shards)
    )
    sharded_context.index  # build outside the timed pass
    shard_build_s = time.perf_counter() - build_started
    engine = ScatterGather(sharded_context, spec.solver)

    def solve(query: Query) -> object:
        result = engine.solve(query)
        counters = result.counters
        for key in (
            "shards_total",
            "shards_scanned",
            "shards_pruned_mask",
            "shards_pruned_bound",
        ):
            provenance[key] += counters.get(key, 0)
        if counters.get("shards_scanned", 0) < counters.get("shards_total", 0):
            provenance["queries_with_pruning"] += 1
        return result

    latencies, failures, wall_s = _timed_pass(solve, queries, provenance)

    baseline = make_algorithm(spec.solver, context)
    baseline_started = time.perf_counter()
    for query in queries:
        try:
            baseline.solve(query)
        except CoSKQError:
            provenance["baseline_failed"] += 1
    baseline_wall_s = time.perf_counter() - baseline_started
    if wall_s > 0.0:
        provenance["speedup_pct"] = int(round(100.0 * baseline_wall_s / wall_s))
    entry = _workload_entry(spec, latencies, failures, wall_s, provenance, None)
    entry["shard_build_s"] = shard_build_s
    entry["baseline_wall_s"] = baseline_wall_s
    return entry


def _adaptive_workload(
    spec: WorkloadSpec, context: SearchContext, queries: List[Query]
) -> Dict[str, object]:
    """The feature-driven planner over its exact target solver.

    Provenance counts the planner's routing (``planned_hard`` /
    ``planned_easy`` / ``planned_seeded``) alongside the usual
    answered-by tallies, so a profile diff shows routing drift as well
    as latency drift.
    """
    from repro.adaptive import AdaptivePlanner
    from repro.exec.policy import ExecutionPolicy

    policy = None
    if spec.deadline_ms is not None:
        policy = ExecutionPolicy(deadline_ms=spec.deadline_ms, always_answer=True)
    planner = AdaptivePlanner(context, algorithm=spec.solver, policy=policy)
    provenance: "Counter[str]" = Counter()

    def solve(query: Query) -> object:
        result = planner.solve(query)
        stamp = getattr(result, "provenance", None)
        decision = stamp.planner if stamp is not None else None
        if decision is not None:
            if decision.get("hard"):
                provenance["planned_hard"] += 1
                if decision.get("seed_cost") is not None:
                    provenance["planned_seeded"] += 1
            else:
                provenance["planned_easy"] += 1
        return result

    latencies, failures, wall_s = _timed_pass(solve, queries, provenance)
    return _workload_entry(spec, latencies, failures, wall_s, provenance, None)


def _workload_entry(
    spec: WorkloadSpec,
    latencies: LatencyAccumulator,
    failures: int,
    wall_s: float,
    provenance: "Counter[str]",
    cache_stats: Optional[Dict[str, int]],
) -> Dict[str, object]:
    completed = spec.queries - failures
    return {
        "id": spec.id,
        "dataset": spec.dataset,
        "kind": spec.kind,
        "solver": spec.solver,
        "cache": spec.cache,
        "toggles": {"kernels": spec.kernels, "signatures": spec.signatures},
        "queries": spec.queries,
        "num_keywords": spec.num_keywords,
        "shards": spec.shards,
        "failures": failures,
        "wall_s": wall_s,
        "throughput_qps": throughput_qps(completed, wall_s),
        "latency_ms": latencies.summary() if len(latencies) else None,
        "provenance": dict(sorted(provenance.items())),
        "cache_stats": cache_stats,
    }


def _run_workload(
    spec: WorkloadSpec,
    dataset: Dataset,
    context: SearchContext,
    queries: List[Query],
) -> Dict[str, object]:
    with _Toggles(spec.kernels, spec.signatures):
        if spec.kind == "batch":
            return _batch_workload(spec, dataset, queries)
        if spec.kind == "sharded":
            return _sharded_workload(spec, dataset, context, queries)
        if spec.kind == "adaptive":
            return _adaptive_workload(spec, context, queries)
        if spec.kind == "boolean-knn":
            return _knn_workload(spec, context, queries)
        if spec.kind == "chain":
            return _chain_workload(spec, context, queries)
        return _solver_workload(spec, context, queries)


def run_profile(
    profile: Union[str, Profile],
    *,
    cache_dir: Optional[str | Path] = None,
    out: Optional[str | Path] = None,
    echo: Echo = None,
) -> Dict[str, object]:
    """Run every workload of ``profile``; return (and optionally write)
    the schema-valid summary document."""
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    run_started = time.perf_counter()
    cache = DatasetCache(cache_dir)

    datasets: Dict[str, Dataset] = {}
    contexts: Dict[str, SearchContext] = {}
    dataset_entries: List[Dict[str, object]] = []
    for spec in profile.datasets:
        dataset, meta = cache.materialize(spec)
        _say(
            echo,
            "dataset %s: %d objects (%s, %.2fs)"
            % (spec.name, len(dataset), meta["cache"], meta["generate_s"]),
        )
        build_started = time.perf_counter()
        context = SearchContext(dataset)
        context.index  # build now so workload latencies never pay for it
        index_build_s = time.perf_counter() - build_started
        datasets[spec.name] = dataset
        contexts[spec.name] = context
        dataset_entries.append(
            {
                "name": spec.name,
                "kind": spec.kind,
                "objects": len(dataset),
                "content_hash": meta["content_hash"],
                "cache": meta["cache"],
                "generate_s": meta["generate_s"],
                "index_build_s": index_build_s,
                "path": meta["path"],
            }
        )

    workload_entries: List[Dict[str, object]] = []
    for spec in profile.workloads:
        dataset = datasets[spec.dataset]
        queries = generate_queries(
            dataset, spec.num_keywords, spec.queries, seed=profile.seed
        )
        workload_started = time.perf_counter()
        entry = _run_workload(spec, dataset, contexts[spec.dataset], queries)
        _say(
            echo,
            "workload %-36s %5.2fs  %s"
            % (
                spec.id,
                time.perf_counter() - workload_started,
                "%.1f q/s" % entry["throughput_qps"],
            ),
        )
        workload_entries.append(entry)

    summary: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "profile": profile.name,
        "seed": profile.seed,
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "kernels": kernels_enabled(),
            "signatures": signatures.signatures_enabled(),
        },
        "datasets": dataset_entries,
        "workloads": workload_entries,
        "totals": {
            "wall_s": time.perf_counter() - run_started,
            "queries": sum(w.queries for w in profile.workloads),
            "workloads": len(profile.workloads),
        },
    }
    assert_valid(summary)
    if out is not None:
        out = Path(out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        _say(echo, "summary written to %s" % out)
    return summary
