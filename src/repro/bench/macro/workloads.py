"""Pinned workload mixes and the smoke / quick / full profiles.

A *workload* is one measured cell: a dataset, a way of querying it
(registry solver, fallback chain, boolean-kNN index op, a parallel
batch, the sharded scatter-gather engine, or the adaptive planner), a
cache temperature, and the kernels/signatures toggles.  A
*profile* pins datasets + workloads + seed, so two runs of the same
profile measure byte-identical work — which is what makes the diff gate
meaningful.

Four profiles ship (docs/BENCHMARKS.md):

- ``smoke`` — seconds; runs inside tier-1 on every ``pytest``, so the
  harness itself can never rot.
- ``quick`` — a couple of minutes; the development loop profile.
- ``full``  — the production ladder: GN-shaped data at 10k → 1M objects
  plus hotel/web corpora at paper-like scale.
- ``shard`` — only the paired sharded-vs-single cells at 100k and 1M;
  the profile behind ``BENCH_shard.json`` (docs/SHARDING.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bench.macro.datasets import DatasetSpec
from repro.bench.macro.schema import WORKLOAD_KINDS
from repro.errors import InvalidParameterError

__all__ = ["WorkloadSpec", "Profile", "PROFILES", "profile_by_name"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One measured cell of a profile (see module docstring)."""

    id: str
    dataset: str
    kind: str = "solver"
    #: Registry algorithm name; for ``kind="chain"`` a comma-separated
    #: fallback chain spec (strongest stage first).
    solver: str = "maxsum-appro"
    num_keywords: int = 6
    queries: int = 8
    cache: str = "cold"
    kernels: bool = True
    signatures: bool = True
    #: ``boolean-knn`` only: result-set size.
    k: int = 5
    #: ``batch`` only: process-pool width.
    workers: int = 2
    #: ``chain`` only: per-query deadline.
    deadline_ms: Optional[float] = None
    #: ``sharded`` only: STR shard count for the scatter-gather engine.
    shards: int = 0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise InvalidParameterError(
                "unknown workload kind %r; known: %s" % (self.kind, list(WORKLOAD_KINDS))
            )
        if self.cache not in ("cold", "warm"):
            raise InvalidParameterError("cache must be 'cold' or 'warm'")
        for count_field in ("queries", "num_keywords", "k", "workers"):
            if getattr(self, count_field) < 1:
                raise InvalidParameterError("%s must be >= 1" % count_field)
        if self.shards < 0:
            raise InvalidParameterError("shards must be >= 0")
        if self.kind == "sharded" and self.shards < 1:
            raise InvalidParameterError("sharded workloads need shards >= 1")


@dataclass(frozen=True)
class Profile:
    """A pinned benchmark plan: datasets, workloads, one seed."""

    name: str
    description: str
    datasets: Tuple[DatasetSpec, ...]
    workloads: Tuple[WorkloadSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        names = {spec.name for spec in self.datasets}
        if len(names) != len(self.datasets):
            raise InvalidParameterError("profile %r has duplicate dataset names" % self.name)
        ids = [w.id for w in self.workloads]
        if len(set(ids)) != len(ids):
            raise InvalidParameterError("profile %r has duplicate workload ids" % self.name)
        for workload in self.workloads:
            if workload.dataset not in names:
                raise InvalidParameterError(
                    "workload %r references unknown dataset %r"
                    % (workload.id, workload.dataset)
                )


def _mixed_workloads(
    main: str,
    small: str,
    *,
    queries: int,
    exact_queries: int,
    num_keywords: int,
    batch_queries: int,
    workers: int,
    chain_deadline_ms: float,
) -> Tuple[WorkloadSpec, ...]:
    """The pinned workload mix every profile shares, scaled by counts.

    ``main`` hosts the fast paths, ``small`` the exponential exact
    search.  The mix covers the matrix the tentpole names: boolean-knn,
    appro, small exact, dia, a fallback chain (provenance counts), a
    parallel batch, cold vs warm, and kernels/signatures ablations.
    """
    return (
        WorkloadSpec(
            id="boolean-knn/cold",
            dataset=main,
            kind="boolean-knn",
            solver="boolean-knn",
            num_keywords=2,
            queries=queries,
            k=5,
        ),
        WorkloadSpec(
            id="maxsum-appro/cold",
            dataset=main,
            solver="maxsum-appro",
            num_keywords=num_keywords,
            queries=queries,
        ),
        WorkloadSpec(
            id="maxsum-appro/warm",
            dataset=main,
            solver="maxsum-appro",
            num_keywords=num_keywords,
            queries=queries,
            cache="warm",
        ),
        WorkloadSpec(
            id="maxsum-appro/cold/kernels-off",
            dataset=main,
            solver="maxsum-appro",
            num_keywords=num_keywords,
            queries=queries,
            kernels=False,
        ),
        WorkloadSpec(
            id="maxsum-appro/cold/signatures-off",
            dataset=main,
            solver="maxsum-appro",
            num_keywords=num_keywords,
            queries=queries,
            signatures=False,
        ),
        WorkloadSpec(
            id="dia-appro/cold",
            dataset=main,
            solver="dia-appro",
            num_keywords=num_keywords,
            queries=queries,
        ),
        WorkloadSpec(
            id="maxsum-exact-small/cold",
            dataset=small,
            solver="maxsum-exact",
            num_keywords=4,
            queries=exact_queries,
        ),
        WorkloadSpec(
            id="chain-exact-appro/cold",
            dataset=main,
            kind="chain",
            solver="maxsum-exact,maxsum-appro",
            num_keywords=num_keywords,
            queries=exact_queries,
            deadline_ms=chain_deadline_ms,
        ),
        WorkloadSpec(
            id="batch-parallel/cold",
            dataset=main,
            kind="batch",
            solver="maxsum-appro",
            num_keywords=num_keywords,
            queries=batch_queries,
            workers=workers,
        ),
        WorkloadSpec(
            id="sharded/maxsum-appro/cold",
            dataset=main,
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=num_keywords,
            queries=queries,
            shards=8,
        ),
    )


_SMOKE = Profile(
    name="smoke",
    description="seconds-scale harness self-test; runs inside tier-1",
    datasets=(
        DatasetSpec(name="smoke-hotel", kind="hotel", size=900, seed=7),
        DatasetSpec(name="smoke-small", kind="uniform", size=300, seed=7),
    ),
    workloads=_mixed_workloads(
        "smoke-hotel",
        "smoke-small",
        queries=8,
        exact_queries=4,
        num_keywords=6,
        batch_queries=12,
        workers=2,
        chain_deadline_ms=250.0,
    )
    + (
        # The adaptive planner rides the small dataset (its target is the
        # exponential exact search) — kept out of _mixed_workloads so the
        # full profile never gains an unbounded exact cell.
        WorkloadSpec(
            id="adaptive/maxsum-exact/cold",
            dataset="smoke-small",
            kind="adaptive",
            solver="maxsum-exact",
            num_keywords=4,
            queries=4,
        ),
    ),
    seed=7,
)

_QUICK = Profile(
    name="quick",
    description="minutes-scale development profile (10k-object corpora)",
    datasets=(
        DatasetSpec(name="quick-gn-10k", kind="gn", size=10_000, seed=7),
        DatasetSpec(name="quick-small", kind="uniform", size=2_000, seed=7),
        DatasetSpec(name="quick-gn-100k", kind="gn", size=100_000, seed=7),
    ),
    workloads=_mixed_workloads(
        "quick-gn-10k",
        "quick-small",
        queries=32,
        exact_queries=8,
        num_keywords=6,
        batch_queries=64,
        workers=2,
        chain_deadline_ms=1_000.0,
    )
    + (
        WorkloadSpec(
            id="sharded-100k",
            dataset="quick-gn-100k",
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=6,
            queries=16,
            shards=64,
        ),
        WorkloadSpec(
            id="adaptive/maxsum-exact/cold",
            dataset="quick-small",
            kind="adaptive",
            solver="maxsum-exact",
            num_keywords=4,
            queries=8,
        ),
    ),
    seed=7,
)


def _full_workloads() -> Tuple[WorkloadSpec, ...]:
    """The production ladder: the shared mix at 100k plus a 10k → 1M sweep."""
    out = list(
        _mixed_workloads(
            "full-gn-100k",
            "full-hotel",
            queries=100,
            exact_queries=20,
            num_keywords=6,
            batch_queries=200,
            workers=4,
            chain_deadline_ms=2_000.0,
        )
    )
    for dataset in ("full-gn-10k", "full-gn-100k", "full-gn-1m"):
        out.append(
            WorkloadSpec(
                id="scaling/maxsum-appro/%s" % dataset.removeprefix("full-gn-"),
                dataset=dataset,
                solver="maxsum-appro",
                num_keywords=6,
                queries=50,
            )
        )
        out.append(
            WorkloadSpec(
                id="scaling/boolean-knn/%s" % dataset.removeprefix("full-gn-"),
                dataset=dataset,
                kind="boolean-knn",
                solver="boolean-knn",
                num_keywords=2,
                queries=100,
                k=10,
            )
        )
    out.append(
        WorkloadSpec(
            id="sharded-100k",
            dataset="full-gn-100k",
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=6,
            queries=32,
            shards=64,
        )
    )
    for shards in (16, 256):  # shard-count sweep around the 64-shard pin
        out.append(
            WorkloadSpec(
                id="sharded-100k/s%d" % shards,
                dataset="full-gn-100k",
                kind="sharded",
                solver="maxsum-appro",
                num_keywords=6,
                queries=16,
                shards=shards,
            )
        )
    out.append(
        WorkloadSpec(
            id="sharded-1m",
            dataset="full-gn-1m",
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=6,
            queries=8,
            shards=64,
        )
    )
    return tuple(out)


_FULL = Profile(
    name="full",
    description="production-scale ladder: GN-shaped 10k / 100k / 1M objects",
    datasets=(
        DatasetSpec(name="full-gn-10k", kind="gn", size=10_000, seed=7),
        DatasetSpec(name="full-gn-100k", kind="gn", size=100_000, seed=7),
        DatasetSpec(name="full-gn-1m", kind="gn", size=1_000_000, seed=7),
        DatasetSpec(name="full-hotel", kind="hotel", size=20_790, seed=7),
    ),
    workloads=_full_workloads(),
    seed=7,
)

_SHARD = Profile(
    name="shard",
    description="sharded scatter-gather vs single IR-tree: paired 100k / 1M cells",
    datasets=(
        DatasetSpec(name="shard-gn-100k", kind="gn", size=100_000, seed=7),
        DatasetSpec(name="shard-gn-1m", kind="gn", size=1_000_000, seed=7),
    ),
    workloads=(
        WorkloadSpec(
            id="sharded-100k",
            dataset="shard-gn-100k",
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=6,
            queries=32,
            shards=64,
        ),
        WorkloadSpec(
            id="sharded-100k/s16",
            dataset="shard-gn-100k",
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=6,
            queries=16,
            shards=16,
        ),
        WorkloadSpec(
            id="sharded-100k/s256",
            dataset="shard-gn-100k",
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=6,
            queries=16,
            shards=256,
        ),
        WorkloadSpec(
            id="sharded-1m",
            dataset="shard-gn-1m",
            kind="sharded",
            solver="maxsum-appro",
            num_keywords=6,
            queries=8,
            shards=64,
        ),
    ),
    seed=7,
)

#: The registry ``coskq-bench run --profile <name>`` resolves against.
PROFILES: Dict[str, Profile] = {
    profile.name: profile for profile in (_SMOKE, _QUICK, _FULL, _SHARD)
}


def profile_by_name(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        raise InvalidParameterError(
            "unknown profile %r; known: %s" % (name, sorted(PROFILES))
        ) from None
