"""Pinned, scalable benchmark datasets with a content-addressed disk cache.

A macro benchmark is only comparable across runs (and across machines)
if the data is *pinned*: same spec ⇒ byte-identical dataset.  The specs
here reuse the zipf generator machinery (:mod:`repro.data.generators`)
and the paper's scaling recipe (:func:`repro.data.augment.scale_dataset`)
to reach 10k → 1M objects deterministically, and every materialized
dataset is identified by the SHA-256 of its canonical text serialization.

Two subtleties this module exists to get right:

- **Id pinning.**  :meth:`Dataset.from_records` assigns keyword ids in
  encounter order, so a dataset *reloaded* from disk can carry different
  keyword ids than the dataset as generated (the text format stores
  words, not ids) — and query generation samples keyword *ids*.  To make
  cache hits and cache misses produce identical workloads, a cache miss
  generates, writes, and then **reloads from the written file**, so both
  paths hand out the round-tripped dataset.
- **Hash = file bytes.**  :func:`content_hash` hashes exactly the bytes
  :meth:`Dataset.dump` writes, so the hash of an in-memory dataset, the
  hash of its cache file, and the hash recomputed by a forked worker all
  agree (the determinism contract ``tests/test_bench_macro_datasets.py``
  locks down).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.data.augment import scale_dataset
from repro.data.generators import GeneratorProfile, generate_profile
from repro.errors import DatasetFormatError, InvalidParameterError
from repro.model.dataset import Dataset

__all__ = [
    "DEFAULT_CACHE_DIR",
    "PROFILE_KINDS",
    "DatasetCache",
    "DatasetSpec",
    "build_dataset",
    "content_hash",
    "spec_content_hash",
]

#: Default on-disk home of materialized datasets (overridable per run
#: with ``--cache-dir`` or the ``COSKQ_BENCH_CACHE`` environment
#: variable).  Git-ignored; safe to delete at any time.
DEFAULT_CACHE_DIR = ".coskq_bench_cache"

#: Corpus shapes a spec may ask for.  ``hotel``/``gn``/``web`` mirror the
#: paper's three corpora (vocabulary size, keyword density, skew,
#: clumping — see :mod:`repro.data.generators`); ``uniform`` is the
#: cluster-free control.
PROFILE_KINDS = ("hotel", "gn", "web", "uniform")

#: Above this size, objects are generated organically up to the cap and
#: then grown with the paper's scaling recipe (sample an existing
#: location + an existing keyword document) — exactly how the paper
#: builds its 2M–10M scalability datasets, and an order of magnitude
#: faster than sampling a million Poisson/Zipf documents.
ORGANIC_CAP = 100_000


@dataclass(frozen=True)
class DatasetSpec:
    """One pinned dataset: corpus shape, object count, seed.

    Frozen and primitive-only, so specs are picklable (the determinism
    test hashes them inside pool workers) and usable as dict keys.
    """

    name: str
    kind: str
    size: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise InvalidParameterError(
                "unknown dataset kind %r; known: %s" % (self.kind, list(PROFILE_KINDS))
            )
        if self.size < 1:
            raise InvalidParameterError("dataset size must be >= 1")

    @property
    def filename(self) -> str:
        return "%s-%s-%d-s%d.tsv" % (self.name, self.kind, self.size, self.seed)


def _profile_for(spec: DatasetSpec, organic_size: int) -> GeneratorProfile:
    """The generator recipe of ``spec`` at ``organic_size`` objects."""
    if spec.kind == "hotel":
        return GeneratorProfile(
            name=spec.name,
            num_objects=organic_size,
            vocabulary_size=602,
            mean_keywords=3.9,
            zipf_exponent=0.9,
            cluster_fraction=0.6,
            cluster_count=50,
        )
    if spec.kind == "gn":
        return GeneratorProfile(
            name=spec.name,
            num_objects=organic_size,
            vocabulary_size=20_000,
            mean_keywords=4.0,
            zipf_exponent=1.1,
            cluster_fraction=0.5,
            cluster_count=200,
        )
    if spec.kind == "web":
        return GeneratorProfile(
            name=spec.name,
            num_objects=organic_size,
            vocabulary_size=50_000,
            mean_keywords=32.0,
            zipf_exponent=1.0,
            cluster_fraction=0.4,
            cluster_count=100,
        )
    return GeneratorProfile(
        name=spec.name,
        num_objects=organic_size,
        vocabulary_size=64,
        mean_keywords=3.0,
        cluster_fraction=0.0,
    )


def build_dataset(spec: DatasetSpec) -> Dataset:
    """Materialize ``spec`` in memory (deterministic in the spec alone)."""
    organic = min(spec.size, ORGANIC_CAP)
    dataset = generate_profile(_profile_for(spec, organic), seed=spec.seed)
    if spec.size > organic:
        dataset = scale_dataset(dataset, spec.size, seed=spec.seed)
    return Dataset(dataset.objects, dataset.vocabulary, name=spec.name)


class _HashWriter:
    """A write-only text sink that feeds a SHA-256 (duck-types a stream)."""

    def __init__(self) -> None:
        self._digest = hashlib.sha256()

    def write(self, text: str) -> int:
        self._digest.update(text.encode("utf-8"))
        return len(text)

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def content_hash(dataset: Dataset) -> str:
    """SHA-256 of the dataset's canonical text serialization.

    Identical to hashing the bytes of the cache file, and independent of
    keyword-id assignment (the format stores sorted words per object).
    """
    writer = _HashWriter()
    dataset.dump(writer)
    return writer.hexdigest()


def spec_content_hash(spec: DatasetSpec) -> str:
    """Generate ``spec`` from scratch and hash it (no disk involved).

    Module-level and picklable-argument-only on purpose: the determinism
    suite maps this function over a process pool and requires every
    worker to agree with the parent.
    """
    return content_hash(build_dataset(spec))


def _file_hash(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class DatasetCache:
    """Content-verified dataset store under one directory.

    ``materialize`` returns the dataset plus a provenance dict recorded
    verbatim in the run summary: whether the cache hit, the content
    hash, and how long generation / loading took.  A cache file whose
    bytes no longer match its recorded hash (partial write, manual edit)
    is discarded and regenerated — a silently corrupt benchmark input is
    worse than a slow one.
    """

    def __init__(self, root: Optional[str | Path] = None):
        if root is None:
            root = os.environ.get("COSKQ_BENCH_CACHE", DEFAULT_CACHE_DIR)
        self.root = Path(root)

    def _paths(self, spec: DatasetSpec) -> Tuple[Path, Path]:
        data = self.root / spec.filename
        return data, data.with_suffix(data.suffix + ".meta.json")

    def materialize(self, spec: DatasetSpec) -> Tuple[Dataset, Dict[str, object]]:
        """Load ``spec`` from cache, or generate + persist + reload it."""
        data_path, meta_path = self._paths(spec)
        started = time.perf_counter()
        if data_path.exists() and meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                expected = meta["content_hash"]
            except (json.JSONDecodeError, KeyError, OSError):
                expected = None
            if expected is not None and _file_hash(data_path) == expected:
                dataset = Dataset.load(data_path, name=spec.name)
                return dataset, {
                    "cache": "hit",
                    "content_hash": expected,
                    "generate_s": time.perf_counter() - started,
                    "path": str(data_path),
                }
        dataset = self._generate(spec, data_path, meta_path)
        return dataset, {
            "cache": "miss",
            "content_hash": _file_hash(data_path),
            "generate_s": time.perf_counter() - started,
            "path": str(data_path),
        }

    def _generate(self, spec: DatasetSpec, data_path: Path, meta_path: Path) -> Dataset:
        self.root.mkdir(parents=True, exist_ok=True)
        generated = build_dataset(spec)
        digest = content_hash(generated)
        tmp_path = data_path.with_suffix(data_path.suffix + ".tmp")
        generated.save(tmp_path)
        if _file_hash(tmp_path) != digest:
            tmp_path.unlink(missing_ok=True)
            raise DatasetFormatError(
                "serialized bytes of %s do not hash to the in-memory content "
                "hash; refusing to cache a corrupt dataset" % spec.name
            )
        os.replace(tmp_path, data_path)
        meta_path.write_text(
            json.dumps(
                {"spec": asdict(spec), "content_hash": digest},
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        # Reload from the written file so keyword-id assignment matches
        # what every later cache *hit* will see (see module docstring).
        return Dataset.load(data_path, name=spec.name)
