"""Latency aggregation for the macro harness: mergeable, exact percentiles.

Percentiles of percentiles are statistically meaningless, so the
accumulator keeps the **raw samples** and defers every statistic to
summary time: merging shards is list concatenation, and the summary of a
merge equals the summary of the whole by construction (the property the
hypothesis suite ``tests/test_bench_macro_properties.py`` pins).  Sample
counts in this harness are thousands at most, so raw retention costs
nothing and buys exactness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import InvalidParameterError
from repro.utils.stats import percentile

__all__ = ["PERCENTILES", "LatencyAccumulator", "throughput_qps"]

#: The percentile points every workload summary reports.
PERCENTILES = (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99))


class LatencyAccumulator:
    """Raw per-query latencies (milliseconds) with exact summaries."""

    __slots__ = ("_samples",)

    def __init__(self, samples: Iterable[float] = ()):
        self._samples: List[float] = []
        self.extend(samples)

    def add(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise InvalidParameterError("latencies cannot be negative")
        self._samples.append(float(latency_ms))

    def extend(self, latencies_ms: Iterable[float]) -> None:
        for value in latencies_ms:
            self.add(value)

    @classmethod
    def merge(cls, shards: Iterable["LatencyAccumulator"]) -> "LatencyAccumulator":
        """One accumulator holding every shard's samples.

        Exactly equivalent to having recorded all samples into a single
        accumulator — the shard/whole equivalence the property tests
        assert.
        """
        merged = cls()
        for shard in shards:
            merged._samples.extend(shard._samples)
        return merged

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def summary(self) -> Dict[str, float]:
        """Count / mean / min / percentiles / max, all from raw samples."""
        if not self._samples:
            raise InvalidParameterError("summary() of an empty accumulator")
        ordered = sorted(self._samples)
        out: Dict[str, float] = {
            "count": len(ordered),
            "mean_ms": sum(ordered) / len(ordered),
            "min_ms": ordered[0],
        }
        for label, fraction in PERCENTILES:
            out[label] = percentile(ordered, fraction)
        out["max_ms"] = ordered[-1]
        return out

    def __repr__(self) -> str:
        return "LatencyAccumulator(n=%d)" % len(self._samples)


def throughput_qps(completed: int, wall_s: float) -> float:
    """Completed queries per second of wall time (0 for a zero wall)."""
    if completed < 0 or wall_s < 0:
        raise InvalidParameterError("throughput inputs cannot be negative")
    if wall_s == 0.0:
        return 0.0
    return completed / wall_s
