"""The versioned summary-JSON schema of ``coskq-bench run``.

Every run emits one JSON document; this module is the single source of
truth for its shape.  ``SCHEMA_VERSION`` changes whenever a field is
added, removed or re-typed — the diff gate refuses to compare documents
across versions, so a schema bump can never masquerade as a perf change.

The validator is deliberately stdlib-only (no jsonschema dependency):
:func:`validate_summary` returns a list of human-readable problems,
:func:`assert_valid` raises :class:`SummarySchemaError` with all of them.

:func:`canonical_summary` produces the timing-free, environment-free
projection of a summary used by the golden-file test — structure,
pinned counts and identifiers survive; wall-clock measurements, hashes
and host details are replaced by fixed placeholders, so the golden file
pins the *schema*, not one machine's nondeterministic numbers.
"""

from __future__ import annotations

import copy
from typing import Dict, List

from repro.errors import CoSKQError

__all__ = [
    "SCHEMA_VERSION",
    "WORKLOAD_KINDS",
    "SummarySchemaError",
    "SchemaVersionMismatchError",
    "validate_summary",
    "assert_valid",
    "canonical_summary",
]

#: Bump on any structural change to the summary document.
#: /2: added the ``sharded`` workload kind, the per-workload ``shards``
#: count (0 = single IR-tree), and on sharded entries the paired
#: ``baseline_wall_s`` / ``shard_build_s`` extras.
SCHEMA_VERSION = "coskq-bench-macro/2"

#: How a workload is executed (see docs/BENCHMARKS.md).  ``adaptive``
#: (the feature-driven planner) is a purely additive kind — cells of a
#: new kind reuse the existing entry shape, so no version bump.
WORKLOAD_KINDS = ("solver", "chain", "boolean-knn", "batch", "sharded", "adaptive")

_CACHE_MODES = ("cold", "warm")
_LATENCY_KEYS = ("count", "mean_ms", "min_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")


class SummarySchemaError(CoSKQError):
    """A summary document does not conform to :data:`SCHEMA_VERSION`."""


class SchemaVersionMismatchError(CoSKQError):
    """Two summaries under different schema versions cannot be diffed."""


def _require(doc: Dict, key: str, types, where: str, problems: List[str]) -> object:
    if key not in doc:
        problems.append("%s: missing key %r" % (where, key))
        return None
    value = doc[key]
    allowed = types if isinstance(types, tuple) else (types,)
    # bool subclasses int; only accept it when bool was asked for.
    wrong_type = not isinstance(value, allowed) or (
        isinstance(value, bool) and bool not in allowed
    )
    if wrong_type:
        problems.append(
            "%s: key %r must be %s, got %s"
            % (where, key, types, type(value).__name__)
        )
        return None
    return value


def _check_latency(latency: object, where: str, problems: List[str]) -> None:
    if latency is None:
        return
    if not isinstance(latency, dict):
        problems.append("%s: latency_ms must be an object or null" % where)
        return
    for key in _LATENCY_KEYS:
        if key not in latency:
            problems.append("%s: latency_ms missing %r" % (where, key))
            return
        if not isinstance(latency[key], (int, float)) or isinstance(latency[key], bool):
            problems.append("%s: latency_ms[%r] must be a number" % (where, key))
            return
    if latency["count"] < 1:
        problems.append("%s: latency_ms.count must be >= 1" % where)
    ordered = ("min_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
    for lo, hi in zip(ordered, ordered[1:]):
        if latency[lo] > latency[hi]:
            problems.append(
                "%s: latency_ms must be monotone (%s=%r > %s=%r)"
                % (where, lo, latency[lo], hi, latency[hi])
            )


def _check_counter(value: object, key: str, where: str, problems: List[str]) -> None:
    if value is None:
        return
    if not isinstance(value, dict):
        problems.append("%s: %s must be an object or null" % (where, key))
        return
    for name, count in value.items():
        if not isinstance(name, str) or not isinstance(count, int) or isinstance(count, bool):
            problems.append("%s: %s must map strings to integers" % (where, key))
            return


def validate_summary(doc: object) -> List[str]:
    """Every way ``doc`` deviates from the schema (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["summary must be a JSON object, got %s" % type(doc).__name__]

    version = _require(doc, "schema_version", str, "summary", problems)
    if version is not None and version != SCHEMA_VERSION:
        problems.append(
            "summary: schema_version %r is not the supported %r"
            % (version, SCHEMA_VERSION)
        )
    _require(doc, "profile", str, "summary", problems)
    _require(doc, "seed", int, "summary", problems)

    environment = _require(doc, "environment", dict, "summary", problems)
    if environment is not None:
        _require(environment, "python", str, "environment", problems)
        _require(environment, "platform", str, "environment", problems)
        _require(environment, "kernels", bool, "environment", problems)
        _require(environment, "signatures", bool, "environment", problems)

    dataset_names = set()
    datasets = _require(doc, "datasets", list, "summary", problems)
    if datasets is not None:
        for position, entry in enumerate(datasets):
            where = "datasets[%d]" % position
            if not isinstance(entry, dict):
                problems.append("%s: must be an object" % where)
                continue
            name = _require(entry, "name", str, where, problems)
            if name is not None:
                if name in dataset_names:
                    problems.append("%s: duplicate dataset name %r" % (where, name))
                dataset_names.add(name)
            _require(entry, "kind", str, where, problems)
            objects = _require(entry, "objects", int, where, problems)
            if objects is not None and objects < 1:
                problems.append("%s: objects must be >= 1" % where)
            _require(entry, "content_hash", str, where, problems)
            cache = _require(entry, "cache", str, where, problems)
            if cache is not None and cache not in ("hit", "miss"):
                problems.append("%s: cache must be 'hit' or 'miss'" % where)
            _require(entry, "generate_s", (int, float), where, problems)
            _require(entry, "index_build_s", (int, float), where, problems)

    seen_ids = set()
    workloads = _require(doc, "workloads", list, "summary", problems)
    if workloads is not None:
        if not workloads:
            problems.append("summary: workloads must not be empty")
        for position, entry in enumerate(workloads):
            where = "workloads[%d]" % position
            if not isinstance(entry, dict):
                problems.append("%s: must be an object" % where)
                continue
            workload_id = _require(entry, "id", str, where, problems)
            if workload_id is not None:
                if workload_id in seen_ids:
                    problems.append("%s: duplicate workload id %r" % (where, workload_id))
                seen_ids.add(workload_id)
                where = "workloads[%r]" % workload_id
            kind = _require(entry, "kind", str, where, problems)
            if kind is not None and kind not in WORKLOAD_KINDS:
                problems.append(
                    "%s: kind %r not in %s" % (where, kind, list(WORKLOAD_KINDS))
                )
            dataset = _require(entry, "dataset", str, where, problems)
            if dataset is not None and dataset_names and dataset not in dataset_names:
                problems.append("%s: unknown dataset %r" % (where, dataset))
            _require(entry, "solver", str, where, problems)
            cache = _require(entry, "cache", str, where, problems)
            if cache is not None and cache not in _CACHE_MODES:
                problems.append("%s: cache must be one of %s" % (where, list(_CACHE_MODES)))
            toggles = _require(entry, "toggles", dict, where, problems)
            if toggles is not None:
                _require(toggles, "kernels", bool, where + ".toggles", problems)
                _require(toggles, "signatures", bool, where + ".toggles", problems)
            queries = _require(entry, "queries", int, where, problems)
            if queries is not None and queries < 1:
                problems.append("%s: queries must be >= 1" % where)
            _require(entry, "num_keywords", int, where, problems)
            shards = _require(entry, "shards", int, where, problems)
            if shards is not None and shards < 0:
                problems.append("%s: shards must be >= 0" % where)
            if kind == "sharded" and shards is not None and shards < 1:
                problems.append("%s: sharded workloads need shards >= 1" % where)
            failures = _require(entry, "failures", int, where, problems)
            if failures is not None and failures < 0:
                problems.append("%s: failures must be >= 0" % where)
            wall = _require(entry, "wall_s", (int, float), where, problems)
            if wall is not None and wall < 0:
                problems.append("%s: wall_s must be >= 0" % where)
            _require(entry, "throughput_qps", (int, float), where, problems)
            if "latency_ms" not in entry:
                problems.append("%s: missing key 'latency_ms'" % where)
            else:
                _check_latency(entry["latency_ms"], where, problems)
            for counter_key in ("provenance", "cache_stats"):
                if counter_key not in entry:
                    problems.append("%s: missing key %r" % (where, counter_key))
                else:
                    _check_counter(entry[counter_key], counter_key, where, problems)

    totals = _require(doc, "totals", dict, "summary", problems)
    if totals is not None:
        _require(totals, "wall_s", (int, float), "totals", problems)
        total_queries = _require(totals, "queries", int, "totals", problems)
        _require(totals, "workloads", int, "totals", problems)
        if (
            total_queries is not None
            and isinstance(workloads, list)
            and all(isinstance(w, dict) and isinstance(w.get("queries"), int) for w in workloads)
        ):
            declared = sum(w["queries"] for w in workloads)
            if total_queries != declared:
                problems.append(
                    "totals: queries=%d but workloads declare %d"
                    % (total_queries, declared)
                )
    return problems


def assert_valid(doc: object) -> None:
    """Raise :class:`SummarySchemaError` listing every problem, if any."""
    problems = validate_summary(doc)
    if problems:
        raise SummarySchemaError(
            "summary fails schema %s:\n  %s"
            % (SCHEMA_VERSION, "\n  ".join(problems))
        )


#: Keys whose values are wall-clock measurements (zeroed in the golden
#: projection).  Matching is by suffix so new timing fields stay covered.
_TIMING_SUFFIXES = ("_s", "_ms", "_qps")

#: String fields that vary by host or by generator internals.
_PLACEHOLDERS = {
    "content_hash": "<sha256>",
    "path": "<path>",
    "python": "<python>",
    "platform": "<platform>",
}

#: Counter maps whose keys depend on timing (which chain stage answered,
#: how often a cache hit) — reduced to empty objects in the projection.
_VOLATILE_COUNTERS = ("provenance", "cache_stats")

#: Numeric fields that are pinned by the profile and therefore kept.
_PINNED_NUMERIC = (
    "count",
    "queries",
    "objects",
    "num_keywords",
    "failures",
    "seed",
    "workloads",
    "shards",
)


def canonical_summary(doc: Dict) -> Dict:
    """The golden-file projection: structure kept, measurements neutralized."""

    def walk(node, key: str = ""):
        if isinstance(node, dict):
            return {k: walk(v, k) for k, v in sorted(node.items())}
        if isinstance(node, list):
            return [walk(item, key) for item in node]
        if key in _VOLATILE_COUNTERS:
            return node
        if key in _PLACEHOLDERS and isinstance(node, str):
            return _PLACEHOLDERS[key]
        if isinstance(node, bool) or node is None or isinstance(node, str):
            return node
        if key in _PINNED_NUMERIC:
            return node
        if isinstance(node, (int, float)) and key.endswith(_TIMING_SUFFIXES):
            return 0.0
        return node

    projected = walk(copy.deepcopy(doc))
    if isinstance(projected.get("environment"), dict):
        # The host (and any REPRO_KERNELS/REPRO_SIGNATURES override in the
        # caller's environment) must not leak into the golden file.
        projected["environment"] = {
            "python": "<python>",
            "platform": "<platform>",
            "kernels": True,
            "signatures": True,
        }
    for dataset in projected.get("datasets", []):
        if isinstance(dataset, dict) and "cache" in dataset:
            # hit vs miss depends on what the cache dir already held.
            dataset["cache"] = "<hit|miss>"
    for workload in projected.get("workloads", []):
        for counter_key in _VOLATILE_COUNTERS:
            if isinstance(workload.get(counter_key), dict):
                workload[counter_key] = {}
    return projected
