"""The regression gate: compare two summary JSONs, flag real slowdowns.

``coskq-bench diff baseline.json candidate.json`` matches workloads by
id and compares the latency percentiles (higher is worse) and throughput
(lower is worse).  A change only counts as a regression when it clears
**both** a relative noise threshold and an absolute floor — micro-scale
runs wiggle by whole percents on sub-millisecond cells, and a gate that
cries wolf gets disabled.  Workloads present in the baseline but missing
from the candidate are regressions by definition (a deleted measurement
is how perf losses hide); new candidate workloads are reported
informationally.

Summaries under different :data:`~repro.bench.macro.schema.SCHEMA_VERSION`
values refuse to diff (:class:`SchemaVersionMismatchError`) — fields may
have changed meaning, so any comparison would be noise dressed as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.macro.schema import (
    SchemaVersionMismatchError,
    assert_valid,
)
from repro.errors import InvalidParameterError

__all__ = [
    "DEFAULT_REL_THRESHOLD",
    "DEFAULT_MIN_DELTA_MS",
    "DEFAULT_MIN_DELTA_QPS",
    "DiffEntry",
    "DiffReport",
    "diff_summaries",
]

#: Relative change a metric must exceed to count as a regression (25%).
DEFAULT_REL_THRESHOLD = 0.25

#: Absolute floor for latency metrics: ignore regressions smaller than
#: this many milliseconds regardless of the relative change.
DEFAULT_MIN_DELTA_MS = 0.5

#: Absolute floor for throughput: ignore drops smaller than this many
#: queries/second.
DEFAULT_MIN_DELTA_QPS = 1.0

#: Latency metrics compared per workload (direction: higher is worse).
_LATENCY_METRICS = ("p50_ms", "p95_ms", "p99_ms")

#: Minimum sample count for a nearest-rank percentile to be an estimate
#: rather than the sample max (⌈1/(1-q)⌉): below this, the metric is an
#: extreme-value statistic — one GC pause flips it — so it is reported
#: but never gates.
_MIN_SAMPLES = {"p50_ms": 1, "p95_ms": 20, "p99_ms": 100}


@dataclass(frozen=True)
class DiffEntry:
    """One compared metric of one workload."""

    workload: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    #: Relative change, signed so that **positive means worse** (latency
    #: increase or throughput decrease); None when incomparable.
    change: Optional[float]
    regression: bool
    note: str = ""

    def describe(self) -> str:
        if self.change is None:
            return "%-40s %-14s %s" % (self.workload, self.metric, self.note)
        flag = "REGRESSION" if self.regression else "ok"
        line = "%-40s %-14s %10.4g -> %10.4g  %+6.1f%%  %s" % (
            self.workload,
            self.metric,
            self.baseline,
            self.candidate,
            self.change * 100.0,
            flag,
        )
        return line + ("  (%s)" % self.note if self.note else "")


@dataclass(frozen=True)
class DiffReport:
    """Everything ``diff`` compared, plus the verdict."""

    baseline_profile: str
    candidate_profile: str
    entries: Tuple[DiffEntry, ...] = field(default=())

    @property
    def regressions(self) -> Tuple[DiffEntry, ...]:
        return tuple(entry for entry in self.entries if entry.regression)

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def format(self) -> str:
        lines = [
            "diff: %s (baseline) vs %s (candidate)"
            % (self.baseline_profile, self.candidate_profile)
        ]
        lines.extend(entry.describe() for entry in self.entries)
        regressions = self.regressions
        if regressions:
            lines.append(
                "%d regression%s past the noise threshold"
                % (len(regressions), "" if len(regressions) == 1 else "s")
            )
        else:
            lines.append("no regressions past the noise threshold")
        return "\n".join(lines)


def _workloads_by_id(summary: Dict) -> Dict[str, Dict]:
    return {entry["id"]: entry for entry in summary["workloads"]}


def _latency_entries(
    workload_id: str,
    base: Dict,
    cand: Dict,
    rel_threshold: float,
    min_delta_ms: float,
) -> List[DiffEntry]:
    base_latency = base.get("latency_ms")
    cand_latency = cand.get("latency_ms")
    if base_latency is None and cand_latency is None:
        return []
    if base_latency is None or cand_latency is None:
        return [
            DiffEntry(
                workload=workload_id,
                metric="latency_ms",
                baseline=None,
                candidate=None,
                change=None,
                regression=base_latency is not None,
                note="latency present in only one run",
            )
        ]
    out: List[DiffEntry] = []
    samples = min(int(base_latency["count"]), int(cand_latency["count"]))
    for metric in _LATENCY_METRICS:
        baseline = float(base_latency[metric])
        candidate = float(cand_latency[metric])
        delta = candidate - baseline
        change = (delta / baseline) if baseline > 0 else None
        resolvable = samples >= _MIN_SAMPLES[metric]
        regression = (
            resolvable
            and change is not None
            and change > rel_threshold
            and delta >= min_delta_ms
        )
        out.append(
            DiffEntry(
                workload=workload_id,
                metric=metric,
                baseline=baseline,
                candidate=candidate,
                change=change,
                regression=regression,
                note=""
                if resolvable
                else "informational: %d samples cannot resolve %s" % (samples, metric),
            )
        )
    return out


def _throughput_entry(
    workload_id: str,
    base: Dict,
    cand: Dict,
    rel_threshold: float,
    min_delta_qps: float,
    min_delta_ms: float,
) -> DiffEntry:
    baseline = float(base["throughput_qps"])
    candidate = float(cand["throughput_qps"])
    drop = baseline - candidate
    change = (drop / baseline) if baseline > 0 else None
    # Micro-scale protection: a cell serving hundreds of thousands of
    # qps (cache hits measured in microseconds) swings by double-digit
    # percents between back-to-back runs, and its absolute qps delta is
    # huge by construction — so the drop must also amount to a visible
    # per-query slowdown in time units, the same floor latency uses.
    if candidate > 0 and baseline > 0:
        implied_ms = 1_000.0 / candidate - 1_000.0 / baseline
    elif baseline > 0:
        implied_ms = float("inf")
    else:
        implied_ms = 0.0
    regression = (
        change is not None
        and change > rel_threshold
        and drop >= min_delta_qps
        and implied_ms >= min_delta_ms
    )
    return DiffEntry(
        workload=workload_id,
        metric="throughput_qps",
        baseline=baseline,
        candidate=candidate,
        change=change,
        regression=regression,
    )


def diff_summaries(
    baseline: Dict,
    candidate: Dict,
    *,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    min_delta_ms: float = DEFAULT_MIN_DELTA_MS,
    min_delta_qps: float = DEFAULT_MIN_DELTA_QPS,
) -> DiffReport:
    """Compare two schema-valid summaries; see the module docstring."""
    if rel_threshold < 0:
        raise InvalidParameterError("rel_threshold must be >= 0")
    base_version = baseline.get("schema_version") if isinstance(baseline, dict) else None
    cand_version = candidate.get("schema_version") if isinstance(candidate, dict) else None
    # Version drift gets its dedicated error before generic validation:
    # "your runs span a schema change" beats a wall of missing-key noise.
    if base_version != cand_version:
        raise SchemaVersionMismatchError(
            "cannot diff schema %r against %r" % (base_version, cand_version)
        )
    assert_valid(baseline)
    assert_valid(candidate)

    base_workloads = _workloads_by_id(baseline)
    cand_workloads = _workloads_by_id(candidate)
    entries: List[DiffEntry] = []
    for workload_id, base in base_workloads.items():
        cand = cand_workloads.get(workload_id)
        if cand is None:
            entries.append(
                DiffEntry(
                    workload=workload_id,
                    metric="presence",
                    baseline=None,
                    candidate=None,
                    change=None,
                    regression=True,
                    note="workload missing from candidate run",
                )
            )
            continue
        entries.extend(
            _latency_entries(workload_id, base, cand, rel_threshold, min_delta_ms)
        )
        entries.append(
            _throughput_entry(
                workload_id, base, cand, rel_threshold, min_delta_qps, min_delta_ms
            )
        )
    for workload_id in cand_workloads:
        if workload_id not in base_workloads:
            entries.append(
                DiffEntry(
                    workload=workload_id,
                    metric="presence",
                    baseline=None,
                    candidate=None,
                    change=None,
                    regression=False,
                    note="new workload (no baseline)",
                )
            )
    return DiffReport(
        baseline_profile=str(baseline["profile"]),
        candidate_profile=str(candidate["profile"]),
        entries=tuple(entries),
    )
