"""``repro.bench.macro`` — the system-level macro-benchmark harness.

Where ``repro.bench.experiments`` regenerates the *paper's* tables
(per-algorithm microbenches at bench scale), this package measures the
**system** end-to-end the way SIGMOD evaluations and SpatialBench-style
harnesses do: pinned scalable datasets (10k → 1M objects, seeded,
content-hash cached on disk), pinned mixed workloads (boolean-knn /
approximate / small exact / fallback chains / parallel batches, cold vs
warm caches, kernels and signatures toggled on and off), per-query
latency capture, and one summary JSON per run under a versioned schema.

The pieces (see docs/BENCHMARKS.md):

- :mod:`repro.bench.macro.datasets`  — pinned dataset specs + disk cache;
- :mod:`repro.bench.macro.aggregate` — mergeable latency percentiles;
- :mod:`repro.bench.macro.workloads` — workload/profile registry;
- :mod:`repro.bench.macro.runner`    — executes a profile into a summary;
- :mod:`repro.bench.macro.schema`    — the versioned summary schema;
- :mod:`repro.bench.macro.diffmode`  — the two-run regression gate.

Entry points: ``coskq-bench run`` / ``coskq-bench diff`` (also installed
standalone as ``coskq-bench-macro``).
"""

from repro.bench.macro.aggregate import LatencyAccumulator, throughput_qps
from repro.bench.macro.datasets import (
    DatasetCache,
    DatasetSpec,
    build_dataset,
    content_hash,
    spec_content_hash,
)
from repro.bench.macro.diffmode import DiffEntry, DiffReport, diff_summaries
from repro.bench.macro.runner import run_profile
from repro.bench.macro.schema import (
    SCHEMA_VERSION,
    SchemaVersionMismatchError,
    SummarySchemaError,
    assert_valid,
    canonical_summary,
    validate_summary,
)
from repro.bench.macro.workloads import PROFILES, Profile, WorkloadSpec

__all__ = [
    "DatasetCache",
    "DatasetSpec",
    "DiffEntry",
    "DiffReport",
    "LatencyAccumulator",
    "PROFILES",
    "Profile",
    "SCHEMA_VERSION",
    "SchemaVersionMismatchError",
    "SummarySchemaError",
    "WorkloadSpec",
    "assert_valid",
    "build_dataset",
    "canonical_summary",
    "content_hash",
    "diff_summaries",
    "run_profile",
    "spec_content_hash",
    "throughput_qps",
    "validate_summary",
]
