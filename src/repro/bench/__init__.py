"""Benchmark harness: runners, reports and the experiment suite."""

from repro.bench.experiments import EXPERIMENTS, FULL, QUICK, Scale, run_experiment
from repro.bench.report import SeriesTable, format_kv_table
from repro.bench.runner import (
    RatioResult,
    TimingResult,
    ratio_study,
    solve_all,
    time_algorithm,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "Scale",
    "QUICK",
    "FULL",
    "SeriesTable",
    "format_kv_table",
    "TimingResult",
    "RatioResult",
    "time_algorithm",
    "ratio_study",
    "solve_all",
]
