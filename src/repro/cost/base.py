"""Cost-function framework for CoSKQ.

Every cost in this literature is assembled from two distance components:

- the *query-object component* ``D_q(S)`` — an aggregate (sum, max or
  min) of the distances ``d(o, q)`` for ``o ∈ S``;
- the *object-object component* ``D_p(S)`` — the maximum pairwise
  distance within ``S`` (the set diameter).

A :class:`CostFunction` declares which query aggregate it uses and how the
two components combine (addition or maximum), and evaluates sets.  The
algorithms interrogate these declarations to choose pruning rules, so the
same algorithm code serves several costs.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.kernels import flat as _flat
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = [
    "QueryAggregate",
    "Combiner",
    "CostFunction",
    "pairwise_max_distance",
    "query_distances",
]


class QueryAggregate(enum.Enum):
    """How the query-object component aggregates ``d(o, q)`` over ``S``."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"

    def apply(self, values: Sequence[float]) -> float:
        if not values:
            raise ValueError("aggregate of an empty set")
        if self is QueryAggregate.SUM:
            return sum(values)
        if self is QueryAggregate.MAX:
            return max(values)
        return min(values)


class Combiner(enum.Enum):
    """How the two components combine into the final cost."""

    ADD = "add"
    MAX = "max"

    def apply(self, query_component: float, pairwise_component: float) -> float:
        if self is Combiner.ADD:
            return query_component + pairwise_component
        return max(query_component, pairwise_component)


#: Below this set size the quadratic scan beats packing coordinates into
#: arrays first; CoSKQ result sets (≤ |q.ψ| members) usually sit under it.
_PACK_THRESHOLD = 8


def pairwise_max_distance(objects: Sequence[SpatialObject]) -> float:
    """The diameter ``max_{o1,o2∈S} d(o1, o2)`` (0 for singleton sets).

    Large sets route through :func:`repro.kernels.flat.pairwise_max`,
    which is bit-identical to this scan (guarded squared-distance skip;
    every returned value is a plain ``math.hypot``).
    """
    n = len(objects)
    if n >= _PACK_THRESHOLD and _flat.kernels_enabled():
        xs, ys = _flat.pack_objects(objects)
        return _flat.pairwise_max(xs, ys)
    best = 0.0
    for i in range(n):
        loc_i = objects[i].location
        for j in range(i + 1, n):
            d = loc_i.distance_to(objects[j].location)
            if d > best:
                best = d
    return best


def query_distances(location: Point, objects: Iterable[SpatialObject]) -> List[float]:
    """The distances ``d(o, q)`` for each object."""
    return [location.distance_to(o.location) for o in objects]


class CostFunction(ABC):
    """A CoSKQ set cost.

    Subclasses define :attr:`name`, the structural declarations
    (:attr:`query_aggregate`, :attr:`combiner`) and :meth:`combine`.
    ``evaluate`` derives the full set cost from those pieces.
    """

    #: Short identifier used in result provenance and benchmark reports.
    name: str = "cost"

    #: Which aggregate the query-object component uses.
    query_aggregate: QueryAggregate = QueryAggregate.MAX

    #: How the two components combine.
    combiner: Combiner = Combiner.ADD

    @abstractmethod
    def combine(self, query_component: float, pairwise_component: float) -> float:
        """The final cost given the two evaluated components."""

    # -- evaluation ----------------------------------------------------------

    def components(
        self, query: Query, objects: Sequence[SpatialObject]
    ) -> Tuple[float, float]:
        """``(D_q(S), D_p(S))`` for the set."""
        dists = query_distances(query.location, objects)
        return self.query_aggregate.apply(dists), pairwise_max_distance(objects)

    def evaluate(self, query: Query, objects: Sequence[SpatialObject]) -> float:
        """The cost of a non-empty object set for ``query``."""
        if not objects:
            raise ValueError("cost of an empty set is undefined")
        query_component, pairwise_component = self.components(query, objects)
        return self.combine(query_component, pairwise_component)

    # -- structural properties the algorithms rely on --------------------------

    @property
    def is_monotone(self) -> bool:
        """Whether adding an object can never decrease the cost.

        True for SUM and MAX query aggregates (both components are
        monotone under insertion); false for MIN (a new closer object
        shrinks the query component).  Branch-and-bound uses the current
        partial cost as an admissible bound only when this holds.
        """
        return self.query_aggregate is not QueryAggregate.MIN

    def lower_bound(self, query_component_bound: float, pairwise_bound: float) -> float:
        """An admissible cost bound from component lower bounds."""
        return self.combine(query_component_bound, pairwise_bound)

    def __repr__(self) -> str:
        return "%s(name=%r)" % (type(self).__name__, self.name)
