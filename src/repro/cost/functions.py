"""The named CoSKQ cost functions.

The two costs of the SIGMOD 2013 paper:

- :class:`MaxSumCost` — ``max_{o∈S} d(o,q) + max_{o1,o2∈S} d(o1,o2)``.
  Cao et al. (SIGMOD 2011) introduced it as the α-weighted combination
  with α = 0.5; the unweighted form used here ranks sets identically
  (it is the α = 0.5 form scaled by 2).
- :class:`DiaCost` — ``max{max_{o∈S} d(o,q), max_{o1,o2∈S} d(o1,o2)}``,
  the diameter of ``S ∪ {q}``; introduced by the paper.

The remaining costs come from the surrounding literature (Cao et al. 2011
/ TODS 2015 and the TKDE 2018 generalization) and are provided as
extensions: Sum, SumMax, MinMax, MinMax2, Max and Min.
"""

from __future__ import annotations

from repro.cost.base import Combiner, CostFunction, QueryAggregate
from repro.errors import InvalidParameterError
from repro.utils.floatcmp import float_eq

__all__ = [
    "MaxSumCost",
    "DiaCost",
    "SumCost",
    "SumMaxCost",
    "MinMaxCost",
    "MinMax2Cost",
    "MaxCost",
    "MinCost",
    "cost_by_name",
    "PAPER_COSTS",
    "ALL_COSTS",
]


class _WeightedAdd(CostFunction):
    """Shared base for α-weighted additive costs."""

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise InvalidParameterError("alpha must be in (0, 1], got %r" % (alpha,))
        self.alpha = alpha
        # Hoisted out of combine(): the owner search's numeric combine
        # inversions call it tens of thousands of times per query, and
        # alpha never changes after construction.
        self._alpha_is_one = float_eq(alpha, 1.0)
        self._beta = 1.0 - alpha

    def combine(self, query_component: float, pairwise_component: float) -> float:
        if self._alpha_is_one:
            return query_component
        # The paper fixes alpha = 0.5 and drops the common factor, which
        # preserves the ranking of candidate sets; we keep the weighted
        # form so other alphas remain expressible.
        return self.alpha * query_component + self._beta * pairwise_component


class MaxSumCost(_WeightedAdd):
    """The paper's primary cost: farthest query distance plus diameter.

    With the default ``alpha = 0.5`` this ranks sets exactly like the
    unweighted ``max d(o,q) + diam`` form used in the paper's exposition.
    """

    name = "maxsum"
    query_aggregate = QueryAggregate.MAX
    combiner = Combiner.ADD


class DiaCost(CostFunction):
    """The paper's new cost: the diameter of ``S ∪ {q}``."""

    name = "dia"
    query_aggregate = QueryAggregate.MAX
    combiner = Combiner.MAX

    def combine(self, query_component: float, pairwise_component: float) -> float:
        return max(query_component, pairwise_component)


class SumCost(CostFunction):
    """Sum of query distances (Cao et al.); ignores pairwise distances."""

    name = "sum"
    query_aggregate = QueryAggregate.SUM
    combiner = Combiner.ADD

    def combine(self, query_component: float, pairwise_component: float) -> float:
        return query_component


class SumMaxCost(_WeightedAdd):
    """α·(sum of query distances) + (1−α)·diameter (Cao et al. TODS 2015)."""

    name = "summax"
    query_aggregate = QueryAggregate.SUM
    combiner = Combiner.ADD


class MinMaxCost(_WeightedAdd):
    """α·(nearest query distance) + (1−α)·diameter (Cao et al. TODS 2015)."""

    name = "minmax"
    query_aggregate = QueryAggregate.MIN
    combiner = Combiner.ADD


class MinMax2Cost(CostFunction):
    """max{nearest query distance, diameter} (TKDE 2018 extension)."""

    name = "minmax2"
    query_aggregate = QueryAggregate.MIN
    combiner = Combiner.MAX

    def combine(self, query_component: float, pairwise_component: float) -> float:
        return max(query_component, pairwise_component)


class MaxCost(CostFunction):
    """Farthest query distance only; ``N(q)`` is optimal for it."""

    name = "max"
    query_aggregate = QueryAggregate.MAX
    combiner = Combiner.ADD

    def combine(self, query_component: float, pairwise_component: float) -> float:
        return query_component


class MinCost(CostFunction):
    """Nearest query distance only.

    Of no practical interest (the whole dataset is a trivial minimizer);
    kept because the unified cost function can instantiate it and the
    tests exercise that mapping.
    """

    name = "min"
    query_aggregate = QueryAggregate.MIN
    combiner = Combiner.ADD

    def combine(self, query_component: float, pairwise_component: float) -> float:
        return query_component


#: The two cost functions of the SIGMOD 2013 paper.
PAPER_COSTS = ("maxsum", "dia")

#: Every named cost, mapped to its zero-argument constructor.
ALL_COSTS = {
    "maxsum": MaxSumCost,
    "dia": DiaCost,
    "sum": SumCost,
    "summax": SumMaxCost,
    "minmax": MinMaxCost,
    "minmax2": MinMax2Cost,
    "max": MaxCost,
    "min": MinCost,
}


def cost_by_name(name: str) -> CostFunction:
    """Instantiate a named cost function with its default parameters."""
    try:
        factory = ALL_COSTS[name]
    except KeyError:
        raise InvalidParameterError(
            "unknown cost %r; known: %s" % (name, sorted(ALL_COSTS))
        ) from None
    return factory()
