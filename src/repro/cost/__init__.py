"""CoSKQ cost functions: the paper's MaxSum and Dia, plus extensions."""

from repro.cost.base import (
    Combiner,
    CostFunction,
    QueryAggregate,
    pairwise_max_distance,
    query_distances,
)
from repro.cost.functions import (
    ALL_COSTS,
    PAPER_COSTS,
    DiaCost,
    MaxCost,
    MaxSumCost,
    MinCost,
    MinMax2Cost,
    MinMaxCost,
    SumCost,
    SumMaxCost,
    cost_by_name,
)
from repro.cost.unified import INTERESTING_SETTINGS, UnifiedCost

__all__ = [
    "CostFunction",
    "QueryAggregate",
    "Combiner",
    "pairwise_max_distance",
    "query_distances",
    "MaxSumCost",
    "DiaCost",
    "SumCost",
    "SumMaxCost",
    "MinMaxCost",
    "MinMax2Cost",
    "MaxCost",
    "MinCost",
    "UnifiedCost",
    "cost_by_name",
    "ALL_COSTS",
    "PAPER_COSTS",
    "INTERESTING_SETTINGS",
]
