"""The unified cost function ``cost_unified(S | α, φ1, φ2)``.

This is the extension module of the repository (see DESIGN.md §6): the
follow-up TKDE 2018 literature observes that every published CoSKQ cost is

    cost(S) = { [α · D_q(S|φ1)]^{φ2} + [(1−α) · D_p(S)]^{φ2} }^{1/φ2}

with ``D_q(S|φ1)`` the φ1-aggregate (sum, max, min — formally the
φ1-norm with φ1 ∈ {1, ∞, −∞}) of the query-object distances, ``D_p(S)``
the maximum pairwise distance, and φ2 ∈ {1, ∞} choosing between addition
and maximum.  Table 1 of that paper maps parameter settings to the named
costs; :meth:`UnifiedCost.named_equivalent` reproduces the mapping and the
property tests assert it numerically against
:mod:`repro.cost.functions`.
"""

from __future__ import annotations

from typing import Optional

from repro.cost.base import Combiner, CostFunction, QueryAggregate
from repro.errors import InvalidParameterError
from repro.utils.floatcmp import float_eq

__all__ = ["UnifiedCost", "INTERESTING_SETTINGS"]


class UnifiedCost(CostFunction):
    """The ``(α, φ1, φ2)``-parameterized cost family."""

    def __init__(
        self,
        alpha: float = 0.5,
        phi1: QueryAggregate = QueryAggregate.MAX,
        phi2: Combiner = Combiner.ADD,
    ):
        if not 0.0 < alpha <= 1.0:
            raise InvalidParameterError("alpha must be in (0, 1], got %r" % (alpha,))
        self.alpha = alpha
        self.query_aggregate = phi1
        self.combiner = phi2
        self.name = "unified(a=%g,phi1=%s,phi2=%s)" % (
            alpha,
            phi1.value,
            phi2.value,
        )

    def combine(self, query_component: float, pairwise_component: float) -> float:
        if float_eq(self.alpha, 1.0):
            # The pairwise term carries weight 0; with φ2 = max the query
            # term still dominates a zero-weighted pairwise term.
            return self.combiner.apply(query_component, 0.0)
        weighted_q = self.alpha * query_component
        weighted_p = (1.0 - self.alpha) * pairwise_component
        return self.combiner.apply(weighted_q, weighted_p)

    def named_equivalent(self) -> Optional[str]:
        """The name of the classical cost this setting instantiates.

        Follows Table 1 of the generalization: settings with α = 1 ignore
        the pairwise component entirely (sum / max / min); α ∈ (0, 1)
        yields the two-component costs.  Returns None for settings that
        have no classical name (they are still valid costs).

        The named costs in :mod:`repro.cost.functions` use the same α
        convention, so equivalence here is *numerical equality* for
        matching α, not merely equal ranking.
        """
        if float_eq(self.alpha, 1.0):
            return {
                QueryAggregate.SUM: "sum",
                QueryAggregate.MAX: "max",
                QueryAggregate.MIN: "min",
            }[self.query_aggregate]
        if self.combiner is Combiner.ADD:
            return {
                QueryAggregate.SUM: "summax",
                QueryAggregate.MAX: "maxsum",
                QueryAggregate.MIN: "minmax",
            }[self.query_aggregate]
        # φ2 = max with α = 0.5: max{D_q, D_p} scaled by 0.5 — same
        # ranking as the named max-combined costs; numerically equal to
        # the named cost only up to the 0.5 factor, except where noted.
        if float_eq(self.alpha, 0.5):
            return {
                QueryAggregate.SUM: "summax2",
                QueryAggregate.MAX: "dia",
                QueryAggregate.MIN: "minmax2",
            }[self.query_aggregate]
        return None


#: The seven instantiations the generalization's experiments study
#: (cost_Min is uninteresting, cost_SumMax2 is equivalent to cost_Sum).
INTERESTING_SETTINGS = (
    (0.5, QueryAggregate.MIN, Combiner.ADD),  # minmax
    (0.5, QueryAggregate.MIN, Combiner.MAX),  # minmax2
    (1.0, QueryAggregate.SUM, Combiner.ADD),  # sum
    (0.5, QueryAggregate.SUM, Combiner.ADD),  # summax
    (0.5, QueryAggregate.MAX, Combiner.ADD),  # maxsum
    (0.5, QueryAggregate.MAX, Combiner.MAX),  # dia
    (1.0, QueryAggregate.MAX, Combiner.ADD),  # max
)
