"""Command-line entry point: ``python -m repro.analysis`` / ``coskq-lint``.

Exit status is 0 when the tree is clean and 1 when any violation
survives suppression (with ``--strict``, unused suppression comments
count too), so the command slots directly into CI and ``make lint``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.config import AnalysisConfig, find_pyproject
from repro.analysis.engine import run_analysis
from repro.analysis.report import render_json, render_rule_list, render_text

__all__ = ["main", "default_targets"]


def default_targets() -> List[Path]:
    """``src/repro`` (or ``repro``) under the current directory."""
    for candidate in (Path("src/repro"), Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return [Path(".")]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-lint",
        description="Repo-specific static analysis for the CoSKQ reproduction "
        "(rules R1-R5; see docs/STATIC_ANALYSIS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppression comments that suppress nothing",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="explicit pyproject.toml to read [tool.repro.analysis] from",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    targets = list(args.paths) or default_targets()
    missing = [t for t in targets if not t.exists()]
    if missing:
        print(
            "coskq-lint: no such path: %s" % ", ".join(str(m) for m in missing),
            file=sys.stderr,
        )
        return 2
    pyproject = args.config if args.config is not None else find_pyproject(targets[0])
    config = AnalysisConfig.load(pyproject)
    report = run_analysis(targets, config)
    rendered = (
        render_json(report, strict=args.strict)
        if args.json
        else render_text(report, strict=args.strict)
    )
    print(rendered)
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
