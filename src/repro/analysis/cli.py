"""Command-line entry point: ``python -m repro.analysis`` / ``coskq-lint``.

Exit status: 0 when the tree is clean, 1 when any violation survives
suppression (with ``--strict``, unused suppression comments count too),
2 for usage errors such as a missing path, and 3 when a target file
could not be parsed at all — so CI can tell "found problems" apart from
"could not even look".
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.config import AnalysisConfig, find_pyproject
from repro.analysis.engine import run_analysis
from repro.analysis.report import render_json, render_rule_list, render_text

__all__ = ["main", "default_targets"]

#: Dataflow summary cache, written next to the governing pyproject.toml.
CACHE_BASENAME = ".coskq_lint_cache.json"

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2
EXIT_PARSE = 3


def default_targets() -> List[Path]:
    """``src/repro`` (or ``repro``) under the current directory."""
    for candidate in (Path("src/repro"), Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return [Path(".")]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-lint",
        description="Repo-specific static analysis for the CoSKQ reproduction "
        "(syntactic rules R1-R9 plus interprocedural dataflow rules "
        "R10-R12; see docs/STATIC_ANALYSIS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppression comments that suppress nothing",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report (same as --format json)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default=None,
        help="report format (default: text)",
    )
    parser.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the interprocedural pass (rules R10-R12); "
        "syntactic rules only",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the dataflow summary cache",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="explicit pyproject.toml to read [tool.repro.analysis] from",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    targets = list(args.paths) or default_targets()
    missing = [t for t in targets if not t.exists()]
    if missing:
        print(
            "coskq-lint: no such path: %s" % ", ".join(str(m) for m in missing),
            file=sys.stderr,
        )
        return EXIT_USAGE
    pyproject = args.config if args.config is not None else find_pyproject(targets[0])
    config = AnalysisConfig.load(pyproject)
    overrides = {}
    if args.no_dataflow:
        overrides["dataflow"] = False
    if config.dataflow and not args.no_dataflow and not args.no_cache:
        cache_dir = pyproject.parent if pyproject is not None else Path(".")
        overrides["cache_path"] = str(cache_dir / CACHE_BASENAME)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    report = run_analysis(targets, config)
    use_json = args.json or args.format == "json"
    rendered = (
        render_json(report, strict=args.strict)
        if use_json
        else render_text(report, strict=args.strict)
    )
    print(rendered)
    if any(v.rule == "PARSE" for v in report.violations):
        return EXIT_PARSE
    return EXIT_CLEAN if report.ok(strict=args.strict) else EXIT_VIOLATIONS


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
