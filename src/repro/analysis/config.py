"""Configuration for the repro static-analysis pass.

Defaults are baked in so ``python -m repro.analysis`` works on a bare
checkout; a ``[tool.repro.analysis]`` table in ``pyproject.toml``
overrides them per key.  The recognized settings:

- ``disable``     — list of rule ids to turn off entirely;
- ``registry``    — repo-relative path of the algorithm registry module
  rule R1 cross-checks;
- ``include.RX``  — restrict rule ``RX`` to paths matching these
  prefixes/suffixes (directories end with ``/``);
- ``exclude.RX``  — exempt matching paths from rule ``RX``.

Path patterns match the package-relative posix path of each file (e.g.
``repro/utils/rng.py``); a pattern ending in ``/`` matches any file
under that directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - tomllib is stdlib on 3.11+, absent on 3.10
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

__all__ = ["AnalysisConfig", "find_pyproject", "path_matches"]

#: Default per-rule path restrictions, mirrored in pyproject.toml.
_DEFAULT_INCLUDE: Dict[str, Tuple[str, ...]] = {
    # Float-equality bans apply to the distance/cost layers only.
    "R3": (
        "repro/algorithms/",
        "repro/cost/",
        "repro/geometry/",
        "repro/kernels/",
        "repro/network/",
    ),
    # Typed-abort rule: solver code must raise the CoSKQError taxonomy,
    # never a bare RuntimeError.
    "R6": (
        "repro/algorithms/",
        "repro/network/",
    ),
    # Read-only search state: solvers may not assign through shared
    # context/index owners — the memoizing caches depend on it.
    "R7": (
        "repro/algorithms/",
        "repro/network/",
    ),
    # One distance definition: solver hot loops route distance math
    # through repro.geometry / repro.kernels instead of inlining it.
    "R8": (
        "repro/algorithms/",
        "repro/cost/",
    ),
    # One keyword-signature definition: index/solver hot code routes
    # keyword-set predicates through repro.index.signatures.
    "R9": (
        "repro/index/",
        "repro/algorithms/",
    ),
    # Interprocedural escape analysis: nothing reachable from a solver's
    # solve() may mutate shared search state.  Scoped by the *solver's*
    # module; the sanctioned-writer carve-out is `sanction` below.
    "R10": (
        "repro/algorithms/",
        "repro/network/",
    ),
    # Checkpoint reachability: unbounded solver loops must reach
    # _bump()/_checkpoint() on every iteration path.
    "R11": (
        "repro/algorithms/",
        "repro/network/",
    ),
    # Toggle parity: kernels/signatures-guarded branches keep both arms
    # and their off-arms never reach the fast-path modules.
    "R12": (
        "repro/algorithms/",
        "repro/index/",
        "repro/geometry/",
    ),
}

_DEFAULT_EXCLUDE: Dict[str, Tuple[str, ...]] = {
    # Determinism rule: the RNG plumbing, the timing harness, and the
    # exec layer's injectable clock are the sanctioned homes for
    # randomness/clocks.
    "R2": ("repro/utils/rng.py", "repro/bench/", "repro/exec/clock.py"),
    # The signature module itself is the sanctioned home of the algebra.
    "R9": ("repro/index/signatures.py",),
    # The toggle-owning modules define the on/off machinery themselves.
    "R12": ("repro/index/signatures.py", "repro/kernels/"),
}

_DEFAULT_REGISTRY = "repro/algorithms/registry.py"

#: R10's sanctioned writers: modules that are *allowed* to mutate shared
#: search state even when reachable from a solver — the memoizing cache
#: layer, the worker-resident datasets of the parallel engine, the
#: per-owner memo tables of the distance oracle, and the fault-injection
#: wrapper (whose whole point is to instrument index traffic).
_DEFAULT_R10_SANCTIONED: Tuple[str, ...] = (
    "repro/index/cache.py",
    "repro/parallel/",
    "repro/kernels/oracle.py",
    "repro/exec/chaos.py",
)


def path_matches(relpath: str, pattern: str) -> bool:
    """Whether a package-relative posix path matches a config pattern."""
    pattern = pattern.strip()
    if not pattern:
        return False
    if pattern.endswith("/"):
        return relpath.startswith(pattern) or ("/" + pattern) in ("/" + relpath)
    return relpath == pattern or relpath.endswith("/" + pattern)


def find_pyproject(start: Path) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


@dataclass(frozen=True)
class AnalysisConfig:
    """Effective settings for one analysis run."""

    disable: Tuple[str, ...] = ()
    include: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_INCLUDE)
    )
    exclude: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_EXCLUDE)
    )
    registry: str = _DEFAULT_REGISTRY
    #: Run the interprocedural dataflow pass (R10-R12).  ``coskq-lint
    #: --no-dataflow`` / ``make lint-fast`` turn it off for quick loops.
    dataflow: bool = True
    #: Where to persist per-module dataflow summaries between runs,
    #: keyed by content hash.  ``None`` disables caching (the default
    #: for library callers; the CLI enables it next to pyproject.toml).
    cache_path: Optional[str] = None
    #: Modules allowed to mutate shared search state under R10.
    r10_sanctioned: Tuple[str, ...] = _DEFAULT_R10_SANCTIONED

    @classmethod
    def load(cls, pyproject: Optional[Path]) -> "AnalysisConfig":
        """Config from a pyproject file (defaults when absent/unreadable)."""
        if pyproject is None or tomllib is None:
            return cls()
        try:
            with open(pyproject, "rb") as handle:
                data = tomllib.load(handle)
        except (OSError, ValueError):
            return cls()
        table = data.get("tool", {}).get("repro", {}).get("analysis", {})
        if not isinstance(table, dict):
            return cls()
        include = dict(_DEFAULT_INCLUDE)
        for rule, paths in table.get("include", {}).items():
            include[str(rule)] = tuple(str(p) for p in paths)
        exclude = dict(_DEFAULT_EXCLUDE)
        for rule, paths in table.get("exclude", {}).items():
            exclude[str(rule)] = tuple(str(p) for p in paths)
        return cls(
            disable=tuple(str(r) for r in table.get("disable", ())),
            include=include,
            exclude=exclude,
            registry=str(table.get("registry", _DEFAULT_REGISTRY)),
            dataflow=bool(table.get("dataflow", True)),
            r10_sanctioned=tuple(
                str(p) for p in table.get("sanction", _DEFAULT_R10_SANCTIONED)
            ),
        )

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def applies_to(self, rule_id: str, relpath: str) -> bool:
        """Whether ``rule_id`` should run on the file at ``relpath``."""
        if not self.rule_enabled(rule_id):
            return False
        only = self.include.get(rule_id)
        if only and not any(path_matches(relpath, p) for p in only):
            return False
        return not any(
            path_matches(relpath, p) for p in self.exclude.get(rule_id, ())
        )
