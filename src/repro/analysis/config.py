"""Configuration for the repro static-analysis pass.

Defaults are baked in so ``python -m repro.analysis`` works on a bare
checkout; a ``[tool.repro.analysis]`` table in ``pyproject.toml``
overrides them per key.  The recognized settings:

- ``disable``     — list of rule ids to turn off entirely;
- ``registry``    — repo-relative path of the algorithm registry module
  rule R1 cross-checks;
- ``include.RX``  — restrict rule ``RX`` to paths matching these
  prefixes/suffixes (directories end with ``/``);
- ``exclude.RX``  — exempt matching paths from rule ``RX``.

Path patterns match the package-relative posix path of each file (e.g.
``repro/utils/rng.py``); a pattern ending in ``/`` matches any file
under that directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - tomllib is stdlib on 3.11+, absent on 3.10
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

__all__ = ["AnalysisConfig", "find_pyproject", "path_matches"]

#: Default per-rule path restrictions, mirrored in pyproject.toml.
_DEFAULT_INCLUDE: Dict[str, Tuple[str, ...]] = {
    # Float-equality bans apply to the distance/cost layers only.
    "R3": (
        "repro/algorithms/",
        "repro/cost/",
        "repro/geometry/",
        "repro/kernels/",
        "repro/network/",
    ),
    # Typed-abort rule: solver code must raise the CoSKQError taxonomy,
    # never a bare RuntimeError.
    "R6": (
        "repro/algorithms/",
        "repro/network/",
    ),
    # Read-only search state: solvers may not assign through shared
    # context/index owners — the memoizing caches depend on it.
    "R7": (
        "repro/algorithms/",
        "repro/network/",
    ),
    # One distance definition: solver hot loops route distance math
    # through repro.geometry / repro.kernels instead of inlining it.
    "R8": (
        "repro/algorithms/",
        "repro/cost/",
    ),
    # One keyword-signature definition: index/solver hot code routes
    # keyword-set predicates through repro.index.signatures.
    "R9": (
        "repro/index/",
        "repro/algorithms/",
    ),
}

_DEFAULT_EXCLUDE: Dict[str, Tuple[str, ...]] = {
    # Determinism rule: the RNG plumbing, the timing harness, and the
    # exec layer's injectable clock are the sanctioned homes for
    # randomness/clocks.
    "R2": ("repro/utils/rng.py", "repro/bench/", "repro/exec/clock.py"),
    # The signature module itself is the sanctioned home of the algebra.
    "R9": ("repro/index/signatures.py",),
}

_DEFAULT_REGISTRY = "repro/algorithms/registry.py"


def path_matches(relpath: str, pattern: str) -> bool:
    """Whether a package-relative posix path matches a config pattern."""
    pattern = pattern.strip()
    if not pattern:
        return False
    if pattern.endswith("/"):
        return relpath.startswith(pattern) or ("/" + pattern) in ("/" + relpath)
    return relpath == pattern or relpath.endswith("/" + pattern)


def find_pyproject(start: Path) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


@dataclass(frozen=True)
class AnalysisConfig:
    """Effective settings for one analysis run."""

    disable: Tuple[str, ...] = ()
    include: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_INCLUDE)
    )
    exclude: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_EXCLUDE)
    )
    registry: str = _DEFAULT_REGISTRY

    @classmethod
    def load(cls, pyproject: Optional[Path]) -> "AnalysisConfig":
        """Config from a pyproject file (defaults when absent/unreadable)."""
        if pyproject is None or tomllib is None:
            return cls()
        try:
            with open(pyproject, "rb") as handle:
                data = tomllib.load(handle)
        except (OSError, ValueError):
            return cls()
        table = data.get("tool", {}).get("repro", {}).get("analysis", {})
        if not isinstance(table, dict):
            return cls()
        include = dict(_DEFAULT_INCLUDE)
        for rule, paths in table.get("include", {}).items():
            include[str(rule)] = tuple(str(p) for p in paths)
        exclude = dict(_DEFAULT_EXCLUDE)
        for rule, paths in table.get("exclude", {}).items():
            exclude[str(rule)] = tuple(str(p) for p in paths)
        return cls(
            disable=tuple(str(r) for r in table.get("disable", ())),
            include=include,
            exclude=exclude,
            registry=str(table.get("registry", _DEFAULT_REGISTRY)),
        )

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def applies_to(self, rule_id: str, relpath: str) -> bool:
        """Whether ``rule_id`` should run on the file at ``relpath``."""
        if not self.rule_enabled(rule_id):
            return False
        only = self.include.get(rule_id)
        if only and not any(path_matches(relpath, p) for p in only):
            return False
        return not any(
            path_matches(relpath, p) for p in self.exclude.get(rule_id, ())
        )
