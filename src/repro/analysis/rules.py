"""The repo-specific lint rules (R1–R5) over Python ASTs.

Each rule encodes an invariant the CoSKQ reproduction's correctness
story depends on; ``docs/STATIC_ANALYSIS.md`` documents the rationale
and the suppression mechanism (``# repro: noqa(RX)``).  The rules:

- **R1** — every concrete ``CoSKQAlgorithm`` subclass declares ``name``
  and ``exact`` and is registered in the algorithm registry;
- **R2** — no direct ``random``/``time``/``datetime`` calls outside the
  sanctioned modules (determinism of experiments);
- **R3** — no ``==``/``!=`` between float-typed distance/cost
  expressions; use :mod:`repro.utils.floatcmp`;
- **R4** — no mutable default arguments, no bare ``except:``, every
  public module declares ``__all__``;
- **R5** — every ``solve()`` override resets its work counters first;
- **R6** — no bare ``RuntimeError`` raised in solver code
  (``repro/algorithms/``, ``repro/network/``): budget/search aborts must
  use the typed taxonomy in :mod:`repro.errors`
  (``BudgetExceededError`` etc.) so the resilience runtime can catch
  them and degrade instead of dying;
- **R7** — solver code never assigns through shared search state: no
  writes reaching through a ``context``/``index``/``inverted`` owner
  (``self.context.index = ...``, ``algo.index._cache[k] = v``).  The
  memoizing cache layer (:mod:`repro.index.cache`) and the cross-query
  result cache are only sound because solvers treat the index as
  read-only; this rule pins that assumption;
- **R8** — solver hot-loop code (``repro/algorithms/``, ``repro/cost/``)
  does not inline ``hypot``/``sqrt`` distance math: distances route
  through :mod:`repro.geometry` or :mod:`repro.kernels`, keeping one
  auditably exact distance definition (all-constant calls such as the
  ``sqrt(3)`` ratio literals are exempt);
- **R9** — index/solver hot code (``repro/index/``,
  ``repro/algorithms/``) does not inline keyword-set algebra
  (``isdisjoint``/``issubset`` calls, ``&`` or ordering comparisons on
  ``*keyword*`` operands): keyword predicates route through
  :mod:`repro.index.signatures`, so the bitmask representation has a
  single home.  The toggle-off fallback branches keep the literal
  frozenset expressions under ``# repro: noqa(R9)`` — those lines *are*
  the measured baseline and must stay byte-comparable to PR-4.

Rules are pure functions from parsed module/project structure to
:class:`Violation` streams; the engine (see :mod:`repro.analysis.engine`)
handles file walking, suppression and reporting.  The interprocedural
rules R10-R12 (call-graph purity, checkpoint reachability, toggle
parity) live in :mod:`repro.analysis.dataflow`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig

__all__ = [
    "Violation",
    "ModuleInfo",
    "ClassInfo",
    "Project",
    "RULE_SUMMARIES",
    "parse_noqa",
    "check_r1",
    "check_r2",
    "check_r3",
    "check_r4",
    "check_r5",
    "check_r6",
    "check_r7",
    "check_r8",
    "check_r9",
]

#: One-line summaries, used by ``--list-rules`` and the docs test.
RULE_SUMMARIES: Dict[str, str] = {
    "R1": "CoSKQAlgorithm subclasses declare name/exact and are registered",
    "R2": "no direct random/time/datetime calls outside rng.py and bench/",
    "R3": "no float ==/!= in distance/cost code; use repro.utils.floatcmp",
    "R4": "no mutable defaults, no bare except, public modules need __all__",
    "R5": "every solve() override calls self._reset_counters() first",
    "R6": "no bare RuntimeError in solver code; raise the typed taxonomy",
    "R7": "solver code never mutates shared context/index state",
    "R8": "no inline hypot/sqrt distance math in solver code; use geometry/kernels",
    "R9": "no inline keyword-set algebra in index/solver code; use index.signatures",
    "R10": "nothing reachable from solve() mutates shared search state (call graph)",
    "R11": "every unbounded solver loop checkpoints on every iteration path",
    "R12": "toggle branches have both arms; off-arms never reach kernel/signature code",
    "NOQA": "suppression comment suppresses nothing (reported with --strict)",
    "PARSE": "file failed to parse (syntax error or unreadable); exit code 3",
}


@dataclass(frozen=True)
class Violation:
    """One rule breach at a specific source location.

    The interprocedural rules (R10-R12) also carry the enclosing
    ``function`` (``relpath:Qual.name``) and, where a finding is only
    explicable through the call graph, the ``chain`` of functions from
    the analysis root to the offending site.
    """

    rule: str
    path: str
    line: int
    message: str
    function: Optional[str] = None
    chain: Tuple[str, ...] = ()

    def format(self) -> str:
        base = "%s:%d: %s %s" % (self.path, self.line, self.rule, self.message)
        if self.chain:
            base += " [call chain: %s]" % " -> ".join(self.chain)
        return base


#: Matches the suppression comment, bare or with a rule list (R3 / R3,R5).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*\(([^)]*)\))?")


def parse_noqa(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line suppressions: line → rule-id set (None = all rules).

    Tokenizes so that noqa-looking text inside string literals and
    docstrings is ignored — only genuine comments count.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        # Unparseable source is reported as a PARSE violation elsewhere;
        # fall back to a plain line scan so suppressions still resolve.
        comments = list(enumerate(source.splitlines(), start=1))
    for lineno, text in comments:
        match = _NOQA_RE.search(text)
        if not match:
            continue
        rules = match.group(1)
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
    return out


@dataclass
class ClassInfo:
    """What the rules need to know about one class definition."""

    name: str
    relpath: str
    lineno: int
    bases: Tuple[str, ...]
    attrs: FrozenSet[str]
    methods: Dict[str, ast.FunctionDef]
    is_abstract: bool


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression map."""

    path: str
    relpath: str
    tree: ast.Module
    noqa: Dict[int, Optional[FrozenSet[str]]] = field(default_factory=dict)
    #: sha256 of the source text — the dataflow pass keys its summary
    #: cache on it so unchanged modules skip re-extraction.
    digest: str = ""

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


@dataclass
class Project:
    """Cross-module structure: the class graph and the registry."""

    modules: List[ModuleInfo]
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    registered: Set[str] = field(default_factory=set)
    registry_found: bool = False

    def ancestors(self, class_name: str) -> Set[str]:
        """All (transitive) base-class names, resolved where possible."""
        seen: Set[str] = set()
        frontier = list(self.classes[class_name].bases) if class_name in self.classes else []
        while frontier:
            base = frontier.pop()
            if base in seen:
                continue
            seen.add(base)
            if base in self.classes:
                frontier.extend(self.classes[base].bases)
        return seen

    def coskq_family(self) -> List[ClassInfo]:
        """Every class that (transitively) subclasses ``CoSKQAlgorithm``."""
        return [
            info
            for name, info in sorted(self.classes.items())
            if name != "CoSKQAlgorithm" and "CoSKQAlgorithm" in self.ancestors(name)
        ]


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The last dotted component of a Name/Attribute, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of a (possibly dotted) expression, else None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# -- R1: algorithm-family contract ---------------------------------------------


def check_r1(project: Project, config: AnalysisConfig) -> Iterator[Violation]:
    """Concrete CoSKQAlgorithm subclasses declare name/exact + register."""
    registered_closure: Set[str] = set(project.registered)
    for reg in project.registered:
        registered_closure |= project.ancestors(reg)
    for cls in project.coskq_family():
        if not config.applies_to("R1", cls.relpath):
            continue
        if cls.name.startswith("_") or cls.is_abstract:
            continue
        chain = [cls] + [
            project.classes[a]
            for a in project.ancestors(cls.name)
            if a in project.classes and a != "CoSKQAlgorithm"
        ]
        for attr in ("name", "exact"):
            if not any(attr in link.attrs for link in chain):
                yield Violation(
                    "R1",
                    cls.relpath,
                    cls.lineno,
                    "algorithm class %r does not define the %r class attribute"
                    % (cls.name, attr),
                )
        if cls.name not in registered_closure:
            yield Violation(
                "R1",
                cls.relpath,
                cls.lineno,
                "algorithm class %r is not registered in the algorithm registry"
                % (cls.name,),
            )


# -- R2: determinism -----------------------------------------------------------

_NONDETERMINISTIC_MODULES = ("random", "time", "datetime")


def check_r2(module: ModuleInfo, config: AnalysisConfig) -> Iterator[Violation]:
    """No direct randomness/clock calls outside the sanctioned modules.

    A bare ``import random`` used only for type annotations is fine; any
    *call* through the module (``random.random()``, ``random.Random()``,
    ``time.time()``, ``datetime.datetime.now()``) and any
    ``from random import ...`` is flagged.
    """
    if not config.applies_to("R2", module.relpath):
        return
    aliases: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _NONDETERMINISTIC_MODULES:
                    aliases.add(alias.asname or root)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                root = node.module.split(".")[0]
                if root in _NONDETERMINISTIC_MODULES:
                    yield Violation(
                        "R2",
                        module.relpath,
                        node.lineno,
                        "from-import of nondeterministic module %r; route through "
                        "repro.utils.rng" % (root,),
                    )
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            root = _root_name(node.func)
            if root in aliases:
                yield Violation(
                    "R2",
                    module.relpath,
                    node.lineno,
                    "direct call into the %r module; route through "
                    "repro.utils.rng (seeds) or keep timing in bench/" % (root,),
                )


# -- R3: float equality --------------------------------------------------------

_FLOATY_EXACT = {
    "d",
    "dx",
    "dy",
    "df",
    "d_f",
    "r",
    "r1",
    "r2",
    "alpha",
    "eps",
    "epsilon",
    "lo",
    "hi",
    "budget",
}
_FLOATY_SUBSTRINGS = ("dist", "cost", "radius", "diam", "bound")


def _is_floaty(node: ast.AST) -> bool:
    """Heuristic: does this expression smell like a distance/cost float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, (ast.Name, ast.Attribute)):
        term = _terminal_identifier(node)
        if term is None:
            return False
        lowered = term.lower()
        return lowered in _FLOATY_EXACT or any(
            sub in lowered for sub in _FLOATY_SUBSTRINGS
        )
    if isinstance(node, ast.BinOp):
        return _is_floaty(node.left) or _is_floaty(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Call):
        term = _terminal_identifier(node.func)
        if term is None:
            return False
        lowered = term.lower()
        return any(sub in lowered for sub in _FLOATY_SUBSTRINGS)
    return False


def check_r3(module: ModuleInfo, config: AnalysisConfig) -> Iterator[Violation]:
    """No exact equality between float-typed distance/cost expressions."""
    if not config.applies_to("R3", module.relpath):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_is_floaty(operand) for operand in operands):
            yield Violation(
                "R3",
                module.relpath,
                node.lineno,
                "float equality on a distance/cost expression; use "
                "repro.utils.floatcmp (float_eq/is_zero)",
            )


# -- R4: API hygiene -----------------------------------------------------------

_MUTABLE_FACTORIES = {"list", "dict", "set"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
        and not node.args
        and not node.keywords
    )


def check_r4(module: ModuleInfo, config: AnalysisConfig) -> Iterator[Violation]:
    """Mutable defaults, bare excepts, and missing ``__all__``."""
    if not config.applies_to("R4", module.relpath):
        return
    basename = module.relpath.rsplit("/", 1)[-1]
    public = basename == "__init__.py" or not basename.startswith("_")
    if public:
        has_all = any(
            (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                )
            )
            or (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
            )
            or (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
            )
            for stmt in module.tree.body
        )
        if not has_all:
            yield Violation(
                "R4",
                module.relpath,
                1,
                "public module does not declare __all__",
            )
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield Violation(
                        "R4",
                        module.relpath,
                        default.lineno,
                        "mutable default argument; default to None and build "
                        "inside the function",
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Violation(
                "R4",
                module.relpath,
                node.lineno,
                "bare except:; catch a concrete exception type",
            )


# -- R5: counter reset ---------------------------------------------------------


def _is_abstract_method(fn: ast.FunctionDef) -> bool:
    for decorator in fn.decorator_list:
        term = _terminal_identifier(decorator)
        if term in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _real_body(fn: ast.FunctionDef) -> List[ast.stmt]:
    """The body minus a leading docstring."""
    body = list(fn.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body


def _calls_reset_counters(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "_reset_counters"
        and isinstance(stmt.value.func.value, ast.Name)
        and stmt.value.func.value.id == "self"
    )


def check_r5(
    module: ModuleInfo, config: AnalysisConfig, project: Project
) -> Iterator[Violation]:
    """``solve()`` overrides reset work counters before doing work.

    Applies to classes in the counter family: those whose ancestry
    (including unresolved base names) reaches ``CoSKQAlgorithm`` or any
    class defining ``_reset_counters``.  The reset must be the first
    non-docstring statement so partial work can never leak between
    queries; delegating implementations suppress with
    ``# repro: noqa(R5)``.
    """
    if not config.applies_to("R5", module.relpath):
        return
    for classdef in module.classes():
        solve = next(
            (
                stmt
                for stmt in classdef.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "solve"
            ),
            None,
        )
        if solve is None:
            continue
        in_family = False
        lineage = {classdef.name} | project.ancestors(classdef.name)
        for member in lineage:
            if member == "CoSKQAlgorithm":
                in_family = True
                break
            member_info = project.classes.get(member)
            if member_info is not None and "_reset_counters" in member_info.methods:
                in_family = True
                break
        if not in_family:
            continue
        if _is_abstract_method(solve):
            continue
        body = _real_body(solve)
        if not body or all(
            isinstance(stmt, (ast.Pass, ast.Raise))
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in body
        ):
            continue
        if not _calls_reset_counters(body[0]):
            yield Violation(
                "R5",
                module.relpath,
                solve.lineno,
                "solve() in %r must call self._reset_counters() as its first "
                "statement" % (classdef.name,),
            )


# -- R6: typed aborts in solver code ------------------------------------------


def check_r6(module: ModuleInfo, config: AnalysisConfig) -> Iterator[Violation]:
    """No bare ``RuntimeError`` raised in solver code.

    A ``raise RuntimeError`` from a search loop escapes every typed
    handler in the resilience runtime (:mod:`repro.exec`), turning a
    budget blow-up into a dead batch instead of a degraded answer.
    Scoped by default to ``repro/algorithms/`` and ``repro/network/``;
    aborts there must use the :class:`repro.errors.CoSKQError` taxonomy
    (``BudgetExceededError``, ``DeadlineExceededError``, ...).

    Both ``raise RuntimeError(...)`` and a bare ``raise RuntimeError``
    are flagged; re-raises of a caught name and other exception types
    are not this rule's business.
    """
    if not config.applies_to("R6", module.relpath):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        if _terminal_identifier(target) == "RuntimeError":
            yield Violation(
                "R6",
                module.relpath,
                node.lineno,
                "bare RuntimeError raised in solver code; raise a typed "
                "CoSKQError (e.g. repro.errors.BudgetExceededError) so the "
                "resilience layer can degrade instead of dying",
            )


# -- R8: one distance definition -----------------------------------------------

#: Call targets that compute Euclidean distances when fed live operands.
_R8_DISTANCE_CALLS = frozenset({"hypot", "sqrt"})


def check_r8(module: ModuleInfo, config: AnalysisConfig) -> Iterator[Violation]:
    """No inline ``hypot``/``sqrt`` distance math in solver hot loops.

    The bit-identity story of the flat-array kernels
    (:mod:`repro.kernels`) rests on there being exactly one distance
    definition: ``math.hypot`` as wrapped by :mod:`repro.geometry` and
    :mod:`repro.kernels`.  A solver that inlines its own
    ``math.sqrt(dx*dx + dy*dy)`` silently forks that definition — it
    rounds differently from ``hypot`` and bypasses the kernels' guarded
    fast paths, so the differential suites stop being able to vouch for
    it.  Scoped by default to ``repro/algorithms/`` and ``repro/cost/``.

    Calls whose arguments are all literal constants (``math.sqrt(3.0)``
    — the paper's approximation-ratio constants) are not distance math
    and are exempt.
    """
    if not config.applies_to("R8", module.relpath):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        term = _terminal_identifier(node.func)
        if term not in _R8_DISTANCE_CALLS:
            continue
        if node.args and all(isinstance(a, ast.Constant) for a in node.args):
            continue
        yield Violation(
            "R8",
            module.relpath,
            node.lineno,
            "inline %s() distance math in solver code; route through "
            "repro.geometry or repro.kernels so there is a single exact "
            "distance definition" % (term,),
        )


# -- R9: one keyword-signature definition ---------------------------------------

#: Method calls that are always keyword-set algebra in the scoped dirs.
_R9_SET_CALLS = frozenset({"isdisjoint", "issubset", "issuperset"})

#: Substring marking an operand as a keyword set (``obj.keywords``,
#: ``query_keywords``, ``keyword_ids`` ...).  Mask operands are named
#: ``*_mask``/``kw_mask`` and deliberately do not match.
_R9_OPERAND_MARKER = "keyword"


def _r9_keyword_operand(node: ast.AST) -> bool:
    term = _terminal_identifier(node)
    return term is not None and _R9_OPERAND_MARKER in term.lower()


def check_r9(module: ModuleInfo, config: AnalysisConfig) -> Iterator[Violation]:
    """No inline keyword-set algebra in index/solver hot code.

    The signature layer (:mod:`repro.index.signatures`) is the single
    home of the keyword-set representation: ``isdisjoint`` is
    ``mask & mask == 0``, ``issubset`` is ``mask & ~mask == 0``, traces
    are ``&`` on masks.  An inline frozenset ``isdisjoint``/``issubset``
    call, a ``&`` intersection or a subset-ordering comparison on a
    ``*keyword*`` operand in the scoped directories forks that
    representation and silently bypasses the bitmask fast paths, so the
    differential suite can no longer vouch for the toggle.  Scoped by
    default to ``repro/index/`` and ``repro/algorithms/`` with the
    signature module itself excluded; the signatures-off fallback
    branches are the measured PR-4 baseline and carry explicit
    ``# repro: noqa(R9)`` markers.
    """
    if not config.applies_to("R9", module.relpath):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            term = _terminal_identifier(node.func)
            if isinstance(node.func, ast.Attribute) and term in _R9_SET_CALLS:
                yield Violation(
                    "R9",
                    module.relpath,
                    node.lineno,
                    "inline %s() keyword-set algebra; route through "
                    "repro.index.signatures (mask predicates or the set-level "
                    "companions)" % (term,),
                )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
            if _r9_keyword_operand(node.left) or _r9_keyword_operand(node.right):
                yield Violation(
                    "R9",
                    module.relpath,
                    node.lineno,
                    "inline '&' on a keyword set; route through "
                    "repro.index.signatures (mask_of/shared_keywords)",
                )
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.BitAnd):
            if _r9_keyword_operand(node.target) or _r9_keyword_operand(node.value):
                yield Violation(
                    "R9",
                    module.relpath,
                    node.lineno,
                    "inline '&=' on a keyword set; route through "
                    "repro.index.signatures (mask_of/shared_keywords)",
                )
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                    continue
                if _r9_keyword_operand(left) or _r9_keyword_operand(right):
                    yield Violation(
                        "R9",
                        module.relpath,
                        node.lineno,
                        "subset-ordering comparison on a keyword set; route "
                        "through repro.index.signatures (covers/covers_all)",
                    )
                    break


# -- R7: shared search state is read-only --------------------------------------

#: Names that denote shared search state when they appear as an *owner*
#: in an assignment target (``self.context.index = ...``).  A bare
#: ``self.context = ...`` (construction) has no such owner and is fine.
_R7_SHARED_OWNERS = frozenset({"context", "index", "inverted"})

#: Method calls that mutate their receiver in place.  A solver calling
#: ``self.context.index._cache.clear()`` corrupts shared state exactly
#: like ``self.context.index._cache = {}`` — the assignment form was
#: caught, the call form was R7's blind spot (now shared with the
#: interprocedural R10, so the cheap rule and the dataflow rule agree
#: on direct cases).
_R7_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "sort",
        "reverse",
        "__setitem__",
        "__delitem__",
    }
)


def _owner_components(node: ast.AST) -> List[str]:
    """Dotted/subscripted components of an assignment target's owner."""
    parts: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts


def check_r7(module: ModuleInfo, config: AnalysisConfig) -> Iterator[Violation]:
    """Solver code never assigns through shared context/index state.

    Every caching layer — :class:`repro.index.cache.CachingIndex`, the
    cross-query result cache, the fork-inherited worker runtimes — is
    sound only while solvers treat the :class:`SearchContext` and its
    indexes as read-only.  This rule flags assignments, augmented
    assignments, annotated assignments and deletes whose target reaches
    *through* a ``context``/``index``/``inverted`` component
    (``self.context.dataset = ...``, ``self.index._cache[k] = v``,
    ``del algo.context.index``).  Plain construction-time attributes
    (``self.context = context``) have no shared owner and are untouched.
    Scoped by default to ``repro/algorithms/`` and ``repro/network/``;
    legitimate wiring elsewhere (e.g. the cache layer itself) is out of
    scope by configuration, not suppression.
    """
    if not config.applies_to("R7", module.relpath):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            # The mutating-call form: ``self.context.index._cache.clear()``.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _R7_MUTATOR_METHODS
            ):
                owners = _owner_components(func.value)
                touched = sorted(set(owners) & _R7_SHARED_OWNERS)
                if touched:
                    yield Violation(
                        "R7",
                        module.relpath,
                        node.lineno,
                        "solver code calls mutating method %s() through shared "
                        "search state (%s); SearchContext and its indexes are "
                        "read-only — the memoizing caches depend on it"
                        % (func.attr, ", ".join(repr(t) for t in touched)),
                    )
            continue
        else:
            continue
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            owners = _owner_components(target.value)
            touched = sorted(set(owners) & _R7_SHARED_OWNERS)
            if touched:
                yield Violation(
                    "R7",
                    module.relpath,
                    node.lineno,
                    "solver code mutates shared search state (through %s); "
                    "SearchContext and its indexes are read-only — the "
                    "memoizing caches depend on it" % ", ".join(repr(t) for t in touched),
                )
