"""Rendering for analysis reports: human text and machine JSON.

The JSON shape is stable for CI consumption::

    {
      "ok": true,
      "files_checked": 62,
      "suppressed": 2,
      "cache": {"hits": 60, "misses": 2},
      "violations": [
        {"rule": "R3", "path": "repro/cost/x.py", "line": 10, "message": "..."}
      ]
    }

Interprocedural findings (R10-R12) additionally carry ``"function"``
(the enclosing ``relpath:Qual.name``) and ``"callchain"`` (the list of
functions from the analysis root to the offending site); both keys are
omitted on purely syntactic findings, SARIF-style.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.engine import AnalysisReport
from repro.analysis.rules import RULE_SUMMARIES, Violation

__all__ = ["render_text", "render_json", "render_rule_list"]


def _as_dict(violation: Violation) -> dict:
    out = {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "message": violation.message,
    }
    if violation.function is not None:
        out["function"] = violation.function
    if violation.chain:
        out["callchain"] = list(violation.chain)
    return out


def render_text(report: AnalysisReport, strict: bool = False) -> str:
    """The classic linter layout: one ``path:line: RULE message`` per hit."""
    lines: List[str] = [v.format() for v in report.effective_violations(strict)]
    count = len(lines)
    summary = "checked %d file%s: %s" % (
        report.files_checked,
        "" if report.files_checked == 1 else "s",
        "no violations" if count == 0 else "%d violation%s"
        % (count, "" if count == 1 else "s"),
    )
    if report.suppressed:
        summary += " (%d suppressed)" % report.suppressed
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport, strict: bool = False) -> str:
    payload = {
        "ok": report.ok(strict),
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "cache": {"hits": report.cache_hits, "misses": report.cache_misses},
        "violations": [_as_dict(v) for v in report.effective_violations(strict)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """One line per rule id for ``--list-rules``."""
    return "\n".join(
        "%-5s %s" % (rule, summary) for rule, summary in sorted(RULE_SUMMARIES.items())
    )
