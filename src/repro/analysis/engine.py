"""Orchestration for the static-analysis pass.

The engine walks the target paths, parses every ``.py`` file with the
stdlib :mod:`ast` module, builds the cross-module class graph rules R1
and R5 need, applies all enabled rules, and folds ``# repro: noqa``
suppressions into the final report.  Everything is stdlib-only by
design: the repo is developed offline with ``dependencies = []``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow import (
    SUMMARY_VERSION,
    ModuleSummary,
    check_dataflow_rules,
    link,
    summarize_module,
)
from repro.analysis.rules import (
    ClassInfo,
    ModuleInfo,
    Project,
    Violation,
    check_r1,
    check_r2,
    check_r3,
    check_r4,
    check_r5,
    check_r6,
    check_r7,
    check_r8,
    check_r9,
    parse_noqa,
)

__all__ = [
    "AnalysisReport",
    "SummaryCache",
    "run_analysis",
    "compute_relpath",
    "load_module",
]


@dataclass
class AnalysisReport:
    """Outcome of one full analysis pass."""

    violations: List[Violation] = field(default_factory=list)
    unused_noqa: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Dataflow summary-cache traffic (0/0 when the pass is skipped).
    cache_hits: int = 0
    cache_misses: int = 0

    def ok(self, strict: bool = False) -> bool:
        if self.violations:
            return False
        return not (strict and self.unused_noqa)

    def effective_violations(self, strict: bool = False) -> List[Violation]:
        out = list(self.violations)
        if strict:
            out.extend(self.unused_noqa)
        return sorted(out, key=lambda v: (v.path, v.line, v.rule, v.message))


def compute_relpath(path: Path) -> str:
    """Package-relative posix path (``repro/...`` when under the package).

    Files outside the ``repro`` package (e.g. test fixtures) fall back to
    a cwd-relative path, or the bare filename as a last resort.
    """
    resolved = path.resolve()
    parts = resolved.parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.name


def load_module(path: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises on syntax error)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=str(path),
        relpath=compute_relpath(path),
        tree=tree,
        noqa=parse_noqa(source),
        digest=hashlib.sha256(source.encode("utf-8")).hexdigest(),
    )


class SummaryCache:
    """Content-hash keyed store of per-module dataflow summaries.

    A single JSON file maps ``relpath -> {"key": sha256+version,
    "summary": ModuleSummary.to_dict()}``.  A module whose source hash
    (and :data:`SUMMARY_VERSION`) matches skips re-extraction entirely,
    which is what keeps the interprocedural pass inside the ``make
    lint`` latency budget.  Corrupt or stale files degrade to a cold
    cache, never to an error.
    """

    def __init__(self, path: Optional[Path]) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                if isinstance(data, dict):
                    self._entries = {
                        k: v for k, v in data.items() if isinstance(v, dict)
                    }
            except (OSError, ValueError):
                self._entries = {}

    @staticmethod
    def _key(module: ModuleInfo) -> str:
        return "%s:v%d" % (module.digest, SUMMARY_VERSION)

    def summarize(self, module: ModuleInfo) -> ModuleSummary:
        """Cached :func:`summarize_module`, keyed by content hash."""
        entry = self._entries.get(module.relpath)
        if entry is not None and entry.get("key") == self._key(module):
            try:
                summary = ModuleSummary.from_dict(entry["summary"])
                self.hits += 1
                return summary
            except (KeyError, TypeError, ValueError, IndexError):
                pass  # malformed entry: fall through to a fresh extraction
        self.misses += 1
        summary = summarize_module(module)
        self._entries[module.relpath] = {
            "key": self._key(module),
            "summary": summary.to_dict(),
        }
        self._dirty = True
        return summary

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        try:
            self.path.write_text(
                json.dumps(self._entries, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a read-only checkout just runs cold every time


def _collect_files(paths: Iterable[Path]) -> List[Path]:
    out: List[Path] = []
    seen: Set[Path] = set()
    for target in paths:
        target = Path(target)
        candidates = (
            sorted(target.rglob("*.py")) if target.is_dir() else [target]
        )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _class_info(module: ModuleInfo, classdef: ast.ClassDef) -> ClassInfo:
    bases = []
    for base in classdef.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
    attrs: Set[str] = set()
    methods: Dict[str, ast.FunctionDef] = {}
    is_abstract = any(b in ("ABC", "ABCMeta", "Protocol") for b in bases)
    for stmt in classdef.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                attrs.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(stmt, ast.FunctionDef):
                methods[stmt.name] = stmt
            for decorator in stmt.decorator_list:
                name = (
                    decorator.attr
                    if isinstance(decorator, ast.Attribute)
                    else decorator.id
                    if isinstance(decorator, ast.Name)
                    else None
                )
                if name in ("abstractmethod", "abstractproperty"):
                    is_abstract = True
    return ClassInfo(
        name=classdef.name,
        relpath=module.relpath,
        lineno=classdef.lineno,
        bases=tuple(bases),
        attrs=frozenset(attrs),
        methods=methods,
        is_abstract=is_abstract,
    )


def _registered_names(registry: ModuleInfo) -> Set[str]:
    """Class names referenced by the registry's factory table.

    Prefers the value expression of the ``_FACTORIES`` assignment; falls
    back to every imported name when the table is not found (so a
    refactor of the registry degrades to a laxer check, not a broken one).
    """
    for stmt in registry.tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "_FACTORIES" for t in stmt.targets
        ):
            return {
                node.id
                for node in ast.walk(stmt.value)
                if isinstance(node, ast.Name)
            }
    imported: Set[str] = set()
    for stmt in registry.tree.body:
        if isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                imported.add(alias.asname or alias.name)
    return imported


def _build_project(modules: List[ModuleInfo], config: AnalysisConfig) -> Project:
    project = Project(modules=modules)
    for module in modules:
        for classdef in module.classes():
            info = _class_info(module, classdef)
            # First definition wins on (unlikely) cross-module collisions.
            project.classes.setdefault(info.name, info)
    registry = next(
        (m for m in modules if m.relpath == config.registry), None
    )
    if registry is None:
        registry = _locate_registry_on_disk(modules, config)
    if registry is not None:
        project.registry_found = True
        project.registered = _registered_names(registry)
    return project


def _locate_registry_on_disk(
    modules: List[ModuleInfo], config: AnalysisConfig
) -> Optional[ModuleInfo]:
    """Find the registry next to the linted package when linting a subset.

    Lets ``coskq-lint src/repro/algorithms/nnset.py`` still resolve
    registration instead of flagging every class as unregistered.
    """
    for module in modules:
        abspath = Path(module.path).resolve().as_posix()
        if not abspath.endswith("/" + module.relpath):
            continue
        src_root = Path(abspath[: -len(module.relpath) - 1])
        candidate = src_root / config.registry
        if candidate.is_file():
            try:
                return load_module(candidate)
            except (OSError, SyntaxError):
                return None
    return None


def _suppressed(module: ModuleInfo, violation: Violation) -> bool:
    if violation.line not in module.noqa:
        return False
    rules = module.noqa[violation.line]
    return rules is None or violation.rule in rules


def run_analysis(
    paths: Iterable[Path], config: Optional[AnalysisConfig] = None
) -> AnalysisReport:
    """Run every enabled rule over ``paths`` and fold in suppressions."""
    config = config if config is not None else AnalysisConfig()
    report = AnalysisReport()
    modules: List[ModuleInfo] = []
    for path in _collect_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as err:
            report.violations.append(
                Violation(
                    "PARSE",
                    compute_relpath(path),
                    err.lineno or 1,
                    "syntax error: %s" % (err.msg,),
                )
            )
        except ValueError as err:
            # ast.parse raises bare ValueError on e.g. null bytes.
            report.violations.append(
                Violation(
                    "PARSE", compute_relpath(path), 1, "unparseable: %s" % err
                )
            )
        except OSError as err:
            report.violations.append(
                Violation("PARSE", compute_relpath(path), 1, "unreadable: %s" % err)
            )
    report.files_checked = len(modules)
    project = _build_project(modules, config)

    raw: List[Tuple[ModuleInfo, Violation]] = []
    by_relpath = {module.relpath: module for module in modules}
    if config.rule_enabled("R1"):
        for violation in check_r1(project, config):
            module = by_relpath.get(violation.path)
            if module is not None:
                raw.append((module, violation))
    for module in modules:
        for violation in check_r2(module, config):
            raw.append((module, violation))
        for violation in check_r3(module, config):
            raw.append((module, violation))
        for violation in check_r4(module, config):
            raw.append((module, violation))
        for violation in check_r5(module, config, project):
            raw.append((module, violation))
        for violation in check_r6(module, config):
            raw.append((module, violation))
        for violation in check_r7(module, config):
            raw.append((module, violation))
        for violation in check_r8(module, config):
            raw.append((module, violation))
        for violation in check_r9(module, config):
            raw.append((module, violation))

    if config.dataflow and any(
        config.rule_enabled(r) for r in ("R10", "R11", "R12")
    ):
        cache = SummaryCache(
            Path(config.cache_path) if config.cache_path else None
        )
        summaries = {
            module.relpath: cache.summarize(module) for module in modules
        }
        cache.save()
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        graph = link(summaries, project)
        for relpath, violation in check_dataflow_rules(graph, config):
            module = by_relpath.get(relpath)
            if module is not None:
                raw.append((module, violation))

    used_noqa: Set[Tuple[str, int]] = set()
    for module, violation in raw:
        if _suppressed(module, violation):
            report.suppressed += 1
            used_noqa.add((module.relpath, violation.line))
        else:
            report.violations.append(violation)
    for module in modules:
        for line in sorted(module.noqa):
            if (module.relpath, line) not in used_noqa:
                report.unused_noqa.append(
                    Violation(
                        "NOQA",
                        module.relpath,
                        line,
                        "suppression comment matches no violation",
                    )
                )
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    report.unused_noqa.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    return report
