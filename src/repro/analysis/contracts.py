"""Opt-in runtime contracts for every CoSKQ solver.

Set ``REPRO_CHECK_CONTRACTS=1`` and call :func:`install` (the test
suite's ``conftest.py`` does this automatically) to wrap every
``solve()`` override in the :class:`~repro.algorithms.base.CoSKQAlgorithm`
hierarchy with post-conditions:

1. **Feasibility** — the returned set covers every query keyword.
2. **Cost honesty** — the reported cost equals an independent
   re-evaluation of the set under the algorithm's cost function.
3. **Exactness** — on instances small enough for the brute-force
   oracle, exact solvers must match the optimal cost.
4. **Ratio bounds** — approximations never beat the optimum, and ones
   with a published ratio (1.375 for MaxSum-Appro, √3 for Dia-Appro,
   3 and 2 for the Cao baselines) must stay within ``ratio × optimum``
   when running the cost the bound is proven for.

Any breach raises :class:`~repro.errors.ContractViolationError`, which
is also an ``AssertionError`` so test harnesses treat it as a failure.

Oracle checks are gated by instance size (:data:`ORACLE_RELEVANT_LIMIT`)
and memoized per ``(dataset, query, cost)`` so enabling contracts keeps
the suite tractable.
"""

from __future__ import annotations

import functools
import os
from typing import Callable, Dict, Iterator, Optional, Tuple, Type

from repro.algorithms.base import CoSKQAlgorithm
from repro.errors import ContractViolationError
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.utils.floatcmp import float_eq, float_geq, float_leq

__all__ = [
    "ENV_FLAG",
    "ORACLE_RELEVANT_LIMIT",
    "COST_TOLERANCE",
    "enabled",
    "install",
    "uninstall",
    "check_result",
]

#: Environment variable that turns the contract layer on.
ENV_FLAG = "REPRO_CHECK_CONTRACTS"

#: Oracle checks only run when the query's relevant-object set is at
#: most this large (the brute force is exponential beyond it).
ORACLE_RELEVANT_LIMIT = 40

#: Tolerance for cost comparisons; looser than floatcmp.EPSILON because
#: costs are assembled through different arithmetic orders per solver.
COST_TOLERANCE = 1e-6

#: Memo of optimal costs keyed by (dataset id, query, cost identity).
_oracle_memo: Dict[Tuple[int, Query, str], float] = {}


def enabled() -> bool:
    """Whether the environment opts into runtime contract checking."""
    return os.environ.get(ENV_FLAG, "").strip() not in ("", "0", "false", "no")


def _cost_identity(cost: object) -> str:
    alpha = getattr(cost, "alpha", None)
    return "%s|%s|%r" % (type(cost).__name__, getattr(cost, "name", "?"), alpha)


def _oracle_cost(algorithm: CoSKQAlgorithm, query: Query) -> Optional[float]:
    """The optimal cost via brute force, or None when out of budget."""
    from repro.algorithms.bruteforce import BruteForceExact

    if isinstance(algorithm, BruteForceExact):
        return None  # it IS the oracle
    context = algorithm.context
    relevant = context.inverted.relevant_objects(query.keywords)
    if len(relevant) > ORACLE_RELEVANT_LIMIT:
        return None
    key = (id(context.dataset), query, _cost_identity(algorithm.cost))
    if key not in _oracle_memo:
        oracle = BruteForceExact(context, algorithm.cost)
        _oracle_memo[key] = oracle.solve(query).cost
    return _oracle_memo[key]


def _ratio_applicable(algorithm: CoSKQAlgorithm) -> Optional[float]:
    """The declared ratio bound, if it holds for the running cost."""
    ratio = algorithm.ratio
    if ratio is None or algorithm.ratio_cost is None:
        return None
    if getattr(algorithm.cost, "name", None) != algorithm.ratio_cost:
        return None
    alpha = getattr(algorithm.cost, "alpha", None)
    if alpha is not None and not float_eq(alpha, 0.5):
        return None  # bounds are proven at the paper's default weighting
    return ratio


def _fail(algorithm: CoSKQAlgorithm, query: Query, message: str) -> None:
    raise ContractViolationError(
        "%s (algorithm=%s, query keywords=%s)"
        % (message, algorithm.name, sorted(query.keywords))
    )


def check_result(
    algorithm: CoSKQAlgorithm, query: Query, result: CoSKQResult
) -> None:
    """Assert the post-conditions of one ``solve()`` call."""
    if not result.objects:
        _fail(algorithm, query, "solve() returned an empty object set")
    covered = result.covered_keywords()
    if not query.keywords <= covered:
        _fail(
            algorithm,
            query,
            "infeasible result: keywords %s uncovered"
            % sorted(query.keywords - covered),
        )
    recomputed = algorithm.cost.evaluate(query, list(result.objects))
    if not float_eq(result.cost, recomputed, COST_TOLERANCE):
        _fail(
            algorithm,
            query,
            "reported cost %.12g != recomputed cost %.12g"
            % (result.cost, recomputed),
        )
    optimum = _oracle_cost(algorithm, query)
    if optimum is None:
        return
    if algorithm.exact:
        if not float_eq(result.cost, optimum, COST_TOLERANCE):
            _fail(
                algorithm,
                query,
                "exact solver returned cost %.12g but the optimum is %.12g"
                % (result.cost, optimum),
            )
        return
    if not float_geq(result.cost, optimum, COST_TOLERANCE):
        _fail(
            algorithm,
            query,
            "approximation returned cost %.12g below the optimum %.12g"
            % (result.cost, optimum),
        )
    ratio = _ratio_applicable(algorithm)
    if ratio is not None and not float_leq(result.cost, ratio * optimum, COST_TOLERANCE):
        _fail(
            algorithm,
            query,
            "approximation cost %.12g exceeds %.4g x optimum (%.12g)"
            % (result.cost, ratio, ratio * optimum),
        )


def _wrap_solve(
    original: Callable[[CoSKQAlgorithm, Query], CoSKQResult],
) -> Callable[[CoSKQAlgorithm, Query], CoSKQResult]:
    @functools.wraps(original)
    def checked_solve(self: CoSKQAlgorithm, query: Query) -> CoSKQResult:
        result = original(self, query)
        check_result(self, query, result)
        return result

    checked_solve._contract_original = original  # type: ignore[attr-defined]
    return checked_solve


def _iter_algorithm_classes() -> Iterator[Type[CoSKQAlgorithm]]:
    # Importing the registry materializes every algorithm class first.
    import repro.algorithms.registry  # noqa: F401 (import for side effect)

    stack = list(CoSKQAlgorithm.__subclasses__())
    seen = set()
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
        yield cls


def install() -> int:
    """Wrap every ``solve()`` override with contract checks (idempotent).

    Returns the number of classes wrapped.  Classes defined after the
    call are not covered; call again to pick them up.
    """
    wrapped = 0
    for cls in _iter_algorithm_classes():
        solve = cls.__dict__.get("solve")
        if solve is None or hasattr(solve, "_contract_original"):
            continue
        cls.solve = _wrap_solve(solve)  # type: ignore[method-assign]
        wrapped += 1
    return wrapped


def uninstall() -> int:
    """Remove previously installed wrappers; returns how many."""
    removed = 0
    for cls in _iter_algorithm_classes():
        solve = cls.__dict__.get("solve")
        original = getattr(solve, "_contract_original", None)
        if original is not None:
            cls.solve = original  # type: ignore[method-assign]
            removed += 1
    _oracle_memo.clear()
    return removed
