"""Interprocedural dataflow analysis: call graph, effects, rules R10-R12.

The syntactic rules R1-R9 (:mod:`repro.analysis.rules`) are per-module
and per-statement: a one-line helper function silently defeats them.
This module closes that hole with a project-wide **call graph** (AST
symbol resolution over ``src/repro`` — module functions, methods
resolved through the class hierarchy the engine's :class:`Project`
already tracks, and simple local aliasing) plus a fixed-point
purity/effect lattice.  Three interprocedural rules run on top:

- **R10 (escape-hardened R7)** — any function *transitively reachable*
  from a registered solver's ``solve()`` that writes through a
  ``context``/``index``/``inverted``/``oracle`` owner is flagged,
  including mutating *calls* (``.append``/``.update``/``.clear``/
  ``__setitem__``-style writes) on index-owned containers, writes
  through locals aliased to shared state, and writes through parameters
  that a caller binds to shared state.  The memoizing cache layer
  (``repro/index/cache.py``) and the worker-resident datasets of
  ``repro/parallel/`` are the sanctioned writers.
- **R11 (checkpoint reachability)** — every ``while`` loop and every
  unbounded-stream ``for`` loop in solver code must reach a
  ``_bump``/``_checkpoint`` call on every iteration path, directly or
  via a called function, so :class:`repro.exec.policy.ExecutionPolicy`
  deadlines keep their ±1-checkpoint abort-latency guarantee.
- **R12 (toggle parity)** — every branch guarded by the
  ``REPRO_KERNELS``/``REPRO_SIGNATURES`` toggles must have both arms,
  and the code reachable with the toggle *off* must not touch
  ``repro.kernels``/``repro.index.signatures`` symbols — the off-paths
  are the frozen, measured baselines of PRs 4-5, and a stray fast-path
  call there is silent baseline drift.

Everything is stdlib-only.  Per-module extraction
(:func:`summarize_module`) is purely local and serializes to plain
JSON-able dicts, which is what makes the engine's content-hash cache
(:mod:`repro.analysis.engine`) sound; all cross-module reasoning
(resolution, fixed points, reachability) happens in :func:`link` and
:func:`check_dataflow_rules` from summaries alone.

Precision notes (documented limits, mirrored in
``docs/STATIC_ANALYSIS.md``): property *accesses* are not call edges,
attribute-method calls resolve by class-hierarchy analysis over the
project's own classes (external receivers fall out of the graph), and
the loop analysis treats nested loops as zero-iteration-able.  The
rules err on the conservative side; ``# repro: noqa(RXX)`` records the
cases a human has vouched for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.rules import (
    ModuleInfo,
    Project,
    Violation,
    _owner_components,
    _root_name,
    _terminal_identifier,
)

__all__ = [
    "SUMMARY_VERSION",
    "CallDesc",
    "MutationSite",
    "LoopSummary",
    "ToggleSite",
    "FunctionSummary",
    "ModuleSummary",
    "DataflowGraph",
    "summarize_module",
    "link",
    "check_dataflow_rules",
]

#: Bump when the summary shape or extraction semantics change: the
#: engine's content-hash cache keys on it, so stale cached summaries
#: from an older analyzer version can never leak into a run.
SUMMARY_VERSION = 1

#: Owners that denote shared search state (R7's set plus the PR-4
#: distance oracle).
_SHARED_OWNERS = frozenset({"context", "index", "inverted", "oracle"})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Cooperative-cancellation probes (R11's targets): solver-side
#: ``self._bump``/``self._checkpoint`` and the duck-typed budget hooks.
_BUMP_METHODS = frozenset({"_bump", "_checkpoint"})
_BUDGET_METHODS = frozenset({"tick", "checkpoint"})

#: Method names the class-hierarchy-analysis index refuses to resolve.
#: A non-``self`` attribute call like ``counters.get(...)`` or
#: ``out.extend(...)`` is almost always a builtin container operation;
#: resolving it to *every* project class that happens to define the
#: name (``CacheIndex.get``, ``_State.extend``, every ``__init__``)
#: unions unrelated effect summaries into the caller and drowns the
#: interprocedural rules in false positives.  Receiver-typed calls
#: (``self.x()`` through the class hierarchy, module-alias calls)
#: resolve precisely and are unaffected.
_CHA_OPAQUE = _MUTATOR_METHODS | frozenset(
    {
        "get",
        "keys",
        "values",
        "items",
        "copy",
        "count",
        "index",
        "split",
        "join",
        "strip",
        "format",
        "close",
        "open",
        "read",
        "write",
        "put",
        "isdisjoint",
        "union",
        "intersection",
        "difference",
        "issubset",
        "issuperset",
        "popleft",
        "appendleft",
    }
)

#: Toggle predicates, exempt from R12's symbol-use check.
_TOGGLE_PREDICATES = {
    "kernels_enabled": "kernels",
    "signatures_enabled": "signatures",
}

#: Dotted module prefixes whose imported symbols belong to each toggle.
_TOGGLE_MODULES = {
    "kernels": ("repro.kernels",),
    "signatures": ("repro.index.signatures",),
}

#: ``for`` loops over these producers count as unbounded streams (R11):
#: index walks and network expansions yield in ascending distance until
#: exhausted, which on large datasets is "until the deadline".
_STREAM_SUFFIXES = ("_iter",)
_STREAM_PREFIXES = ("iter_",)
_STREAM_NAMES = frozenset({"count", "expansion_from"})

#: Path-explosion guard for the per-loop analysis.
_MAX_PATHS = 48


# -- serializable summary records ----------------------------------------------


@dataclass
class CallDesc:
    """One call site, unresolved (resolution happens at link time)."""

    kind: str  # "name" | "self" | "attr"
    name: str
    lineno: int
    #: Positional-arg indexes whose expression roots in shared state.
    shared_args: Tuple[int, ...] = ()
    #: ``(arg index, caller param index)`` for args that are parameters.
    param_args: Tuple[Tuple[int, int], ...] = ()
    #: "attr" calls: receiver owner components, leftmost root last.
    recv: Tuple[str, ...] = ()
    recv_shared: bool = False
    #: "attr" calls whose receiver roots in a caller parameter.
    recv_param: Optional[int] = None
    is_bump: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "lineno": self.lineno,
            "shared_args": list(self.shared_args),
            "param_args": [list(p) for p in self.param_args],
            "recv": list(self.recv),
            "recv_shared": self.recv_shared,
            "recv_param": self.recv_param,
            "is_bump": self.is_bump,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallDesc":
        return cls(
            kind=data["kind"],
            name=data["name"],
            lineno=data["lineno"],
            shared_args=tuple(data["shared_args"]),
            param_args=tuple((a, p) for a, p in data["param_args"]),
            recv=tuple(data["recv"]),
            recv_shared=data["recv_shared"],
            recv_param=data["recv_param"],
            is_bump=data["is_bump"],
        )


@dataclass
class MutationSite:
    """One write whose target chain matters to R10."""

    lineno: int
    kind: str  # "assign" | "call" | "del"
    root: str  # "shared" | "param"
    param: Optional[int]  # set when root == "param"
    detail: str  # human-readable target, e.g. "self.context.index._cache"

    def to_dict(self) -> dict:
        return {
            "lineno": self.lineno,
            "kind": self.kind,
            "root": self.root,
            "param": self.param,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MutationSite":
        return cls(**data)


@dataclass
class LoopSummary:
    """One R11-relevant loop with its locally analyzed iteration paths."""

    lineno: int
    kind: str  # "while" | "for"
    stream: str  # producer name for for-loops, "" for while
    #: Some continuing path neither bumps nor calls anything.
    definite_leak: bool
    #: Paths that only checkpoint if one of their calls transitively
    #: bumps; each entry is the call list of one such path.
    reliant_paths: List[List[CallDesc]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "lineno": self.lineno,
            "kind": self.kind,
            "stream": self.stream,
            "definite_leak": self.definite_leak,
            "reliant_paths": [
                [c.to_dict() for c in path] for path in self.reliant_paths
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopSummary":
        return cls(
            lineno=data["lineno"],
            kind=data["kind"],
            stream=data["stream"],
            definite_leak=data["definite_leak"],
            reliant_paths=[
                [CallDesc.from_dict(c) for c in path]
                for path in data["reliant_paths"]
            ],
        )


@dataclass
class ToggleSite:
    """One ``if`` whose test is decided by a kernels/signatures toggle."""

    lineno: int
    toggle: str  # "kernels" | "signatures"
    missing_off_arm: bool

    def to_dict(self) -> dict:
        return {
            "lineno": self.lineno,
            "toggle": self.toggle,
            "missing_off_arm": self.missing_off_arm,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ToggleSite":
        return cls(**data)


@dataclass
class FunctionSummary:
    """Everything the interprocedural rules need to know about one function."""

    qualname: str  # "func", "Class.method", "outer.inner"
    lineno: int
    cls: Optional[str]
    params: Tuple[str, ...]
    is_static: bool = False
    is_classmethod: bool = False
    calls: List[CallDesc] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    mutates_self: bool = False
    bumps: bool = False
    loops: List[LoopSummary] = field(default_factory=list)
    toggle_sites: List[ToggleSite] = field(default_factory=list)
    #: Per toggle: (lineno, symbol) uses in the toggle-off slice of the
    #: whole body, and the calls reachable in that slice.
    off_uses: Dict[str, List[Tuple[int, str]]] = field(default_factory=dict)
    off_calls: Dict[str, List[CallDesc]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "cls": self.cls,
            "params": list(self.params),
            "is_static": self.is_static,
            "is_classmethod": self.is_classmethod,
            "calls": [c.to_dict() for c in self.calls],
            "mutations": [m.to_dict() for m in self.mutations],
            "mutates_self": self.mutates_self,
            "bumps": self.bumps,
            "loops": [l.to_dict() for l in self.loops],
            "toggle_sites": [t.to_dict() for t in self.toggle_sites],
            "off_uses": {
                toggle: [list(u) for u in uses]
                for toggle, uses in self.off_uses.items()
            },
            "off_calls": {
                toggle: [c.to_dict() for c in calls]
                for toggle, calls in self.off_calls.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            lineno=data["lineno"],
            cls=data["cls"],
            params=tuple(data["params"]),
            is_static=data["is_static"],
            is_classmethod=data["is_classmethod"],
            calls=[CallDesc.from_dict(c) for c in data["calls"]],
            mutations=[MutationSite.from_dict(m) for m in data["mutations"]],
            mutates_self=data["mutates_self"],
            bumps=data["bumps"],
            loops=[LoopSummary.from_dict(l) for l in data["loops"]],
            toggle_sites=[ToggleSite.from_dict(t) for t in data["toggle_sites"]],
            off_uses={
                toggle: [(u[0], u[1]) for u in uses]
                for toggle, uses in data["off_uses"].items()
            },
            off_calls={
                toggle: [CallDesc.from_dict(c) for c in calls]
                for toggle, calls in data["off_calls"].items()
            },
        )


@dataclass
class ModuleSummary:
    """The per-module extraction product (cacheable by content hash)."""

    relpath: str
    functions: List[FunctionSummary] = field(default_factory=list)
    #: Local name -> (dotted module, symbol) for from-imports; symbol is
    #: "" for module aliases (``from repro.kernels import flat as _flat``
    #: binds a module, but we cannot tell — "" marks plain imports).
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "relpath": self.relpath,
            "functions": [f.to_dict() for f in self.functions],
            "imports": {k: list(v) for k, v in self.imports.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            relpath=data["relpath"],
            functions=[FunctionSummary.from_dict(f) for f in data["functions"]],
            imports={k: (v[0], v[1]) for k, v in data["imports"].items()},
        )


# -- extraction helpers --------------------------------------------------------


def _stream_producer(iter_expr: ast.AST) -> Optional[str]:
    """The producer name when a for-loop's iterable is an unbounded stream."""
    if not isinstance(iter_expr, ast.Call):
        return None
    term = _terminal_identifier(iter_expr.func)
    if term is None:
        return None
    if (
        term in _STREAM_NAMES
        or any(term.endswith(s) for s in _STREAM_SUFFIXES)
        or any(term.startswith(p) for p in _STREAM_PREFIXES)
    ):
        return term
    return None


def _chain_text(node: ast.AST) -> str:
    """Best-effort dotted rendering of an attribute/subscript chain."""
    parts = _owner_components(node)
    return ".".join(reversed(parts)) if parts else "<expr>"


def _toggle_symbols(tree: ast.Module) -> Dict[str, str]:
    """Local alias -> toggle, for names imported from toggle modules."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for toggle, prefixes in _TOGGLE_MODULES.items():
                for prefix in prefixes:
                    if node.module == prefix or node.module.startswith(prefix + "."):
                        for alias in node.names:
                            out[alias.asname or alias.name] = toggle
                    elif prefix.startswith(node.module + "."):
                        # ``from repro.index import signatures`` binds the
                        # submodule under its own name.
                        remainder = prefix[len(node.module) + 1 :]
                        for alias in node.names:
                            if alias.name == remainder:
                                out[alias.asname or alias.name] = toggle
    return out


def _module_imports(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    out: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = (node.module, alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (alias.name, "")
    return out


class _FunctionExtractor:
    """Single-function walker: calls, mutations, bumps, loops, toggles."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        qualname: str,
        cls_name: Optional[str],
        toggle_symbols: Dict[str, str],
    ):
        self.fn = fn
        self.toggle_symbols = toggle_symbols
        decorators = {
            _terminal_identifier(d) for d in fn.decorator_list
        }
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        self.summary = FunctionSummary(
            qualname=qualname,
            lineno=fn.lineno,
            cls=cls_name,
            params=tuple(params),
            is_static="staticmethod" in decorators,
            is_classmethod="classmethod" in decorators,
        )
        self.param_index: Dict[str, int] = {p: i for i, p in enumerate(params)}
        self.self_name: Optional[str] = None
        if cls_name is not None and not self.summary.is_static and params:
            self.self_name = params[0]
        self.tainted: Set[str] = set()
        self.param_alias: Dict[str, int] = dict(self.param_index)
        if self.self_name is not None:
            self.param_alias.pop(self.self_name, None)
        self.toggle_vars: Dict[str, Tuple[str, bool]] = {}

    # -- pre-passes ---------------------------------------------------------

    def prepass(self) -> None:
        """Flow-insensitive alias/taint/toggle-var discovery."""
        for _ in range(2):  # two rounds: catches alias-of-alias
            for node in self._walk_stmts(self.fn.body):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if self._expr_shared(node.value):
                        self.tainted.add(target.id)
                    root = _root_name(node.value)
                    if (
                        isinstance(node.value, ast.Name)
                        and root in self.param_alias
                    ):
                        self.param_alias.setdefault(
                            target.id, self.param_alias[root]
                        )
                    off = self._eval_off_raw(node.value)
                    if off is not None:
                        self.toggle_vars[target.id] = off

    def _expr_shared(self, node: ast.AST) -> bool:
        """Does this expression reach through shared search state?"""
        if not isinstance(node, (ast.Attribute, ast.Subscript, ast.Name)):
            return False
        parts = _owner_components(node)
        if not parts:
            return False
        root = parts[-1]
        if set(parts) & _SHARED_OWNERS:
            return True
        return root in self.tainted

    def _eval_off_raw(self, expr: ast.AST) -> Optional[Tuple[str, bool]]:
        """(toggle, value-under-off) when ``expr`` is toggle-determined."""
        for toggle in ("kernels", "signatures"):
            value = self._eval_off(expr, toggle)
            if value is not None:
                return (toggle, value)
        return None

    def _eval_off(self, expr: ast.AST, toggle: str) -> Optional[bool]:
        """Truth value of ``expr`` when ``toggle`` is off, if decidable."""
        if isinstance(expr, ast.Call):
            term = _terminal_identifier(expr.func)
            if term is not None and _TOGGLE_PREDICATES.get(term) == toggle:
                return False
            return None
        if isinstance(expr, ast.Name):
            entry = self.toggle_vars.get(expr.id)
            if entry is not None and entry[0] == toggle:
                return entry[1]
            return None
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            inner = self._eval_off(expr.operand, toggle)
            return None if inner is None else not inner
        if isinstance(expr, ast.BoolOp):
            values = [self._eval_off(v, toggle) for v in expr.values]
            if isinstance(expr.op, ast.And):
                if any(v is False for v in values):
                    return False
                if all(v is True for v in values):
                    return True
                return None
            if any(v is True for v in values):
                return True
            if all(v is False for v in values):
                return False
            return None
        return None

    def _guard_toggle(self, test: ast.AST) -> Optional[Tuple[str, bool]]:
        """(toggle, off-value) when an ``if`` test is toggle-determined."""
        return self._eval_off_raw(test)

    # -- generic statement walking (skips nested defs) ----------------------

    def _walk_stmts(self, stmts: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield from self._walk_node(stmt)

    def _walk_node(self, node: ast.AST) -> Iterator[ast.AST]:
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from self._walk_node(child)

    # -- call / mutation classification -------------------------------------

    def _classify_call(self, node: ast.Call) -> Optional[CallDesc]:
        func = node.func
        shared_args = tuple(
            i for i, a in enumerate(node.args) if self._expr_shared(a)
        )
        param_args = tuple(
            (i, self.param_alias[a.id])
            for i, a in enumerate(node.args)
            if isinstance(a, ast.Name) and a.id in self.param_alias
        )
        if isinstance(func, ast.Name):
            return CallDesc(
                kind="name",
                name=func.id,
                lineno=node.lineno,
                shared_args=shared_args,
                param_args=param_args,
            )
        if isinstance(func, ast.Attribute):
            recv = tuple(_owner_components(func.value))
            root = recv[-1] if recv else None
            is_bump = func.attr in _BUMP_METHODS or (
                func.attr in _BUDGET_METHODS and "budget" in recv
            )
            if (
                isinstance(func.value, ast.Name)
                and self.self_name is not None
                and func.value.id == self.self_name
            ):
                return CallDesc(
                    kind="self",
                    name=func.attr,
                    lineno=node.lineno,
                    shared_args=shared_args,
                    param_args=param_args,
                    recv=recv,
                    is_bump=is_bump,
                )
            recv_shared = bool(set(recv) & _SHARED_OWNERS) or (
                root in self.tainted if root else False
            )
            recv_param = (
                self.param_alias.get(root) if root is not None else None
            )
            return CallDesc(
                kind="attr",
                name=func.attr,
                lineno=node.lineno,
                shared_args=shared_args,
                param_args=param_args,
                recv=recv,
                recv_shared=recv_shared,
                recv_param=recv_param,
                is_bump=is_bump,
            )
        return None

    def _mutation_of_target(
        self, target: ast.AST, lineno: int, kind: str
    ) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        owners = _owner_components(target.value)
        if not owners:
            return
        root = owners[-1]
        detail = _chain_text(target.value)
        if set(owners) & _SHARED_OWNERS or root in self.tainted:
            self.summary.mutations.append(
                MutationSite(lineno, kind, "shared", None, detail)
            )
        elif root in self.param_alias:
            self.summary.mutations.append(
                MutationSite(lineno, kind, "param", self.param_alias[root], detail)
            )
        elif self.self_name is not None and root == self.self_name:
            self.summary.mutates_self = True

    def _mutating_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATOR_METHODS:
            return
        owners = _owner_components(func.value)
        if not owners:
            return
        root = owners[-1]
        detail = "%s.%s()" % (_chain_text(func.value), func.attr)
        if set(owners) & _SHARED_OWNERS or root in self.tainted:
            self.summary.mutations.append(
                MutationSite(node.lineno, "call", "shared", None, detail)
            )
        elif root in self.param_alias:
            self.summary.mutations.append(
                MutationSite(
                    node.lineno, "call", "param", self.param_alias[root], detail
                )
            )
        elif (
            self.self_name is not None
            and root == self.self_name
            and len(owners) > 1
        ):
            self.summary.mutates_self = True

    # -- main extraction -----------------------------------------------------

    def extract(self) -> FunctionSummary:
        self.prepass()
        for node in self._walk_stmts(self.fn.body):
            if isinstance(node, ast.Call):
                desc = self._classify_call(node)
                if desc is not None:
                    self.summary.calls.append(desc)
                    if desc.is_bump:
                        self.summary.bumps = True
                self._mutating_call(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._mutation_of_target(target, node.lineno, "assign")
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._mutation_of_target(node.target, node.lineno, "assign")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._mutation_of_target(target, node.lineno, "del")
            elif isinstance(node, ast.While):
                self._record_loop(node, "while", "")
            elif isinstance(node, ast.For):
                stream = _stream_producer(node.iter)
                if stream is not None:
                    self._record_loop(node, "for", stream)
            elif isinstance(node, ast.If):
                guard = self._guard_toggle(node.test)
                if guard is not None:
                    toggle, off_value = guard
                    missing = (
                        off_value is False
                        and not node.orelse
                        and not _terminates(node.body)
                    )
                    self.summary.toggle_sites.append(
                        ToggleSite(node.lineno, toggle, missing)
                    )
        self._extract_off_slices()
        return self.summary

    # -- R11 loop-path analysis ----------------------------------------------

    def _record_loop(self, node: ast.AST, kind: str, stream: str) -> None:
        paths = _LoopPaths(self)
        body = node.body  # type: ignore[attr-defined]
        continuing = paths.analyze(body)
        definite_leak = False
        reliant: List[List[CallDesc]] = []
        for bumped, calls in continuing:
            if bumped:
                continue
            if not calls:
                definite_leak = True
            else:
                reliant.append(list(calls))
        self.summary.loops.append(
            LoopSummary(node.lineno, kind, stream, definite_leak, reliant)
        )

    # -- R12 off-slice extraction --------------------------------------------

    def _extract_off_slices(self) -> None:
        toggles = {site.toggle for site in self.summary.toggle_sites}
        # Functions that never branch on a toggle still get whole-body
        # "slices" (their behavior is toggle-independent), used by the
        # transitive off-path check in link().
        for toggle in ("kernels", "signatures"):
            uses: List[Tuple[int, str]] = []
            calls: List[CallDesc] = []
            self._slice(self.fn.body, toggle, uses, calls)
            if toggle in toggles:
                self.summary.off_uses[toggle] = uses
                self.summary.off_calls[toggle] = calls
            else:
                # No branch on this toggle: record uses/calls unsliced so
                # callers' off-arms can see through this function.
                self.summary.off_uses[toggle] = uses
                self.summary.off_calls[toggle] = calls

    def _slice(
        self,
        stmts: Sequence[ast.stmt],
        toggle: str,
        uses: List[Tuple[int, str]],
        calls: List[CallDesc],
    ) -> None:
        """Collect toggle-module uses/calls reachable with ``toggle`` off."""
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.If):
                decided = self._eval_off(stmt.test, toggle)
                self._slice_expr(stmt.test, toggle, uses, calls)
                if decided is False:
                    self._slice(stmt.orelse, toggle, uses, calls)
                    # A terminating else-arm (``if kernels_enabled(): ...
                    # else: return fallback``) makes the rest of the block
                    # on-path-only.
                    if _terminates(stmt.orelse):
                        return
                elif decided is True:
                    self._slice(stmt.body, toggle, uses, calls)
                    # ``if not kernels_enabled(): return None`` — nothing
                    # after this statement is reachable with the toggle
                    # off, so the slice stops here.
                    if _terminates(stmt.body):
                        return
                else:
                    self._slice(stmt.body, toggle, uses, calls)
                    self._slice(stmt.orelse, toggle, uses, calls)
                continue
            if isinstance(stmt, (ast.While,)):
                self._slice_expr(stmt.test, toggle, uses, calls)
                self._slice(stmt.body, toggle, uses, calls)
                self._slice(stmt.orelse, toggle, uses, calls)
                continue
            if isinstance(stmt, ast.For):
                self._slice_expr(stmt.iter, toggle, uses, calls)
                self._slice(stmt.body, toggle, uses, calls)
                self._slice(stmt.orelse, toggle, uses, calls)
                continue
            if isinstance(stmt, ast.Try):
                self._slice(stmt.body, toggle, uses, calls)
                for handler in stmt.handlers:
                    self._slice(handler.body, toggle, uses, calls)
                self._slice(stmt.orelse, toggle, uses, calls)
                self._slice(stmt.finalbody, toggle, uses, calls)
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._slice_expr(item.context_expr, toggle, uses, calls)
                self._slice(stmt.body, toggle, uses, calls)
                continue
            if isinstance(stmt, ast.AnnAssign):
                # Annotations are types, not behavior: ``oracle:
                # Optional[DistanceOracle] = None`` must not count as an
                # off-path use of the kernels layer.
                self._slice_expr(stmt.target, toggle, uses, calls)
                if stmt.value is not None:
                    self._slice_expr(stmt.value, toggle, uses, calls)
                continue
            # Leaf statement: slice every contained expression.
            for child in ast.iter_child_nodes(stmt):
                self._slice_expr(child, toggle, uses, calls)

    def _slice_expr(
        self,
        node: ast.AST,
        toggle: str,
        uses: List[Tuple[int, str]],
        calls: List[CallDesc],
    ) -> None:
        if node is None or isinstance(node, ast.stmt):
            return
        if isinstance(node, ast.IfExp):
            decided = self._eval_off(node.test, toggle)
            self._slice_expr(node.test, toggle, uses, calls)
            if decided is False:
                self._slice_expr(node.orelse, toggle, uses, calls)
            elif decided is True:
                self._slice_expr(node.body, toggle, uses, calls)
            else:
                self._slice_expr(node.body, toggle, uses, calls)
                self._slice_expr(node.orelse, toggle, uses, calls)
            return
        if isinstance(node, ast.Call):
            desc = self._classify_call(node)
            if desc is not None:
                calls.append(desc)
            term = _terminal_identifier(node.func)
            if term in _TOGGLE_PREDICATES:
                # The predicate itself is exempt; still slice its args.
                for arg in node.args:
                    self._slice_expr(arg, toggle, uses, calls)
                return
        if isinstance(node, ast.Name):
            if (
                self.toggle_symbols.get(node.id) == toggle
                and node.id not in _TOGGLE_PREDICATES
            ):
                uses.append((node.lineno, node.id))
            return
        if isinstance(node, ast.Attribute):
            root = _root_name(node)
            if (
                root is not None
                and self.toggle_symbols.get(root) == toggle
                and node.attr not in _TOGGLE_PREDICATES
            ):
                uses.append((node.lineno, "%s.%s" % (root, node.attr)))
                return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt,)):
                continue
            self._slice_expr(child, toggle, uses, calls)


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    """Whether a statement list never falls through its end."""
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break)):
        return True
    if isinstance(last, ast.If):
        return bool(last.orelse) and _terminates(last.body) and _terminates(last.orelse)
    return False


class _LoopPaths:
    """Enumerate a loop body's continuing iteration paths.

    A *continuing* path is one that reaches the next iteration — by
    falling off the end of the body or via ``continue``.  Paths that
    ``break``/``return``/``raise`` exit the loop and are dropped.  Each
    path carries (bumped, calls-made): nested loops are treated as
    zero-iteration-able (their bodies guarantee nothing), and any call
    on an un-bumped path is recorded so link() can credit callees that
    transitively checkpoint.
    """

    def __init__(self, extractor: _FunctionExtractor):
        self.ex = extractor

    def analyze(
        self, body: Sequence[ast.stmt]
    ) -> List[Tuple[bool, Tuple[CallDesc, ...]]]:
        falls, continues = self._seq(body, (False, ()))
        return self._cap(falls + continues)

    # A path state is (bumped, calls-tuple).

    def _cap(self, paths: List[Tuple[bool, Tuple[CallDesc, ...]]]):
        if len(paths) <= _MAX_PATHS:
            return paths
        # Conservative merge: bumped only if every path bumped; calls
        # only those common to all paths (by call identity).
        bumped = all(p[0] for p in paths)
        common = set(id(c) for c in paths[0][1])
        keyed = {id(c): c for p in paths for c in p[1]}
        for p in paths[1:]:
            common &= {id(c) for c in p[1]}
        return [(bumped, tuple(keyed[k] for k in common))]

    def _expr_effects(
        self, node: Optional[ast.AST], state: Tuple[bool, Tuple[CallDesc, ...]]
    ) -> Tuple[bool, Tuple[CallDesc, ...]]:
        """Fold the calls of one (leaf) expression/statement into a state."""
        if node is None:
            return state
        bumped, calls = state
        for sub in self.ex._walk_node(node):
            if isinstance(sub, ast.Call):
                desc = self.ex._classify_call(sub)
                if desc is None:
                    continue
                if desc.is_bump:
                    bumped = True
                else:
                    calls = calls + (desc,)
        return (bumped, calls)

    def _seq(self, stmts, state):
        """Returns (falls, continues): path states out of this list."""
        falls: List[Tuple[bool, Tuple[CallDesc, ...]]] = []
        continues: List[Tuple[bool, Tuple[CallDesc, ...]]] = []
        states = [state]
        for stmt in stmts:
            next_states: List[Tuple[bool, Tuple[CallDesc, ...]]] = []
            for current in states:
                f, c = self._stmt(stmt, current)
                next_states.extend(f)
                continues.extend(c)
            states = self._cap(next_states)
            if not states:
                break
        falls.extend(states)
        return self._cap(falls), self._cap(continues)

    def _stmt(self, stmt, state):
        """One statement: returns (fall-through states, continue states)."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return [state], []
        if isinstance(stmt, ast.Continue):
            return [], [state]
        if isinstance(stmt, (ast.Break, ast.Return, ast.Raise)):
            # Exits the loop (or the function): not a continuing path.
            # Effects in the value expression do not matter for R11.
            return [], []
        if isinstance(stmt, ast.If):
            test_state = self._expr_effects(stmt.test, state)
            body_f, body_c = self._seq(stmt.body, test_state)
            else_f, else_c = self._seq(stmt.orelse, test_state)
            return self._cap(body_f + else_f), self._cap(body_c + else_c)
        if isinstance(stmt, (ast.For, ast.While)):
            # Nested loop: header expression runs; the body may run zero
            # times, so it guarantees nothing.  ``continue``/``break``
            # inside bind to the nested loop, not this one.
            header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
            after = self._expr_effects(header, state)
            orelse_f, orelse_c = self._seq(stmt.orelse, after)
            return self._cap([after] + orelse_f), orelse_c
        if isinstance(stmt, ast.Try):
            body_f, body_c = self._seq(stmt.body, state)
            outs_f = list(body_f)
            outs_c = list(body_c)
            for handler in stmt.handlers:
                # A handler may run after any prefix of the body: start
                # from the pre-try state (conservative).
                h_f, h_c = self._seq(handler.body, state)
                outs_f.extend(h_f)
                outs_c.extend(h_c)
            if stmt.orelse:
                o_f, o_c = [], []
                for s in body_f:
                    f2, c2 = self._seq(stmt.orelse, s)
                    o_f.extend(f2)
                    o_c.extend(c2)
                outs_f = [s for s in outs_f if s not in body_f] + o_f
                outs_c.extend(o_c)
            if stmt.finalbody:
                fin_f, fin_c = [], []
                for s in outs_f:
                    f2, c2 = self._seq(stmt.finalbody, s)
                    fin_f.extend(f2)
                    fin_c.extend(c2)
                outs_f = fin_f
                outs_c.extend(fin_c)
            return self._cap(outs_f), self._cap(outs_c)
        if isinstance(stmt, ast.With):
            entry = state
            for item in stmt.items:
                entry = self._expr_effects(item.context_expr, entry)
            return self._seq(stmt.body, entry)
        # Leaf statement: fold in its expression effects.
        return [self._expr_effects(stmt, state)], []


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Extract the (cacheable) dataflow summary of one parsed module."""
    toggle_symbols = _toggle_symbols(module.tree)
    summary = ModuleSummary(
        relpath=module.relpath, imports=_module_imports(module.tree)
    )

    def visit_functions(
        body: Sequence[ast.stmt], prefix: str, cls_name: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                visit_functions(stmt.body, stmt.name + ".", stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(stmt, ast.AsyncFunctionDef):
                    continue
                qualname = prefix + stmt.name
                extractor = _FunctionExtractor(
                    stmt, qualname, cls_name, toggle_symbols
                )
                summary.functions.append(extractor.extract())
                # Nested defs become their own summaries; calls to their
                # bare name resolve module-locally via the name table.
                visit_functions(stmt.body, qualname + ".", cls_name)

    visit_functions(module.tree.body, "", None)
    return summary


# -- linking and fixed points --------------------------------------------------


def _dotted_to_relpath(dotted: str) -> str:
    return dotted.replace(".", "/") + ".py"


@dataclass
class DataflowGraph:
    """Linked project-wide view: resolution tables + effect closures."""

    summaries: Dict[str, ModuleSummary]  # relpath -> summary
    project: Project
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: relpath -> {local function simple/qual name -> key}
    local_names: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: method name -> [keys] over every project class (CHA).
    methods: Dict[str, List[str]] = field(default_factory=dict)
    #: (class name, method name) -> key
    class_methods: Dict[Tuple[str, str], str] = field(default_factory=dict)
    # Fixed-point results:
    bumps: Set[str] = field(default_factory=set)
    mutates_params: Dict[str, Set[int]] = field(default_factory=dict)
    mutates_self: Set[str] = field(default_factory=set)

    def key(self, relpath: str, qualname: str) -> str:
        return "%s::%s" % (relpath, qualname)

    def relpath_of(self, key: str) -> str:
        return key.split("::", 1)[0]

    def display(self, key: str) -> str:
        relpath, qualname = key.split("::", 1)
        return "%s:%s" % (relpath, qualname)

    # -- resolution ---------------------------------------------------------

    def resolve(self, relpath: str, fn: FunctionSummary, desc: CallDesc) -> List[str]:
        """Candidate function keys for one call site."""
        if desc.kind == "name":
            local = self.local_names.get(relpath, {})
            # Nested functions are registered under their dotted
            # qualname; prefer a sibling nested def, then module scope.
            nested = "%s.%s" % (fn.qualname, desc.name)
            if nested in local:
                return [local[nested]]
            if desc.name in local:
                return [local[desc.name]]
            imports = self.summaries[relpath].imports if relpath in self.summaries else {}
            target = imports.get(desc.name)
            if target is not None:
                module_dotted, symbol = target
                symbol = symbol or desc.name
                target_rel = _dotted_to_relpath(module_dotted)
                target_local = self.local_names.get(target_rel, {})
                if symbol in target_local:
                    return [target_local[symbol]]
                # Imported class used as a constructor.
                init = self.class_methods.get((symbol, "__init__"))
                if init is not None:
                    return [init]
            # A class constructed by its local name.
            init = self.class_methods.get((desc.name, "__init__"))
            if init is not None:
                return [init]
            return []
        if desc.kind == "self":
            if fn.cls is None:
                return []
            lineage = [fn.cls] + sorted(self.project.ancestors(fn.cls))
            for cls_name in lineage:
                key = self.class_methods.get((cls_name, desc.name))
                if key is not None:
                    return [key]
            return []
        # attr call: module alias first, then class-hierarchy analysis.
        root = desc.recv[-1] if desc.recv else None
        if root is not None and len(desc.recv) == 1:
            imports = self.summaries[relpath].imports if relpath in self.summaries else {}
            target = imports.get(root)
            if target is not None and target[1] == "":
                target_rel = _dotted_to_relpath(target[0])
                target_local = self.local_names.get(target_rel, {})
                if desc.name in target_local:
                    return [target_local[desc.name]]
        return list(self.methods.get(desc.name, ()))


def link(summaries: Dict[str, ModuleSummary], project: Project) -> DataflowGraph:
    """Build resolution tables and run the effect fixed points."""
    graph = DataflowGraph(summaries=summaries, project=project)
    for relpath, summary in summaries.items():
        local: Dict[str, str] = {}
        for fn in summary.functions:
            key = graph.key(relpath, fn.qualname)
            graph.functions[key] = fn
            local.setdefault(fn.qualname, key)
            if fn.cls is None:
                local.setdefault(fn.qualname.split(".")[-1], key)
            else:
                method = fn.qualname.split(".")[-1]
                graph.class_methods.setdefault((fn.cls, method), key)
                if method not in _CHA_OPAQUE and not method.startswith("__"):
                    graph.methods.setdefault(method, []).append(key)
            if fn.bumps:
                graph.bumps.add(key)
            if fn.mutates_self:
                graph.mutates_self.add(key)
            direct_params = {
                m.param for m in fn.mutations if m.root == "param" and m.param is not None
            }
            if direct_params:
                graph.mutates_params[key] = set(direct_params)
        graph.local_names[relpath] = local
    for keys in graph.methods.values():
        keys.sort()

    # Fixed point: transitive bumps, param mutation, self mutation, and
    # call-induced shared mutations (shared state escaping via an
    # argument into a param-mutating callee, or via a method call on a
    # shared receiver whose target mutates its own self).
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for key, fn in graph.functions.items():
            relpath = graph.relpath_of(key)
            for desc in fn.calls:
                candidates = graph.resolve(relpath, fn, desc)
                # bumps closure
                if key not in graph.bumps and any(
                    c in graph.bumps for c in candidates
                ):
                    graph.bumps.add(key)
                    changed = True
                for cand in candidates:
                    offset = _param_offset(graph.functions[cand], desc)
                    mutated = graph.mutates_params.get(cand, ())
                    for arg_i, param_i in desc.param_args:
                        if arg_i + offset in mutated:
                            mine = graph.mutates_params.setdefault(key, set())
                            if param_i not in mine:
                                mine.add(param_i)
                                changed = True
                    # method call on a self-ish receiver that reaches a
                    # self-mutating target: the method mutates our self
                    # too (``self._helper()`` chains).
                    if (
                        desc.kind == "self"
                        and cand in graph.mutates_self
                        and key not in graph.mutates_self
                    ):
                        graph.mutates_self.add(key)
                        changed = True
    return graph


def _param_offset(callee: FunctionSummary, desc: CallDesc) -> int:
    """Positional-arg index -> callee param index offset."""
    if callee.cls is None or callee.is_static:
        return 0
    if desc.kind == "name":
        # Constructor or unbound call: arg 0 is param 1 for __init__.
        return 1 if callee.qualname.endswith("__init__") else 0
    return 1


# -- the rules -----------------------------------------------------------------


def _solver_roots(graph: DataflowGraph, config: AnalysisConfig) -> List[str]:
    """``solve()`` keys of every solver-family class in R10's scope."""
    roots: List[str] = []
    for name, info in sorted(graph.project.classes.items()):
        lineage = {name} | graph.project.ancestors(name)
        in_family = "CoSKQAlgorithm" in lineage
        if not in_family:
            for member in lineage:
                member_info = graph.project.classes.get(member)
                if member_info is not None and "_reset_counters" in member_info.methods:
                    in_family = True
                    break
        if not in_family:
            continue
        key = graph.class_methods.get((name, "solve"))
        if key is None:
            continue
        if config.applies_to("R10", graph.relpath_of(key)):
            roots.append(key)
    return roots


def _sanctioned(relpath: str, config: AnalysisConfig) -> bool:
    from repro.analysis.config import path_matches

    return any(path_matches(relpath, p) for p in config.r10_sanctioned)


def check_r10(
    graph: DataflowGraph, config: AnalysisConfig
) -> Iterator[Tuple[str, Violation]]:
    """Shared-state writes transitively reachable from solver ``solve()``."""
    reported: Set[Tuple[str, int]] = set()
    for root in _solver_roots(graph, config):
        # BFS with parent pointers for call-chain reporting.
        parents: Dict[str, Optional[str]] = {root: None}
        queue: List[str] = [root]
        while queue:
            key = queue.pop(0)
            fn = graph.functions[key]
            relpath = graph.relpath_of(key)
            sanctioned = _sanctioned(relpath, config)
            if not sanctioned:
                for site in self_mutations(fn):
                    spot = (relpath, site.lineno)
                    if spot in reported:
                        continue
                    reported.add(spot)
                    yield relpath, Violation(
                        "R10",
                        relpath,
                        site.lineno,
                        "function reachable from %s mutates shared search "
                        "state (%s); only the sanctioned writer modules "
                        "(the `sanction` list in [tool.repro.analysis]) may "
                        "write through context/index/inverted/oracle owners"
                        % (graph.display(root), site.detail),
                        function=graph.display(key),
                        chain=_chain_to(graph, parents, key),
                    )
            for desc in fn.calls:
                candidates = graph.resolve(relpath, fn, desc)
                if not sanctioned:
                    for viol in _call_site_escapes(
                        graph, config, key, desc, candidates
                    ):
                        spot = (relpath, desc.lineno)
                        if spot in reported:
                            continue
                        reported.add(spot)
                        yield relpath, Violation(
                            "R10",
                            relpath,
                            desc.lineno,
                            viol % (graph.display(root),),
                            function=graph.display(key),
                            chain=_chain_to(graph, parents, key),
                        )
                for cand in candidates:
                    if cand not in parents:
                        parents[cand] = key
                        queue.append(cand)


def self_mutations(fn: FunctionSummary) -> List[MutationSite]:
    return [m for m in fn.mutations if m.root == "shared"]


def _call_site_escapes(
    graph: DataflowGraph,
    config: AnalysisConfig,
    key: str,
    desc: CallDesc,
    candidates: List[str],
) -> Iterator[str]:
    """R10 messages for escapes at one call site (shared args/receivers).

    Effects are attributed by *consensus*: when resolution is ambiguous
    (a protocol method defined by several classes), the call is flagged
    only if every unsanctioned candidate carries the effect — a single
    mutating implementation of a mostly-pure protocol must not condemn
    every call through the interface.  Candidates defined in sanctioned
    writer modules (the cache layer, the oracle memo tables) are
    excluded before the vote: their writes are allowed by design.
    """
    unsanctioned = [
        c for c in candidates if not _sanctioned(graph.relpath_of(c), config)
    ]
    if not unsanctioned:
        return
    if desc.shared_args:

        def arg_escapes(cand: str) -> bool:
            offset = _param_offset(graph.functions[cand], desc)
            mutated = graph.mutates_params.get(cand, ())
            return any(a + offset in mutated for a in desc.shared_args)

        if all(arg_escapes(c) for c in unsanctioned):
            yield (
                "shared search state escapes into %s(), which mutates it; "
                "reachable from %%s" % (desc.name,)
            )
            return
    if (
        desc.kind == "attr"
        and desc.recv_shared
        and all(c in graph.mutates_self for c in unsanctioned)
    ):
        yield (
            "mutating call %s() on shared search state (receiver %s); "
            "reachable from %%s" % (desc.name, ".".join(reversed(desc.recv)))
        )


def _chain_to(
    graph: DataflowGraph, parents: Dict[str, Optional[str]], key: str
) -> Tuple[str, ...]:
    chain: List[str] = []
    cursor: Optional[str] = key
    while cursor is not None:
        chain.append(graph.display(cursor))
        cursor = parents.get(cursor)
    return tuple(reversed(chain))


def check_r11(
    graph: DataflowGraph, config: AnalysisConfig
) -> Iterator[Tuple[str, Violation]]:
    """Unbounded loops must checkpoint on every iteration path."""
    for key in sorted(graph.functions):
        fn = graph.functions[key]
        relpath = graph.relpath_of(key)
        if not fn.loops or not config.applies_to("R11", relpath):
            continue
        for loop in fn.loops:
            what = (
                "while loop"
                if loop.kind == "while"
                else "for loop over %s()" % (loop.stream,)
            )
            if loop.definite_leak:
                yield relpath, Violation(
                    "R11",
                    relpath,
                    loop.lineno,
                    "%s has an iteration path that never reaches "
                    "_bump()/_checkpoint(); ExecutionPolicy deadlines "
                    "cannot interrupt it" % (what,),
                    function=graph.display(key),
                )
                continue
            for path in loop.reliant_paths:
                satisfied = False
                witness: Tuple[str, ...] = ()
                for desc in path:
                    for cand in graph.resolve(relpath, fn, desc):
                        if cand in graph.bumps:
                            satisfied = True
                            witness = (graph.display(cand),)
                            break
                    if satisfied:
                        break
                if not satisfied:
                    called = ", ".join(
                        sorted({d.name + "()" for d in path})
                    )
                    yield relpath, Violation(
                        "R11",
                        relpath,
                        loop.lineno,
                        "%s has an iteration path whose calls (%s) never "
                        "reach _bump()/_checkpoint(); ExecutionPolicy "
                        "deadlines cannot interrupt it" % (what, called),
                        function=graph.display(key),
                    )
                    break


def check_r12(
    graph: DataflowGraph, config: AnalysisConfig
) -> Iterator[Tuple[str, Violation]]:
    """Toggle-guarded branches: both arms, and kernel/signature-free off-paths."""
    # Closure: does a function's toggle-off slice use toggle symbols,
    # directly or through its off-slice calls?  Functions inside the
    # R12-excluded modules (the toggle layers themselves) never seed or
    # carry taint: acquiring any object from those layers already takes
    # a flagged symbol use, so a method call on one cannot be the
    # *first* off-path contact with the fast-path code.
    from repro.analysis.config import path_matches

    excluded = config.exclude.get("R12", ())

    def opaque(relpath: str) -> bool:
        return any(path_matches(relpath, p) for p in excluded)

    closure: Dict[str, Set[str]] = {"kernels": set(), "signatures": set()}
    for toggle in closure:
        for key, fn in graph.functions.items():
            if fn.off_uses.get(toggle) and not opaque(graph.relpath_of(key)):
                closure[toggle].add(key)
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for key, fn in graph.functions.items():
                if key in closure[toggle]:
                    continue
                relpath = graph.relpath_of(key)
                if opaque(relpath):
                    continue
                for desc in fn.off_calls.get(toggle, ()):
                    # Consensus on ambiguous resolution: every candidate
                    # must reach toggle symbols before the taint spreads.
                    candidates = graph.resolve(relpath, fn, desc)
                    if candidates and all(
                        c in closure[toggle] for c in candidates
                    ):
                        closure[toggle].add(key)
                        changed = True
                        break

    module_of = {"kernels": "repro.kernels", "signatures": "repro.index.signatures"}
    for key in sorted(graph.functions):
        fn = graph.functions[key]
        relpath = graph.relpath_of(key)
        if not fn.toggle_sites or not config.applies_to("R12", relpath):
            continue
        toggles_here = {site.toggle for site in fn.toggle_sites}
        for site in fn.toggle_sites:
            if site.missing_off_arm:
                yield relpath, Violation(
                    "R12",
                    relpath,
                    site.lineno,
                    "%s-toggle branch has no off-arm: add an explicit else "
                    "(or terminate the on-arm) so the %s=off baseline stays "
                    "an auditable path"
                    % (
                        site.toggle,
                        "REPRO_KERNELS"
                        if site.toggle == "kernels"
                        else "REPRO_SIGNATURES",
                    ),
                    function=graph.display(key),
                )
        for toggle in sorted(toggles_here):
            seen_lines: Set[int] = set()
            for lineno, symbol in fn.off_uses.get(toggle, ()):
                if lineno in seen_lines:
                    continue
                seen_lines.add(lineno)
                yield relpath, Violation(
                    "R12",
                    relpath,
                    lineno,
                    "toggle-off path uses %s symbol %r; the off-path is the "
                    "frozen measured baseline and must not reach the "
                    "fast-path layer" % (module_of[toggle], symbol),
                    function=graph.display(key),
                )
            for desc in fn.off_calls.get(toggle, ()):
                if desc.lineno in seen_lines:
                    continue
                candidates = graph.resolve(relpath, fn, desc)
                hit = None
                if candidates and all(c in closure[toggle] for c in candidates):
                    hit = candidates[0]
                if hit is not None:
                    seen_lines.add(desc.lineno)
                    yield relpath, Violation(
                        "R12",
                        relpath,
                        desc.lineno,
                        "toggle-off path calls %s(), which reaches %s "
                        "symbols with the toggle off; the off-path is the "
                        "frozen measured baseline"
                        % (desc.name, module_of[toggle]),
                        function=graph.display(key),
                        chain=(graph.display(key), graph.display(hit)),
                    )


def check_dataflow_rules(
    graph: DataflowGraph, config: AnalysisConfig
) -> Iterator[Tuple[str, Violation]]:
    """All interprocedural rules, in rule order."""
    if config.rule_enabled("R10"):
        yield from check_r10(graph, config)
    if config.rule_enabled("R11"):
        yield from check_r11(graph, config)
    if config.rule_enabled("R12"):
        yield from check_r12(graph, config)
