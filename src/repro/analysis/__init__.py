"""Static analysis and runtime contracts for the CoSKQ reproduction.

Two complementary correctness nets over the same invariants:

- the **static pass** (``python -m repro.analysis`` / ``coskq-lint``)
  walks the source with the stdlib :mod:`ast` module and enforces the
  repo-specific rules R1–R5 — algorithm-family conformance, determinism,
  epsilon-safe float comparison, API hygiene, and counter resets;
- the **runtime contract layer** (:mod:`repro.analysis.contracts`,
  opt-in via ``REPRO_CHECK_CONTRACTS=1``) re-validates every ``solve()``
  result: feasibility, cost recomputation, and exactness/ratio bounds
  against the brute-force oracle on small instances.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
suppression syntax (``# repro: noqa(RX)``).
"""

from repro.analysis.config import AnalysisConfig, find_pyproject
from repro.analysis.engine import AnalysisReport, run_analysis
from repro.analysis.rules import RULE_SUMMARIES, Violation

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "RULE_SUMMARIES",
    "Violation",
    "find_pyproject",
    "run_analysis",
]
