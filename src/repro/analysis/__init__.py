"""Static analysis and runtime contracts for the CoSKQ reproduction.

Two complementary correctness nets over the same invariants:

- the **static pass** (``python -m repro.analysis`` / ``coskq-lint``)
  walks the source with the stdlib :mod:`ast` module and enforces the
  repo-specific rules: the syntactic per-module set R1–R9 (algorithm
  registration, determinism, epsilon-safe float comparison, API
  hygiene, counter resets, typed aborts, read-only search state, and
  the single-definition distance/signature rules) plus the
  interprocedural dataflow set R10–R12 (:mod:`repro.analysis.dataflow`:
  call-graph escape analysis, checkpoint reachability, toggle parity);
- the **runtime contract layer** (:mod:`repro.analysis.contracts`,
  opt-in via ``REPRO_CHECK_CONTRACTS=1``) re-validates every ``solve()``
  result: feasibility, cost recomputation, and exactness/ratio bounds
  against the brute-force oracle on small instances.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
suppression syntax (``# repro: noqa(RX)``).
"""

from repro.analysis.config import AnalysisConfig, find_pyproject
from repro.analysis.dataflow import DataflowGraph, link, summarize_module
from repro.analysis.engine import AnalysisReport, SummaryCache, run_analysis
from repro.analysis.rules import RULE_SUMMARIES, Violation

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "DataflowGraph",
    "RULE_SUMMARIES",
    "SummaryCache",
    "Violation",
    "find_pyproject",
    "link",
    "run_analysis",
    "summarize_module",
]
