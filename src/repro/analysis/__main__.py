"""``python -m repro.analysis`` — run the static-analysis pass."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
