"""Declarative configuration for the CoSKQ serving daemon.

:class:`ServerConfig` is the whole daemon reduced to primitives — which
dataset, which fallback chain, which envelope each request runs inside,
how much concurrency the admission controller admits, and (for the
chaos-under-traffic harness) an optional per-request fault schedule.
Keeping it a frozen dataclass mirrors :mod:`repro.parallel.spec`: the
config doubles as documentation of every serving knob and is trivially
buildable from CLI flags or tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InvalidParameterError
from repro.index.cache import DEFAULT_CACHE_CAPACITY
from repro.parallel.spec import CACHE_MODES, ChaosSpec

__all__ = [
    "ServerConfig",
    "DEFAULT_CHAIN",
    "DEFAULT_DEADLINE_MS",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_LATENCY_WINDOW",
]

#: The default degradation order: exact answer when time permits, the
#: paper's constant-ratio approximation when it does not, and the cheap
#: ``N(q)`` last resort that always answers.
DEFAULT_CHAIN = "maxsum-exact,maxsum-appro,nn-set"

#: Default per-request wall-clock envelope (milliseconds).
DEFAULT_DEADLINE_MS = 250.0

#: Default admission bound: requests solving concurrently before the
#: controller starts shedding with 429.
DEFAULT_MAX_INFLIGHT = 32

#: Default latency ring-buffer size for the ``/stats`` percentiles.
DEFAULT_LATENCY_WINDOW = 2048


@dataclass(frozen=True)
class ServerConfig:
    """Every serving knob, reduced to primitives.

    ``max_inflight=0`` is drain mode: the admission controller sheds
    every ``/query`` request (``/healthz`` and ``/stats`` stay up), the
    shape a load balancer sees while an instance is being rotated out.

    ``max_deadline_ms`` caps per-request ``deadline_ms`` overrides so a
    client cannot demand an unbounded exact search; overrides above the
    cap are clamped, never rejected.

    ``chaos`` installs a deterministic per-request fault schedule
    (:class:`~repro.parallel.spec.ChaosSpec`): request ``n`` solves
    against an index sabotaged by ``chaos.plan_for(n)``, the same
    order-independence design the parallel engine uses.  Result caching
    under chaos is rejected for the same reason
    :class:`~repro.parallel.spec.WorkerEnv` rejects it — a cached answer
    would skip the fault plan.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    chain: str = DEFAULT_CHAIN
    cost: Optional[str] = None
    deadline_ms: Optional[float] = DEFAULT_DEADLINE_MS
    work_budget: Optional[int] = None
    max_retries: int = 1
    always_answer: bool = True
    max_deadline_ms: Optional[float] = 5_000.0
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    retry_after_s: float = 0.05
    cache_mode: str = "index"
    index_cache_capacity: int = DEFAULT_CACHE_CAPACITY
    result_cache_capacity: int = 1024
    latency_window: int = DEFAULT_LATENCY_WINDOW
    max_entries: int = 16
    #: ``> 0`` serves a :class:`~repro.shard.index.ShardedIndex` with
    #: that many STR shards behind the same request path; the immutable
    #: shard summaries are shared read-only across request threads
    #: (docs/SHARDING.md).
    shards: int = 0
    #: Plan each request with the feature-driven
    #: :class:`~repro.adaptive.planner.AdaptivePlanner` instead of the
    #: static fallback chain; the chain's strongest stage becomes the
    #: planner's target solver (docs/ADAPTIVE.md).
    adaptive: bool = False
    #: Trained hardness model (JSON from ``coskq-adaptive train``); the
    #: built-in heuristic default is used when unset.
    model_path: Optional[str] = None
    chaos: Optional[ChaosSpec] = field(default=None)
    #: Log one line per request to stderr (off by default: the load
    #: generator would drown the terminal).
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise InvalidParameterError("shards must be >= 0")
        if self.max_inflight < 0:
            raise InvalidParameterError("max_inflight must be >= 0 (0 = drain)")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise InvalidParameterError("deadline_ms must be positive")
        if self.max_deadline_ms is not None and self.max_deadline_ms <= 0:
            raise InvalidParameterError("max_deadline_ms must be positive")
        if self.work_budget is not None and self.work_budget < 0:
            raise InvalidParameterError("work_budget must be >= 0")
        if self.max_retries < 0:
            raise InvalidParameterError("max_retries must be >= 0")
        if self.retry_after_s <= 0:
            raise InvalidParameterError("retry_after_s must be positive")
        if self.cache_mode not in CACHE_MODES:
            raise InvalidParameterError(
                "unknown cache mode %r; known: %s"
                % (self.cache_mode, list(CACHE_MODES))
            )
        if self.latency_window < 1:
            raise InvalidParameterError("latency_window must be >= 1")
        if self.model_path is not None and not self.adaptive:
            raise InvalidParameterError(
                "model_path only applies to adaptive serving (set adaptive=True)"
            )
        if self.chaos is not None and self.caches_results:
            raise InvalidParameterError(
                "result caching under chaos is unsound: a cached answer "
                "skips the fault plan (see docs/PARALLELISM.md)"
            )

    @property
    def caches_index(self) -> bool:
        return self.cache_mode in ("index", "full")

    @property
    def caches_results(self) -> bool:
        return self.cache_mode in ("result", "full")

    def clamp_deadline(self, deadline_ms: Optional[float]) -> Optional[float]:
        """A per-request deadline override, held under the server cap."""
        if deadline_ms is None:
            return self.deadline_ms
        if self.max_deadline_ms is not None:
            return min(deadline_ms, self.max_deadline_ms)
        return deadline_ms
