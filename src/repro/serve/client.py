"""The load generator: concurrent traffic with retry/backoff/jitter.

``python -m repro.serve.client http://HOST:PORT --requests 200`` hammers
a running daemon and emits one summary JSON per run — client-observed
outcome tallies, latency percentiles, retry counts — the other half of
the chaos-under-traffic verification: the daemon's ``/stats`` outcome
totals must equal this client's tally exactly, because every HTTP
response the client receives was counted server-side before it was
written.

The client is well-behaved by construction:

- a 429 (shed) is retried after the server's ``Retry-After`` hint plus
  seeded jitter (full jitter halves the thundering herd that fixed
  backoff would re-synchronize);
- every retry is a *new* HTTP request and is tallied separately, so the
  reconciliation invariant stays bit-for-bit;
- workloads are deterministic in their seed: random mode samples
  locations from the daemon's advertised bounds and keywords from its
  ``/vocabulary`` endpoint via named substreams.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.error
import urllib.request
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.exec.clock import Clock, MonotonicClock
from repro.utils.rng import substream
from repro.utils.stats import percentile

__all__ = [
    "RequestRecord",
    "LoadSummary",
    "LoadClient",
    "load_workload_file",
    "random_workload",
    "main",
]


@dataclass
class RequestRecord:
    """One logical query: its final fate plus every response on the way."""

    outcome: str
    status: int
    attempts: int
    latency_ms: float
    feasible: Optional[bool] = None
    answered_by: Optional[str] = None
    degraded: bool = False


@dataclass
class LoadSummary:
    """Client-observed totals for one run (the reconciliation ledger).

    ``responses_by_outcome`` counts every HTTP response received —
    including each shed retry — which is exactly what the daemon counts
    server-side.  ``queries_by_final_outcome`` counts logical queries by
    how they ended after retries.
    """

    requests: int = 0
    responses_by_outcome: "Counter[str]" = field(default_factory=Counter)
    responses_by_status: "Counter[int]" = field(default_factory=Counter)
    queries_by_final_outcome: "Counter[str]" = field(default_factory=Counter)
    retries: int = 0
    transport_errors: int = 0
    infeasible_answers: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        latencies = sorted(self.latencies_ms)
        latency: Dict[str, object] = {"count": len(latencies)}
        if latencies:
            for label, fraction in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
                latency[label + "_ms"] = percentile(latencies, fraction)
            latency["max_ms"] = latencies[-1]
        return {
            "requests": self.requests,
            "responses_by_outcome": dict(sorted(self.responses_by_outcome.items())),
            "responses_by_status": {
                str(k): v for k, v in sorted(self.responses_by_status.items())
            },
            "queries_by_final_outcome": dict(
                sorted(self.queries_by_final_outcome.items())
            ),
            "retries": self.retries,
            "transport_errors": self.transport_errors,
            "infeasible_answers": self.infeasible_answers,
            "latency": latency,
        }


class LoadClient:
    """A concurrent, retrying HTTP client for one serving daemon."""

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ):
        if timeout_s <= 0 or backoff_base_s <= 0 or backoff_cap_s <= 0:
            raise InvalidParameterError("timeouts and backoffs must be positive")
        if max_retries < 0:
            raise InvalidParameterError("max_retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.seed = seed
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._lock = threading.Lock()
        self.summary = LoadSummary()

    # -- plain HTTP --------------------------------------------------------------

    def get_json(self, path: str) -> Dict[str, object]:
        """GET a JSON endpoint (``/healthz``, ``/stats``, ``/vocabulary``)."""
        with urllib.request.urlopen(
            self.base_url + path, timeout=self.timeout_s
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    def _post_query(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """One POST /query; returns (status, body, headers) without raising
        on HTTP error statuses (the error body is the interesting part)."""
        data = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + "/query",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                body = json.loads(response.read().decode("utf-8"))
                return response.status, body, dict(response.headers.items())
        except urllib.error.HTTPError as err:
            raw = err.read()
            try:
                body = json.loads(raw.decode("utf-8"))
            except ValueError:
                body = {"outcome": "internal", "error": {"type": "UnreadableBody"}}
            return err.code, body, dict(err.headers.items() if err.headers else ())

    # -- one logical query with retry/backoff ------------------------------------

    def query(
        self,
        payload: Dict[str, object],
        rng=None,
    ) -> RequestRecord:
        """Run one query to completion, retrying sheds with backoff."""
        rng = rng if rng is not None else substream(self.seed, "serve-client")
        attempts = 0
        started = self.clock.now()
        while True:  # repro: noqa(R11) — client retry loop, bounded by max_retries
            attempts += 1
            try:
                status, body, headers = self._post_query(payload)
            except (urllib.error.URLError, OSError, ValueError) as err:
                with self._lock:
                    self.summary.requests += 1
                    self.summary.transport_errors += 1
                    self.summary.queries_by_final_outcome["transport_error"] += 1
                return RequestRecord(
                    outcome="transport_error:%s" % type(err).__name__,
                    status=0,
                    attempts=attempts,
                    latency_ms=(self.clock.now() - started) * 1000.0,
                )
            outcome = str(body.get("outcome", "internal"))
            with self._lock:
                self.summary.requests += 1
                self.summary.responses_by_outcome[outcome] += 1
                self.summary.responses_by_status[status] += 1
            if status == 429 and attempts <= self.max_retries:
                with self._lock:
                    self.summary.retries += 1
                self.clock.sleep(self._backoff(attempts, headers, rng))
                continue
            latency_ms = (self.clock.now() - started) * 1000.0
            record = self._finish(payload, outcome, status, attempts, latency_ms, body)
            return record

    def _backoff(self, attempts: int, headers: Dict[str, str], rng) -> float:
        """Server hint + capped exponential with full jitter."""
        hinted = 0.0
        hint_ms = headers.get("X-Retry-After-Ms")
        if hint_ms is not None:
            try:
                hinted = int(hint_ms) / 1000.0
            except ValueError:
                hinted = 0.0
        exponential = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempts - 1))
        )
        return hinted + rng.random() * exponential

    def _finish(
        self,
        payload: Dict[str, object],
        outcome: str,
        status: int,
        attempts: int,
        latency_ms: float,
        body: Dict[str, object],
    ) -> RequestRecord:
        feasible: Optional[bool] = None
        answered_by: Optional[str] = None
        degraded = False
        if status == 200:
            requested = set(payload.get("keywords", ()))
            covered: set = set()
            for obj in body.get("objects", ()):
                covered.update(obj.get("keywords", ()))
            feasible = requested <= covered
            provenance = body.get("provenance")
            if isinstance(provenance, dict):
                answered_by = provenance.get("answered_by")
                degraded = bool(provenance.get("degraded"))
        with self._lock:
            self.summary.queries_by_final_outcome[outcome] += 1
            self.summary.latencies_ms.append(latency_ms)
            if feasible is False:
                self.summary.infeasible_answers += 1
        return RequestRecord(
            outcome=outcome,
            status=status,
            attempts=attempts,
            latency_ms=latency_ms,
            feasible=feasible,
            answered_by=answered_by,
            degraded=degraded,
        )

    # -- the concurrent run ------------------------------------------------------

    def run(
        self, payloads: Sequence[Dict[str, object]], concurrency: int = 8
    ) -> List[RequestRecord]:
        """Drive every payload through ``concurrency`` worker threads."""
        if concurrency < 1:
            raise InvalidParameterError("concurrency must be >= 1")
        records: List[Optional[RequestRecord]] = [None] * len(payloads)
        cursor = iter(range(len(payloads)))
        cursor_lock = threading.Lock()

        def worker(worker_id: int) -> None:
            rng = substream(self.seed, "serve-client-%d" % worker_id)
            while True:  # repro: noqa(R11) — worker loop, bounded by the payload list
                with cursor_lock:
                    index = next(cursor, None)
                if index is None:
                    return
                records[index] = self.query(payloads[index], rng=rng)

        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True)
            for w in range(min(concurrency, max(1, len(payloads))))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [record for record in records if record is not None]


# -- workload construction -------------------------------------------------------


def load_workload_file(path: str) -> List[Dict[str, object]]:
    """Query payloads from a TSV file (``x<TAB>y<TAB>word word ...``)."""
    payloads: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 3:
                raise InvalidParameterError(
                    "%s:%d: expected x<TAB>y<TAB>words" % (path, line_number)
                )
            payloads.append(
                {
                    "x": float(parts[0]),
                    "y": float(parts[1]),
                    "keywords": parts[2].split(),
                }
            )
    if not payloads:
        raise InvalidParameterError("workload file %s has no queries" % path)
    return payloads


def random_workload(
    client: LoadClient,
    count: int,
    seed: int = 0,
    keywords_per_query: Tuple[int, int] = (1, 3),
    vocabulary_limit: int = 50,
) -> List[Dict[str, object]]:
    """A seeded workload over the daemon's own bounds and vocabulary."""
    if count < 1:
        raise InvalidParameterError("count must be >= 1")
    health = client.get_json("/healthz")
    vocabulary = client.get_json("/vocabulary?limit=%d" % vocabulary_limit)
    words = [entry["word"] for entry in vocabulary["words"]]
    if not words:
        raise InvalidParameterError("the daemon advertises an empty vocabulary")
    min_x, min_y, max_x, max_y = health["bounds"]
    rng = substream(seed, "serve-workload")
    low, high = keywords_per_query
    payloads: List[Dict[str, object]] = []
    for _ in range(count):
        size = rng.randint(low, min(high, len(words)))
        payloads.append(
            {
                "x": rng.uniform(min_x, max_x),
                "y": rng.uniform(min_y, max_y),
                "keywords": rng.sample(words, size),
            }
        )
    return payloads


# -- the CLI ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Load-generate against a running coskq-serve daemon.",
    )
    parser.add_argument("url", help="daemon base URL, e.g. http://127.0.0.1:8787")
    parser.add_argument("--requests", type=int, default=100, metavar="N")
    parser.add_argument("--concurrency", type=int, default=8, metavar="T")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--file",
        default=None,
        metavar="TSV",
        help="workload file (x<TAB>y<TAB>words) instead of a random workload",
    )
    parser.add_argument("--deadline-ms", type=float, default=None, metavar="MS")
    parser.add_argument("--chain", default=None, metavar="SPEC")
    parser.add_argument("--timeout-s", type=float, default=10.0, metavar="S")
    parser.add_argument("--max-retries", type=int, default=5, metavar="K")
    parser.add_argument(
        "--output", default=None, metavar="JSON", help="write the summary here"
    )
    parser.add_argument(
        "--reconcile",
        action="store_true",
        help="fetch /stats afterwards and include the server-side totals",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    client = LoadClient(
        args.url,
        timeout_s=args.timeout_s,
        max_retries=args.max_retries,
        seed=args.seed,
    )
    try:
        if args.file is not None:
            payloads = load_workload_file(args.file)
        else:
            payloads = random_workload(client, args.requests, seed=args.seed)
        for payload in payloads:
            if args.deadline_ms is not None:
                payload["deadline_ms"] = args.deadline_ms
            if args.chain is not None:
                payload["chain"] = args.chain
        client.run(payloads, concurrency=args.concurrency)
        report: Dict[str, object] = {"client": client.summary.as_dict()}
        if args.reconcile:
            stats = client.get_json("/stats")
            report["server"] = stats
            report["reconciled"] = (
                stats["by_outcome"]
                == {
                    outcome: client.summary.responses_by_outcome.get(outcome, 0)
                    for outcome in stats["by_outcome"]
                }
            )
    except (OSError, urllib.error.URLError, InvalidParameterError) as err:
        print("error: %s" % err, file=sys.stderr)
        return 1
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
