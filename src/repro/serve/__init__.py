"""repro.serve — the resilient CoSKQ serving daemon.

The paper's solvers answer one query; this package keeps them answering
**under traffic**.  A stdlib-only HTTP/JSON daemon builds the index
once, runs every request through a per-request
:class:`~repro.exec.policy.ExecutionPolicy` deadline and
:class:`~repro.exec.fallback.FallbackChain` (exact → approximation →
cheapest), and degrades instead of erroring:

- a deadline-expired request returns the best fallback answer with its
  :class:`~repro.exec.fallback.ExecutionProvenance` serialized in the
  response body;
- taxonomy-typed failures map to distinct, documented HTTP statuses
  (:data:`~repro.serve.service.OUTCOME_STATUS`);
- an admission controller sheds load with 429 + ``Retry-After`` past a
  configurable in-flight bound;
- ``/stats`` exposes outcome/stage/failure counters, cache hit rates
  and latency percentiles from a ring buffer, all behind locks so a
  mid-storm snapshot is consistent.

Quickstart::

    from repro.data.generators import hotel_like
    from repro.serve import ServerConfig, create_server

    server = create_server(hotel_like(scale=0.1), ServerConfig(port=0))
    server.serve_background()
    print(server.url)   # POST /query, GET /healthz /stats /vocabulary

The load generator lives in :mod:`repro.serve.client`; the
chaos-under-traffic acceptance harness is ``tests/test_serve_chaos.py``
(``make serve-check``).  ``docs/SERVING.md`` is the reference.
"""

from repro.serve.admission import AdmissionController
from repro.serve.config import (
    DEFAULT_CHAIN,
    DEFAULT_DEADLINE_MS,
    DEFAULT_MAX_INFLIGHT,
    ServerConfig,
)
from repro.serve.httpd import CoSKQRequestHandler, CoSKQServer, create_server
from repro.serve.service import (
    OUTCOME_STATUS,
    QueryService,
    ServeResponse,
    provenance_to_dict,
)
from repro.serve.stats import OUTCOMES, ServerStats

__all__ = [
    # configuration
    "ServerConfig",
    "DEFAULT_CHAIN",
    "DEFAULT_DEADLINE_MS",
    "DEFAULT_MAX_INFLIGHT",
    # the service core
    "QueryService",
    "ServeResponse",
    "OUTCOME_STATUS",
    "OUTCOMES",
    "provenance_to_dict",
    # HTTP
    "CoSKQServer",
    "CoSKQRequestHandler",
    "create_server",
    # telemetry / admission
    "ServerStats",
    "AdmissionController",
]
