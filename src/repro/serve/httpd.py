"""The stdlib HTTP face of the daemon: routing, headers, lifecycle.

:class:`CoSKQServer` is a :class:`http.server.ThreadingHTTPServer`
carrying one shared :class:`~repro.serve.service.QueryService`; the
handler is a thin transport — parse the path, hand bytes to the
service, write the :class:`~repro.serve.service.ServeResponse` back.
All semantics (admission, degradation, status mapping, stats) live in
the service so they are testable without sockets.

Endpoints (``docs/SERVING.md`` documents the payloads):

- ``POST /query``      — solve one CoSKQ request (JSON body);
- ``GET  /healthz``    — liveness + dataset shape;
- ``GET  /stats``      — outcome/stage/failure counters, latency
  percentiles, cache hit rates, admission counters;
- ``GET  /vocabulary`` — most frequent keywords (for load generators).

The handler writes every response itself — including the 404/405 edges
— so a client always receives JSON with an ``outcome``/``error`` shape,
never a stock HTML error page.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import CoSKQError
from repro.exec.clock import Clock
from repro.model.dataset import Dataset
from repro.serve.config import ServerConfig
from repro.serve.service import QueryService, ServeResponse

__all__ = ["CoSKQServer", "CoSKQRequestHandler", "create_server"]

#: Largest accepted ``/query`` body; bigger requests are rejected with
#: 400 before being read into memory.
MAX_BODY_BYTES = 1 << 20


class CoSKQRequestHandler(BaseHTTPRequestHandler):
    """Transport only: route, delegate to the service, write JSON."""

    server: "CoSKQServer"
    protocol_version = "HTTP/1.1"

    # -- routing -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        path = urlparse(self.path).path
        if path != "/query":
            self._write_simple(404, {"error": {"type": "NotFound", "message": path}})
            return
        try:
            body = self._read_body()
        except CoSKQError as err:
            # Body-size refusals are still counted (as bad_request) so
            # /stats reconciles with the client-side tally.
            self._write_response(self.server.service.reject_bad_request(str(err)))
            return
        response = self.server.service.handle_query(body)
        self._write_response(response)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        parsed = urlparse(self.path)
        service = self.server.service
        try:
            if parsed.path == "/healthz":
                self._write_simple(200, service.health_payload())
            elif parsed.path == "/stats":
                self._write_simple(200, service.stats_payload())
            elif parsed.path == "/vocabulary":
                query = parse_qs(parsed.query)
                limit = int(query.get("limit", ["50"])[0])
                self._write_simple(200, service.vocabulary_payload(limit=limit))
            else:
                self._write_simple(
                    404, {"error": {"type": "NotFound", "message": parsed.path}}
                )
        except (CoSKQError, ValueError) as err:
            self._write_simple(
                400, {"error": {"type": type(err).__name__, "message": str(err)}}
            )

    # -- plumbing ----------------------------------------------------------------

    def _read_body(self) -> bytes:
        from repro.errors import InvalidParameterError

        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise InvalidParameterError("Content-Length is not an integer")
        if length < 0 or length > MAX_BODY_BYTES:
            raise InvalidParameterError(
                "request body must be 0..%d bytes" % MAX_BODY_BYTES
            )
        return self.rfile.read(length)

    def _write_response(self, response: ServeResponse) -> None:
        body = response.body()
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if response.retry_after_s is not None:
            # Retry-After takes integral seconds; never hint 0 (a client
            # would hammer), so round up to at least one.
            self.send_header(
                "Retry-After", str(max(1, int(response.retry_after_s + 0.999)))
            )
            self.send_header(
                "X-Retry-After-Ms", "%d" % int(response.retry_after_s * 1000)
            )
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _write_simple(self, status: int, payload: Dict[str, object]) -> None:
        self._write_response(ServeResponse(status=status, payload=payload))

    def log_message(self, format: str, *args: object) -> None:
        if self.server.service.config.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)


class CoSKQServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`.

    ``daemon_threads`` is on so a handler wedged by injected chaos
    latency can never block process exit, and ``allow_reuse_address``
    keeps restart loops from tripping over TIME_WAIT sockets.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: QueryService):
        super().__init__(address, CoSKQRequestHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests, chaos harnesses)."""
        thread = threading.Thread(
            target=self.serve_forever, name="coskq-serve", daemon=True
        )
        thread.start()
        return thread


def create_server(
    dataset: Dataset,
    config: Optional[ServerConfig] = None,
    clock: Optional[Clock] = None,
) -> CoSKQServer:
    """A warmed server on ``config.host:config.port`` (port 0 = ephemeral)."""
    config = config if config is not None else ServerConfig()
    service = QueryService(dataset, config, clock=clock)
    service.warm()
    return CoSKQServer((config.host, config.port), service)
