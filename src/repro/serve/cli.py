"""The ``coskq-serve`` command line: run the daemon over a dataset.

Usage::

    coskq-serve data.tsv --port 8787
    coskq-serve --demo --deadline-ms 100 --chain "maxsum-exact,nn-set"
    coskq-serve --demo --max-inflight 16 --cache full
    coskq-serve --demo --chaos-fail-rate 0.1 --chaos-seed 7   # chaos drill

Then from another terminal::

    python -m repro.serve.client http://127.0.0.1:8787 --requests 200 \
        --reconcile

See ``docs/SERVING.md`` for the endpoint reference, the degradation
semantics, and the failure-class → HTTP-status table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cost.functions import ALL_COSTS
from repro.errors import CoSKQError
from repro.model.dataset import Dataset
from repro.parallel.spec import CACHE_MODES, ChaosSpec
from repro.serve.config import (
    DEFAULT_CHAIN,
    DEFAULT_DEADLINE_MS,
    DEFAULT_MAX_INFLIGHT,
    ServerConfig,
)
from repro.serve.httpd import create_server

__all__ = ["main", "build_parser", "config_from_args"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-serve",
        description="Serve collective spatial keyword queries over HTTP/JSON.",
    )
    parser.add_argument("dataset", nargs="?", help="dataset file (text format)")
    parser.add_argument(
        "--demo",
        action="store_true",
        help="serve a generated demo dataset instead of a file",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--chain",
        default=DEFAULT_CHAIN,
        metavar="SPEC",
        help="fallback chain, strongest first (default: %(default)s)",
    )
    parser.add_argument(
        "--cost", default=None, choices=sorted(ALL_COSTS), help="cost override"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=DEFAULT_DEADLINE_MS,
        metavar="MS",
        help="default per-request deadline (default: %(default)s)",
    )
    parser.add_argument(
        "--no-deadline",
        action="store_true",
        help="serve without a default deadline (clients may still set one)",
    )
    parser.add_argument("--work-budget", type=int, default=None, metavar="N")
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=DEFAULT_MAX_INFLIGHT,
        metavar="K",
        help="admission bound; 0 = drain mode (default: %(default)s)",
    )
    parser.add_argument(
        "--cache",
        default="index",
        choices=CACHE_MODES,
        help="memoization layers (default: %(default)s)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="serve a sharded index with N STR shards (0 = single IR-tree)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "plan each request with the feature-driven hardness planner "
            "(appro-seeded exact for predicted-hard queries) instead of "
            "running the chain statically"
        ),
    )
    parser.add_argument(
        "--model",
        default=None,
        metavar="FILE",
        help="trained hardness model for --adaptive (coskq-adaptive train)",
    )
    parser.add_argument(
        "--chaos-fail-rate",
        type=float,
        default=None,
        metavar="P",
        help="inject faults into this fraction of index calls (chaos drill)",
    )
    parser.add_argument("--chaos-seed", type=int, default=0, metavar="S")
    parser.add_argument(
        "--chaos-latency-ms",
        type=float,
        default=None,
        metavar="MS",
        help="stall every 5th index call this long (chaos drill slowness)",
    )
    parser.add_argument("--verbose", action="store_true", help="log each request")
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    chaos = None
    if args.chaos_fail_rate is not None or args.chaos_latency_ms is not None:
        latency_s = (args.chaos_latency_ms or 0.0) / 1000.0
        chaos = ChaosSpec(
            seed=args.chaos_seed,
            fail_rate=args.chaos_fail_rate or 0.0,
            latency_s=latency_s,
            latency_every=5 if latency_s else 0,
        )
    cache_mode = args.cache
    if chaos is not None and cache_mode in ("result", "full"):
        # Mirror WorkerEnv: result reuse under chaos is unsound.
        cache_mode = "index"
        print(
            "chaos drill: downgrading --cache to 'index' (result reuse "
            "would skip the fault plan)",
            file=sys.stderr,
        )
    return ServerConfig(
        host=args.host,
        port=args.port,
        chain=args.chain,
        cost=args.cost,
        deadline_ms=None if args.no_deadline else args.deadline_ms,
        work_budget=args.work_budget,
        max_inflight=args.max_inflight,
        cache_mode=cache_mode,
        shards=args.shards,
        adaptive=args.adaptive,
        model_path=args.model,
        chaos=chaos,
        verbose=args.verbose,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.demo == (args.dataset is not None):
        print("provide a dataset file or --demo (not both)", file=sys.stderr)
        return 2
    if args.model is not None and not args.adaptive:
        print("--model requires --adaptive", file=sys.stderr)
        return 2
    try:
        if args.demo:
            from repro.data.generators import hotel_like

            dataset = hotel_like(scale=0.1, seed=0)
        else:
            dataset = Dataset.load(args.dataset)
        config = config_from_args(args)
        server = create_server(dataset, config)
    except (CoSKQError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print(
        "serving %d objects on %s (chain: %s%s%s)"
        % (
            len(dataset),
            server.url,
            config.chain,
            ", shards: %d" % config.shards if config.shards else "",
            ", adaptive" if config.adaptive else "",
        ),
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
