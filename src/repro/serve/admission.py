"""Load shedding: a bounded in-flight admission controller.

:class:`ThreadingHTTPServer` spawns one thread per connection with no
upper bound, so under overload the naive daemon queues unbounded CoSKQ
searches and every request's deadline expires in line.  The
:class:`AdmissionController` caps how many ``/query`` requests may solve
concurrently: past the bound a request is *shed* immediately — HTTP 429
with a ``Retry-After`` hint — which keeps the admitted requests inside
their deadlines and gives the well-behaved client
(:mod:`repro.serve.client`) a precise backoff signal.

Shedding is deliberately the cheapest path through the server: one lock
acquisition, no index work, no solver construction.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.errors import InvalidParameterError

__all__ = ["AdmissionController"]


class AdmissionController:
    """A counting gate over concurrently admitted requests.

    ``limit=0`` is drain mode (every request sheds).  Use as::

        if not admission.try_acquire():
            shed(retry_after=admission.retry_after_s)
        try:
            ...solve...
        finally:
            admission.release()
    """

    def __init__(self, limit: int, retry_after_s: float = 0.05):
        if limit < 0:
            raise InvalidParameterError("admission limit must be >= 0")
        if retry_after_s <= 0:
            raise InvalidParameterError("retry_after_s must be positive")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak = 0
        self._admitted = 0
        self._shed = 0

    def try_acquire(self) -> bool:
        """Admit the calling request, or refuse without blocking."""
        with self._lock:
            if self._inflight >= self.limit:
                self._shed += 1
                return False
            self._inflight += 1
            self._admitted += 1
            if self._inflight > self._peak:
                self._peak = self._inflight
            return True

    def release(self) -> None:
        """Return one admitted slot (exactly once per ``try_acquire``)."""
        with self._lock:
            if self._inflight <= 0:
                raise InvalidParameterError(
                    "release() without a matching try_acquire()"
                )
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def snapshot(self) -> Dict[str, int]:
        """JSON-ready counters for ``/stats``."""
        with self._lock:
            return {
                "limit": self.limit,
                "inflight": self._inflight,
                "peak_inflight": self._peak,
                "admitted": self._admitted,
                "shed": self._shed,
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return "AdmissionController(%d/%d inflight, shed=%d)" % (
            snap["inflight"],
            snap["limit"],
            snap["shed"],
        )
