"""The HTTP-agnostic serving core: parse, admit, solve, degrade, count.

:class:`QueryService` is everything the daemon does minus the sockets,
so the whole degradation surface is testable without binding a port:

- the index is built **once** (``warm()``), shared read-only by every
  request thread — sound because lint rules R7/R10 pin solvers to a
  read-only index, and the memoizing caches carry their own locks;
- each request builds its *own* fallback chain and
  :class:`~repro.exec.executor.ResilientExecutor` (solvers are stateful
  per solve — counters, budgets — so instances are never shared across
  threads; construction is cheap, the index is not rebuilt);
- requests degrade instead of erroring: a deadline-expired request
  returns the best fallback answer with its
  :class:`~repro.exec.fallback.ExecutionProvenance` serialized in the
  response, and every failure maps to one outcome of
  :data:`~repro.serve.stats.OUTCOMES` and one documented HTTP status
  (:data:`OUTCOME_STATUS`, the table in ``docs/SERVING.md``);
- the admission controller sheds load past ``max_inflight`` with 429 +
  ``Retry-After`` before any index work happens;
- under a :class:`~repro.parallel.spec.ChaosSpec`, request ``n`` solves
  against an index sabotaged by the deterministic plan ``plan_for(n)``
  — each request gets a fresh plan and wrapper, so chaos is
  thread-safe and order-independent by construction.

``handle_query`` **never raises**: every exception — including an
unexpected one — becomes a JSON error response carrying the failure's
taxonomy type, and is counted before the response is returned.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adaptive.model import HardnessModel
from repro.adaptive.planner import AdaptivePlanner
from repro.algorithms.base import SearchContext
from repro.cost.functions import cost_by_name
from repro.errors import (
    CoSKQError,
    DeadlineExceededError,
    ExecutionFailedError,
    InfeasibleQueryError,
    InvalidParameterError,
    UnknownKeywordError,
)
from repro.exec.chaos import chaos_context
from repro.exec.clock import Clock, MonotonicClock
from repro.exec.executor import ResilientExecutor
from repro.exec.fallback import ExecutionProvenance, FallbackChain
from repro.exec.policy import ExecutionPolicy
from repro.index.cache import CachingIndex
from repro.model.dataset import Dataset
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.parallel.cache import CachedSolver, ResultCache
from repro.serve.admission import AdmissionController
from repro.serve.config import ServerConfig
from repro.serve.stats import ServerStats
from repro.shard.index import ShardedIndex, ShardedIndexFactory

__all__ = [
    "OUTCOME_STATUS",
    "ServeResponse",
    "QueryService",
    "provenance_to_dict",
]

#: The documented outcome → HTTP status table (``docs/SERVING.md``).
#: ``failed`` upgrades from 503 to 504 when *every* stage failure in the
#: chain was a deadline abort — the whole request was simply out of
#: time, which a client treats differently from a broken backend.
OUTCOME_STATUS: Dict[str, int] = {
    "ok": 200,
    "degraded": 200,
    "bad_request": 400,
    "unknown_keyword": 404,
    "infeasible": 422,
    "shed": 429,
    "failed": 503,
    "internal": 500,
}

#: ``failed`` status when the chain died purely of deadline aborts.
STATUS_DEADLINE = 504


def provenance_to_dict(provenance: ExecutionProvenance) -> Dict[str, object]:
    """The JSON shape of an execution provenance record."""
    return {
        "answered_by": provenance.answered_by,
        "degraded": provenance.degraded,
        "guaranteed_ratio": provenance.guaranteed_ratio,
        "attempts": provenance.attempts,
        "elapsed_ms": provenance.elapsed_ms,
        "planner": provenance.planner,
        "failures": [
            {
                "stage": failure.stage,
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
            }
            for failure in provenance.failures
        ],
    }


@dataclass(frozen=True)
class ServeResponse:
    """One finished request: HTTP status, JSON payload, optional hint."""

    status: int
    payload: Dict[str, object]
    retry_after_s: Optional[float] = None
    #: The outcome recorded in stats (mirrors ``payload["outcome"]``).
    outcome: str = "internal"
    headers: Tuple[Tuple[str, str], ...] = field(default=())

    def body(self) -> bytes:
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")


class QueryService:
    """The daemon's brain: one dataset, many concurrent degradable solves."""

    def __init__(
        self,
        dataset: Dataset,
        config: Optional[ServerConfig] = None,
        clock: Optional[Clock] = None,
    ):
        self.config = config if config is not None else ServerConfig()
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.dataset = dataset
        if self.config.shards > 0:
            base = SearchContext(
                dataset,
                max_entries=self.config.max_entries,
                index_cls=ShardedIndexFactory(self.config.shards),
            )
        else:
            base = SearchContext(dataset, max_entries=self.config.max_entries)
        # The unwrapped context: its index is the raw ShardedIndex when
        # sharding is on (read by /stats for shard observability).
        self._base_context = base
        self.index_cache: Optional[CachingIndex] = None
        if self.config.caches_index:
            self.index_cache = CachingIndex(
                base.index, capacity=self.config.index_cache_capacity
            )
            base = base.with_index(self.index_cache)
        self._search_context = base
        self.result_cache: Optional[ResultCache] = None
        if self.config.caches_results:
            self.result_cache = ResultCache(
                capacity=self.config.result_cache_capacity
            )
        self.hardness_model: Optional[HardnessModel] = None
        if self.config.adaptive:
            if self.config.model_path is not None:
                with open(self.config.model_path, "r", encoding="utf-8") as handle:
                    self.hardness_model = HardnessModel.from_json(handle.read())
            else:
                self.hardness_model = HardnessModel.default()
        self.admission = AdmissionController(
            self.config.max_inflight, retry_after_s=self.config.retry_after_s
        )
        self.stats = ServerStats(
            latency_window=self.config.latency_window, clock=self.clock
        )
        self._sequence = itertools.count(1)
        self._started = self.clock.now()

    # -- startup ----------------------------------------------------------------

    def warm(self) -> None:
        """Build the index and inverted index once, before serving.

        Serving without warming still works (the first requests race the
        lazy build and the winner's result is cached atomically), but a
        warmed daemon answers its first request at steady-state latency.
        """
        self._search_context.index  # noqa: B018 - build for effect
        self._search_context.inverted

    # -- the request path --------------------------------------------------------

    def handle_query(self, body: bytes) -> ServeResponse:
        """One ``/query`` request, admission to answer; never raises."""
        started = self.clock.now()
        request_id = next(self._sequence)
        if not self.admission.try_acquire():
            response = self._error_response(
                request_id,
                started,
                outcome="shed",
                error_type="LoadShedError",
                message=(
                    "over the admission bound (%d in flight); retry after "
                    "the Retry-After hint" % self.config.max_inflight
                ),
                retry_after_s=self.admission.retry_after_s,
            )
            self._record(response, started, stage=None, failure_classes=())
            return response
        try:
            response = self._admitted(body, request_id, started)
        finally:
            self.admission.release()
        return response

    def _admitted(
        self, body: bytes, request_id: int, started: float
    ) -> ServeResponse:
        """Parse, solve and count one admitted request."""
        stage: Optional[str] = None
        failure_classes: Tuple[str, ...] = ()
        planner_label: Optional[str] = None
        try:
            request = self._parse(body)
            query = Query.from_words(
                request["x"], request["y"], request["keywords"], self.dataset.vocabulary
            )
            solver, cost_name = self._build_solver(request, request_id)
            result = solver.solve(query)
            provenance = result.provenance
            degraded = bool(provenance is not None and provenance.degraded)
            outcome = "degraded" if degraded else "ok"
            stage = (
                provenance.answered_by if provenance is not None else result.algorithm
            )
            if provenance is not None:
                failure_classes = tuple(
                    failure.error_type for failure in provenance.failures
                )
                planner_label = self._planner_label(provenance.planner)
            response = ServeResponse(
                status=OUTCOME_STATUS[outcome],
                outcome=outcome,
                payload={
                    "outcome": outcome,
                    "request_id": request_id,
                    "cost": result.cost,
                    "cost_name": cost_name,
                    "algorithm": result.algorithm,
                    "objects": self._objects_payload(query, result),
                    "provenance": (
                        provenance_to_dict(provenance)
                        if provenance is not None
                        else None
                    ),
                    "elapsed_ms": (self.clock.now() - started) * 1000.0,
                },
            )
        except UnknownKeywordError as err:
            response = self._error_response(
                request_id, started, "unknown_keyword", type(err).__name__, str(err)
            )
            failure_classes = (type(err).__name__,)
        except InfeasibleQueryError as err:
            response = self._error_response(
                request_id, started, "infeasible", type(err).__name__, str(err)
            )
            failure_classes = (type(err).__name__,)
        except InvalidParameterError as err:
            response = self._error_response(
                request_id, started, "bad_request", type(err).__name__, str(err)
            )
            failure_classes = (type(err).__name__,)
        except ExecutionFailedError as err:
            stage_types = tuple(
                getattr(failure, "error_type", type(failure).__name__)
                for failure in err.failures
            )
            failure_classes = (type(err).__name__,) + stage_types
            status = OUTCOME_STATUS["failed"]
            if stage_types and all(
                error_type == DeadlineExceededError.__name__
                for error_type in stage_types
            ):
                status = STATUS_DEADLINE
            response = self._error_response(
                request_id,
                started,
                "failed",
                type(err).__name__,
                str(err),
                status=status,
                failures=[
                    {
                        "stage": getattr(failure, "stage", "?"),
                        "error_type": getattr(
                            failure, "error_type", type(failure).__name__
                        ),
                        "message": getattr(failure, "message", str(failure)),
                    }
                    for failure in err.failures
                ],
            )
        except CoSKQError as err:
            failure_classes = (type(err).__name__,)
            response = self._error_response(
                request_id, started, "failed", type(err).__name__, str(err)
            )
        except Exception as err:  # the daemon must never crash a thread
            failure_classes = (type(err).__name__,)
            response = self._error_response(
                request_id, started, "internal", type(err).__name__, str(err)
            )
        self._record(
            response,
            started,
            stage=stage,
            failure_classes=failure_classes,
            planner=planner_label,
        )
        return response

    # -- request-path helpers ----------------------------------------------------

    @staticmethod
    def _planner_label(planner: Optional[Dict[str, object]]) -> Optional[str]:
        """The ``/stats`` bucket of one planner decision (None = unplanned)."""
        if planner is None:
            return None
        if not planner.get("hard"):
            return "easy"
        return (
            "hard_seeded" if planner.get("seed_cost") is not None else "hard_unseeded"
        )

    def _parse(self, body: bytes) -> Dict[str, object]:
        """The request JSON, validated to primitives (raises typed errors)."""
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise InvalidParameterError("request body is not JSON: %s" % err)
        if not isinstance(document, dict):
            raise InvalidParameterError("request body must be a JSON object")
        for coordinate in ("x", "y"):
            if not isinstance(document.get(coordinate), (int, float)) or isinstance(
                document.get(coordinate), bool
            ):
                raise InvalidParameterError(
                    "field %r must be a number" % coordinate
                )
        keywords = document.get("keywords")
        if (
            not isinstance(keywords, list)
            or not keywords
            or not all(isinstance(word, str) and word for word in keywords)
        ):
            raise InvalidParameterError(
                "field 'keywords' must be a non-empty list of words"
            )
        for name, kind in (
            ("chain", str),
            ("cost", str),
            ("deadline_ms", (int, float)),
            ("work_budget", int),
            ("max_retries", int),
        ):
            value = document.get(name)
            if value is not None and (
                not isinstance(value, kind) or isinstance(value, bool)
            ):
                raise InvalidParameterError("field %r has the wrong type" % name)
        max_retries = document.get("max_retries")
        if max_retries is not None and not 0 <= max_retries <= 8:
            raise InvalidParameterError("max_retries must be between 0 and 8")
        return document

    def _build_solver(self, request: Dict[str, object], request_id: int):
        """A fresh per-request executor under the request's envelope."""
        config = self.config
        context = self._search_context
        if config.chaos is not None:
            context = chaos_context(
                context, config.chaos.plan_for(request_id), clock=self.clock
            )
        cost_name = request.get("cost")
        if cost_name is None:
            cost_name = config.cost
        cost = cost_by_name(cost_name) if cost_name is not None else None
        chain_spec = request.get("chain")
        if chain_spec is None:
            chain_spec = config.chain
        chain = FallbackChain.parse(str(chain_spec), context, cost=cost)
        deadline_ms = config.clamp_deadline(request.get("deadline_ms"))
        work_budget = request.get("work_budget")
        if work_budget is None:
            work_budget = config.work_budget
        max_retries = request.get("max_retries")
        if max_retries is None:
            max_retries = config.max_retries
        policy = ExecutionPolicy(
            deadline_ms=deadline_ms,
            work_budget=work_budget,
            max_retries=int(max_retries),
            always_answer=config.always_answer,
        )
        if config.adaptive:
            # The chain's strongest stage becomes the planner's target;
            # the planner builds its own degradation chains around it.
            algorithm = chain.names[0]
            solver = AdaptivePlanner(
                context,
                algorithm=algorithm,
                cost=cost,
                model=self.hardness_model,
                policy=policy,
                clock=self.clock,
            )
        else:
            solver = ResilientExecutor(chain, policy, clock=self.clock)
        if self.result_cache is not None:
            return (
                CachedSolver(
                    solver,
                    self.result_cache,
                    cost_name=str(cost_name) if cost_name else "paper-default",
                ),
                cost_name,
            )
        return solver, cost_name

    def _objects_payload(
        self, query: Query, result: CoSKQResult
    ) -> List[Dict[str, object]]:
        vocabulary = self.dataset.vocabulary
        return [
            {
                "oid": obj.oid,
                "x": obj.location.x,
                "y": obj.location.y,
                "distance": query.distance_to(obj.location),
                "keywords": sorted(vocabulary.word_of(k) for k in obj.keywords),
            }
            for obj in result.objects
        ]

    def _error_response(
        self,
        request_id: int,
        started: float,
        outcome: str,
        error_type: str,
        message: str,
        status: Optional[int] = None,
        retry_after_s: Optional[float] = None,
        failures: Optional[List[Dict[str, object]]] = None,
    ) -> ServeResponse:
        error: Dict[str, object] = {"type": error_type, "message": message}
        if failures is not None:
            error["failures"] = failures
        return ServeResponse(
            status=status if status is not None else OUTCOME_STATUS[outcome],
            outcome=outcome,
            retry_after_s=retry_after_s,
            payload={
                "outcome": outcome,
                "request_id": request_id,
                "error": error,
                "elapsed_ms": (self.clock.now() - started) * 1000.0,
            },
        )

    def _record(
        self,
        response: ServeResponse,
        started: float,
        stage: Optional[str],
        failure_classes: Tuple[str, ...],
        planner: Optional[str] = None,
    ) -> None:
        """Count the finished request before its bytes leave the server."""
        self.stats.record(
            response.outcome,
            response.status,
            elapsed_ms=(self.clock.now() - started) * 1000.0,
            stage=stage,
            failure_classes=failure_classes,
            planner=planner,
        )

    def reject_bad_request(self, message: str) -> ServeResponse:
        """A counted bad_request for transport-level refusals (body size).

        The HTTP layer uses this for requests it refuses before the
        body ever reaches :meth:`handle_query`, so every ``/query``
        request — even a refused one — shows up in exactly one outcome
        counter and the reconciliation invariant holds.
        """
        started = self.clock.now()
        response = self._error_response(
            next(self._sequence),
            started,
            "bad_request",
            InvalidParameterError.__name__,
            message,
        )
        self._record(
            response,
            started,
            stage=None,
            failure_classes=(InvalidParameterError.__name__,),
        )
        return response

    # -- read-only endpoints -----------------------------------------------------

    def stats_payload(self) -> Dict[str, object]:
        """The ``/stats`` JSON: outcomes, stages, latencies, caches, admission."""
        payload = self.stats.snapshot()
        payload["admission"] = self.admission.snapshot()
        caches: Dict[str, object] = {"mode": self.config.cache_mode}
        if self.index_cache is not None:
            stats = self.index_cache.stats_dict()
            lookups = stats["hits"] + stats["misses"]
            stats["hit_rate"] = stats["hits"] / lookups if lookups else 0.0
            caches["index"] = stats
        if self.result_cache is not None:
            stats = self.result_cache.stats_dict()
            lookups = stats["hits"] + stats["misses"]
            stats["hit_rate"] = stats["hits"] / lookups if lookups else 0.0
            caches["result"] = stats
        payload["cache"] = caches
        payload["chain"] = self.config.chain
        payload["chaos"] = self.config.chaos is not None
        payload["adaptive"] = self.config.adaptive
        sharded = self.sharded_index
        if sharded is not None:
            payload["shards"] = {
                "requested": self.config.shards,
                "count": sharded.shard_count,
                "objects": [s.summary.count for s in sharded.shards],
                "stats": sharded.stats.as_dict(),
            }
        return payload

    @property
    def sharded_index(self) -> Optional[ShardedIndex]:
        """The raw sharded facade, or None when serving a single IR-tree."""
        if self.config.shards <= 0:
            return None
        index = self._base_context.index
        assert isinstance(index, ShardedIndex)
        return index

    def health_payload(self) -> Dict[str, object]:
        """The ``/healthz`` JSON: liveness plus what this daemon serves."""
        mbr = self.dataset.mbr()
        return {
            "status": "ok",
            "uptime_s": self.clock.now() - self._started,
            "objects": len(self.dataset),
            "vocabulary": len(self.dataset.vocabulary),
            "bounds": [mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y],
            "chain": self.config.chain,
            "inflight": self.admission.inflight,
            "max_inflight": self.config.max_inflight,
            "shards": self.config.shards,
        }

    def vocabulary_payload(self, limit: int = 50) -> Dict[str, object]:
        """The ``/vocabulary`` JSON: most frequent words, for load clients."""
        if limit < 1:
            raise InvalidParameterError("limit must be >= 1")
        vocabulary = self.dataset.vocabulary
        frequencies = self.dataset.keyword_frequencies()
        ranked = self.dataset.keywords_by_frequency()[:limit]
        return {
            "total": len(vocabulary),
            "words": [
                {"word": vocabulary.word_of(k), "objects": frequencies[k]}
                for k in ranked
            ],
        }

    def __repr__(self) -> str:
        return "QueryService(%d objects, chain=%s)" % (
            len(self.dataset),
            self.config.chain,
        )
