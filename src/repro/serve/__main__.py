"""``python -m repro.serve`` — the daemon without the console script."""

from repro.serve.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
