"""Thread-safe serving telemetry: outcome counters + latency ring.

Every ``/query`` request ends in exactly one **outcome** from
:data:`OUTCOMES`; :class:`ServerStats` counts requests by outcome, by
HTTP status, by answering stage and by failure class, and keeps the most
recent latencies in a bounded ring buffer for the ``/stats``
percentiles.  One lock guards everything, so a snapshot taken mid-storm
is internally consistent — which is what lets the chaos-under-traffic
acceptance test reconcile ``/stats`` totals bit-for-bit against the load
generator's client-side tally.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Dict, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.exec.clock import Clock, MonotonicClock
from repro.utils.stats import percentile

__all__ = ["OUTCOMES", "ServerStats"]

#: The exhaustive request-outcome taxonomy.  ``ok`` and ``degraded`` are
#: both successful answers (``degraded`` means a fallback stage, not the
#: chain's first stage, produced it); everything else names why no
#: answer was produced.  ``internal`` is the catch-all for unexpected
#: exceptions — the chaos acceptance test asserts it stays at zero.
OUTCOMES = (
    "ok",
    "degraded",
    "shed",
    "bad_request",
    "unknown_keyword",
    "infeasible",
    "failed",
    "internal",
)

#: Percentiles reported by :meth:`ServerStats.snapshot`.
_PERCENTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class ServerStats:
    """All serving counters behind one lock.

    ``record`` is called exactly once per ``/query`` request, *before*
    the response bytes are written — so by the time a client has read
    its response, the matching counter increment is already visible to
    any later ``/stats`` read.  That ordering is the whole
    reconciliation argument.
    """

    def __init__(
        self,
        latency_window: int = 2048,
        clock: Optional[Clock] = None,
    ):
        if latency_window < 1:
            raise InvalidParameterError("latency_window must be >= 1")
        self._lock = threading.Lock()
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._started = self._clock.now()
        self.total = 0
        self.by_outcome: "Counter[str]" = Counter()
        self.by_status: "Counter[int]" = Counter()
        self.by_stage: "Counter[str]" = Counter()
        self.by_failure: "Counter[str]" = Counter()
        #: Planner outcomes (``--adaptive`` only): how each planned
        #: request was shaped — ``easy`` (direct exact), ``hard_seeded``
        #: (appro seed fed the exact search), ``hard_unseeded`` (the
        #: seeding pass was starved by its budget split).
        self.by_planner: "Counter[str]" = Counter()
        self._latencies: "deque[float]" = deque(maxlen=latency_window)

    def record(
        self,
        outcome: str,
        status: int,
        elapsed_ms: Optional[float] = None,
        stage: Optional[str] = None,
        failure_classes: Sequence[str] = (),
        planner: Optional[str] = None,
    ) -> None:
        """Count one finished request (thread-safe, one call per request)."""
        if outcome not in OUTCOMES:
            raise InvalidParameterError(
                "unknown outcome %r; known: %s" % (outcome, list(OUTCOMES))
            )
        with self._lock:
            self.total += 1
            self.by_outcome[outcome] += 1
            self.by_status[status] += 1
            if stage is not None:
                self.by_stage[stage] += 1
            if planner is not None:
                self.by_planner[planner] += 1
            for failure_class in failure_classes:
                self.by_failure[failure_class] += 1
            if elapsed_ms is not None:
                self._latencies.append(elapsed_ms)

    def snapshot(self) -> Dict[str, object]:
        """One consistent JSON-ready view of every counter."""
        with self._lock:
            latencies = sorted(self._latencies)
            payload: Dict[str, object] = {
                "uptime_s": self._clock.now() - self._started,
                "total": self.total,
                "by_outcome": {k: self.by_outcome[k] for k in OUTCOMES},
                "by_status": {
                    str(status): count
                    for status, count in sorted(self.by_status.items())
                },
                "by_stage": dict(sorted(self.by_stage.items())),
                "by_failure_class": dict(sorted(self.by_failure.items())),
                "by_planner": dict(sorted(self.by_planner.items())),
            }
        latency: Dict[str, object] = {"window": len(latencies)}
        if latencies:
            for label, fraction in _PERCENTILES:
                latency[label + "_ms"] = percentile(latencies, fraction)
            latency["max_ms"] = latencies[-1]
        payload["latency"] = latency
        return payload

    def __repr__(self) -> str:
        with self._lock:
            return "ServerStats(total=%d, outcomes=%s)" % (
                self.total,
                dict(self.by_outcome),
            )
