"""Flat struct-of-arrays distance kernels (stdlib ``array('d')`` only).

Hot loops across the solvers and the indexes pay two overheads the
paper's C++ never did: per-pair attribute chasing (``obj.location.x``)
and a correctly rounded ``math.hypot`` per comparison even when a cheap
squared-distance bound already decides the comparison.  The kernels in
this module operate on packed coordinate arrays and use a *guarded*
squared-distance fast path that is provably **bit-identical** to the
naive ``math.hypot`` loops they replace:

- ``dx*dx + dy*dy`` has relative error at most ``3·2⁻⁵³`` (two exact-ish
  products and one addition, each correctly rounded), while
  ``math.hypot`` is correctly rounded.  So a squared comparison against
  a band of relative width ``1e-9`` — seven orders of magnitude wider
  than the arithmetic error — classifies a pair *conclusively* on either
  side of the band, and only pairs falling inside the band (or at
  non-normal magnitudes, where relative-error analysis breaks down) fall
  back to the exact ``math.hypot`` comparison the naive code performs.
- Running maxima (:func:`pairwise_max`, :func:`max_distance_from`,
  :func:`farthest_pair`) skip a pair only when its squared distance
  proves the exact distance cannot *strictly* improve the incumbent,
  which preserves both the returned value and the naive loop's
  first-strict-improvement tie-breaking.

Every distance this module ever *returns* is a plain ``math.hypot``
value — the single distance definition of :mod:`repro.geometry.point` —
so downstream comparisons see exactly the floats the scalar code
produced.  See ``docs/PERFORMANCE.md`` for the full soundness argument.

This module is the sanctioned home for inline ``math.hypot`` distance
math; solver modules are barred from it by lint rule R8
(``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import math
import os
from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "kernels_enabled",
    "set_enabled",
    "pack_points",
    "pack_objects",
    "distances_from",
    "max_distance_from",
    "pairwise_max",
    "farthest_pair",
    "any_beyond",
    "lens_lower_bound",
    "lens_gather",
    "select_within_indices",
    "select_within",
    "cap_bands",
]

#: Relative guard band around a squared-distance threshold.  Pairs whose
#: squared distance lands outside ``[t²·(1-ε), t²·(1+ε)]`` are decided
#: without computing the exact distance; the band is ~10⁷ times wider
#: than the worst-case arithmetic error, so the classification is sound.
_GUARD_LO = 1.0 - 1e-9
_GUARD_HI = 1.0 + 1e-9

#: Below this magnitude a squared distance may be subnormal and the
#: relative-error argument above no longer applies; such comparisons
#: take the exact path.  (See the denormal note in
#: :meth:`repro.geometry.circle.Circle.contains`.)
_NORMAL_FLOOR = 1e-300

#: Module-level override for the environment toggle; None means
#: "follow the environment".
_FORCED: Optional[bool] = None

#: Environment variable controlling the kernels fast paths.  Read per
#: call (cheap) rather than at import, and env-based rather than a
#: module global alone, so the setting propagates into forked parallel
#: workers (:mod:`repro.parallel`) without extra plumbing.
_ENV_VAR = "REPRO_KERNELS"

_FALSE_VALUES = frozenset({"0", "false", "no", "off"})


def kernels_enabled() -> bool:
    """Whether the flat-array fast paths are active (default: yes).

    Disabled by ``REPRO_KERNELS=0`` (or ``false``/``no``/``off``) or by
    :func:`set_enabled`.  The kernels are bit-identical to the scalar
    code they replace, so this switch exists for the differential test
    suite and for benchmarking the speedup honestly — not for safety.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(_ENV_VAR, "1").strip().lower() not in _FALSE_VALUES


def set_enabled(value: Optional[bool]) -> None:
    """Force the toggle (True/False) or restore env control (None)."""
    global _FORCED
    _FORCED = value


# -- packing -------------------------------------------------------------------


def pack_points(points: Iterable) -> Tuple[array, array]:
    """Pack an iterable of points into parallel ``(xs, ys)`` arrays."""
    xs = array("d")
    ys = array("d")
    for p in points:
        xs.append(p.x)
        ys.append(p.y)
    return xs, ys


def pack_objects(objects: Iterable) -> Tuple[array, array]:
    """Pack spatial objects (``obj.location``) into ``(xs, ys)`` arrays."""
    xs = array("d")
    ys = array("d")
    for o in objects:
        loc = o.location
        xs.append(loc.x)
        ys.append(loc.y)
    return xs, ys


# -- guard-band plumbing --------------------------------------------------------


def _improvement_guard(best: float) -> float:
    """Squared threshold below which no pair can strictly beat ``best``.

    Returns ``-1.0`` (forcing the exact path for every pair) when the
    squared incumbent is non-normal or infinite, where the relative
    error bound does not hold.
    """
    g = best * best * _GUARD_LO
    if g > _NORMAL_FLOOR and not math.isinf(g):
        return g
    return -1.0


def cap_bands(cap: float) -> Tuple[float, float, bool]:
    """``(lo2, hi2, fast)`` guard bands for comparisons against ``cap``.

    When ``fast`` is true, a squared distance below ``lo2`` proves the
    exact distance is ``< cap`` and one above ``hi2`` proves it is
    ``> cap``; anything between (or when ``fast`` is false) must use the
    exact ``math.hypot`` comparison.
    """
    c2 = cap * cap
    if c2 > _NORMAL_FLOOR and not math.isinf(c2):
        return c2 * _GUARD_LO, c2 * _GUARD_HI, True
    return 0.0, 0.0, False


# -- kernels --------------------------------------------------------------------


def distances_from(x: float, y: float, xs: Sequence[float], ys: Sequence[float]) -> array:
    """Exact distances from ``(x, y)`` to every packed point.

    No guard bands here: the results are *stored* (oracle rows, heap
    keys), so each entry is the correctly rounded ``math.hypot`` value
    the scalar code would have produced.
    """
    hypot = math.hypot
    return array("d", [hypot(x - a, y - b) for a, b in zip(xs, ys)])


def max_distance_from(x: float, y: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    """``max_i hypot((x,y) - (xs[i], ys[i]))`` (0.0 for empty input)."""
    best = 0.0
    guard = -1.0
    for i in range(len(xs)):
        dx = x - xs[i]
        dy = y - ys[i]
        if dx * dx + dy * dy > guard:
            d = math.hypot(dx, dy)
            if d > best:
                best = d
                guard = _improvement_guard(best)
    return best


def pairwise_max(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The diameter of the packed point set (0.0 below two points).

    Bit-identical to the quadratic ``math.hypot`` scan: a pair is
    skipped only when its squared distance proves the exact distance
    cannot strictly exceed the incumbent maximum.
    """
    best = 0.0
    guard = -1.0
    n = len(xs)
    for i in range(n):
        xi = xs[i]
        yi = ys[i]
        for j in range(i + 1, n):
            dx = xi - xs[j]
            dy = yi - ys[j]
            if dx * dx + dy * dy > guard:
                d = math.hypot(dx, dy)
                if d > best:
                    best = d
                    guard = _improvement_guard(best)
    return best


def farthest_pair(xs: Sequence[float], ys: Sequence[float]) -> Tuple[int, int, float]:
    """Indices and distance of the farthest packed pair.

    Same contract as :func:`repro.geometry.point.farthest_pair`:
    ``(i, j, d)`` with ``i < j``, first-strict-improvement tie-break,
    ``(0, 0, 0.0)`` below two points.
    """
    besti, bestj, best = 0, 0, 0.0
    guard = -1.0
    n = len(xs)
    for i in range(n):
        xi = xs[i]
        yi = ys[i]
        for j in range(i + 1, n):
            dx = xi - xs[j]
            dy = yi - ys[j]
            if dx * dx + dy * dy > guard:
                d = math.hypot(dx, dy)
                if d > best:
                    besti, bestj, best = i, j, d
                    guard = _improvement_guard(best)
    return besti, bestj, best


def any_beyond(
    x: float,
    y: float,
    xs: Sequence[float],
    ys: Sequence[float],
    cap: float,
) -> bool:
    """Whether any packed point lies strictly farther than ``cap``.

    Equivalent to ``any(hypot(...) > cap for ...)`` including NaN/inf
    semantics (those magnitudes take the exact path).
    """
    lo2, hi2, fast = cap_bands(cap)
    for i in range(len(xs)):
        dx = x - xs[i]
        dy = y - ys[i]
        sq = dx * dx + dy * dy
        if fast:
            if sq < lo2:
                continue
            if sq > hi2:
                return True
        if math.hypot(dx, dy) > cap:
            return True
    return False


def lens_lower_bound(r: float, budget: float) -> float:
    """Conservative floor on the query distance of any lens member.

    For the lens ``C(q, r) ∩ C(owner, budget)`` with the owner at stored
    query distance ``r``: by the triangle inequality any true lens
    member satisfies ``d(o, q) >= d(owner, q) - d(o, owner) >= r -
    budget``.  The bound is computed on *stored* (correctly rounded)
    distances with the module's relative guard margins, so a point whose
    stored query distance falls below it is guaranteed to fail the exact
    ``hypot(o, owner) <= budget`` test — skipping it can never change
    membership.  Clamped to 0.0 (no pruning) when the margin-widened
    difference is not positive.
    """
    lo = (r * _GUARD_LO - budget * _GUARD_HI) / _GUARD_HI
    return lo if lo > 0.0 else 0.0


def lens_gather(
    indices: Iterable[int],
    masks: Sequence[int],
    want: int,
    cx: float,
    cy: float,
    xs: Sequence[float],
    ys: Sequence[float],
    cap: float,
) -> Tuple[List[int], array]:
    """Masked disk selection that also returns the exact distances.

    For each candidate index, keep it when ``masks[i] & want`` is
    nonzero (it carries a wanted keyword bit) **and** its packed point
    lies in the closed disk ``hypot((cx, cy) - p_i) <= cap``.  Returns
    ``(kept_indices, distances)`` in input order, where ``distances[k]``
    is the correctly rounded ``math.hypot`` center distance of
    ``kept_indices[k]`` — the value a later scalar ``distance_to`` call
    would produce, so callers (the per-owner :class:`DistanceOracle`)
    can store it instead of recomputing.  Membership decisions are
    exactly :func:`select_within`'s: the guarded squared test only
    skips the ``hypot`` where rejection is already certain; accepted
    points always pay the one ``hypot`` their stored distance needs.
    """
    lo2, hi2, fast = cap_bands(cap)
    out: List[int] = []
    dists = array("d")
    hypot = math.hypot
    for i in indices:
        if not masks[i] & want:
            continue
        dx = cx - xs[i]
        dy = cy - ys[i]
        if fast and dx * dx + dy * dy > hi2:
            continue
        d = hypot(dx, dy)
        if d <= cap:
            out.append(i)
            dists.append(d)
    return out, dists


def select_within_indices(
    indices: Iterable[int],
    cx: float,
    cy: float,
    xs: Sequence[float],
    ys: Sequence[float],
    cap: float,
) -> List[int]:
    """Subset of ``indices`` whose packed point lies in the closed disk.

    Gather-flavoured :func:`select_within`: the caller has already
    narrowed the candidate indices (e.g. a bisect prefix over stored
    query distances) and only the disk test ``hypot((cx, cy) - p_i) <=
    cap`` remains.  Membership is decided exactly as in
    :func:`select_within`; the output preserves the input index order.
    """
    lo2, hi2, fast = cap_bands(cap)
    out: List[int] = []
    for i in indices:
        dx = cx - xs[i]
        dy = cy - ys[i]
        sq = dx * dx + dy * dy
        if fast:
            if sq < lo2:
                out.append(i)
                continue
            if sq > hi2:
                continue
        if math.hypot(dx, dy) <= cap:
            out.append(i)
    return out


def select_within(
    cx: float,
    cy: float,
    xs: Sequence[float],
    ys: Sequence[float],
    radius: float,
) -> List[int]:
    """Indices of packed points inside the closed disk around ``(cx, cy)``.

    Matches ``center.distance_to(p) <= radius`` exactly; the guarded
    squared comparison only skips the ``hypot`` where the outcome is
    already certain.
    """
    lo2, hi2, fast = cap_bands(radius)
    out: List[int] = []
    for i in range(len(xs)):
        dx = cx - xs[i]
        dy = cy - ys[i]
        sq = dx * dx + dy * dy
        if fast:
            if sq < lo2:
                out.append(i)
                continue
            if sq > hi2:
                continue
        if math.hypot(dx, dy) <= radius:
            out.append(i)
    return out
