"""Per-owner distance memoization for the owner-driven exact search.

``OwnerDrivenExact._best_for_owner`` fixes one owner and one candidate
list, then bisects over the diameter cap — and every bisection probe
re-asks the *same* distance questions: is candidate ``i`` within the cap
of the owner?  of the already-chosen candidates?  The naive path
recomputes each answer with ``Point.distance_to`` attribute chasing,
turning N probes into N·O(k²) hypots over an unchanging geometry.

A :class:`DistanceOracle` is built **once per owner** from the candidate
list.  It packs the coordinates flat, eagerly fills the candidate↔owner
distance vector (one ``hypot`` per candidate), and memoizes candidate
pairwise-distance rows lazily (one ``hypot`` per pair, computed at most
once across *all* probes).  Every stored distance is the exact
``math.hypot`` value the scalar code produces, so cap comparisons made
through the oracle are bit-identical to the code they replace — the
memoization changes *when* a distance is computed, never its value.

The oracle additionally caches the per-keyword candidate tables of the
constrained cover search (:mod:`repro.algorithms.cover`).  The tables
are cap-independent — deduplication keys on exact coordinates plus the
relevant keyword trace, so co-located duplicates share anchor distances
and filtering a deduplicated table by cap equals deduplicating the
cap-filtered list — which lets each probe reduce the anchor filter to a
vector compare over the memoized owner distances.

Soundness requires the candidate geometry to be frozen for the oracle's
lifetime; that holds because solvers never mutate shared search state
(lint rule R7) and the oracle lives inside a single ``solve()`` call.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.kernels.flat import distances_from, pack_objects

__all__ = ["DistanceOracle"]


class DistanceOracle:
    """Memoized distances between one anchor and a fixed candidate list."""

    __slots__ = (
        "objects",
        "xs",
        "ys",
        "anchor_d",
        "_rows",
        "_tables",
        "_indices",
        "_kw_masks",
    )

    def __init__(
        self,
        anchor_location,
        candidates: Sequence,
        xs: Optional[array] = None,
        ys: Optional[array] = None,
        anchor_d: Optional[array] = None,
    ) -> None:
        self.objects: Tuple = tuple(candidates)
        if xs is None or ys is None:
            xs, ys = pack_objects(self.objects)
        #: Packed candidate coordinates.  Callers that already hold the
        #: coordinates flat (the solver's per-query lens memo) pass them
        #: in to skip re-chasing ``obj.location`` per candidate; the
        #: arrays must mirror ``candidates`` element-for-element.
        self.xs, self.ys = xs, ys
        #: Exact owner↔candidate distances, filled eagerly (each one is
        #: needed by the very first probe's anchor filter anyway).  A
        #: caller whose candidate selection already computed the exact
        #: ``math.hypot`` anchor distances (the lens gather) passes them
        #: in; they must equal what ``distances_from`` would produce.
        if anchor_d is None:
            anchor_d = distances_from(
                anchor_location.x, anchor_location.y, self.xs, self.ys
            )
        self.anchor_d: array = anchor_d
        self._rows: Dict[int, array] = {}
        self._tables: Dict[FrozenSet[int], Dict[int, List[int]]] = {}
        self._indices: Dict[int, int] = {
            obj.oid: i for i, obj in enumerate(self.objects)
        }
        self._kw_masks: Optional[Tuple[int, ...]] = None

    def keyword_masks(self) -> Tuple[int, ...]:
        """Per-candidate keyword bitmasks, indexed like ``objects``.

        Built lazily on first use (the masked cover search is the only
        consumer) and cached for the oracle's lifetime — sound for the
        same frozen-geometry reason as the distance rows.  The import is
        deferred so the kernels layer stays import-free of the rest of
        the package at module load.
        """
        cached = self._kw_masks
        if cached is None:
            from repro.index.signatures import pack_masks

            cached = tuple(pack_masks(self.objects))
            self._kw_masks = cached
        return cached

    def __len__(self) -> int:
        return len(self.objects)

    def index_of(self, obj) -> int:
        """The candidate index of ``obj`` (by object id)."""
        return self._indices[obj.oid]

    def row(self, i: int) -> array:
        """Distances from candidate ``i`` to every candidate (memoized)."""
        cached = self._rows.get(i)
        if cached is None:
            cached = distances_from(self.xs[i], self.ys[i], self.xs, self.ys)
            self._rows[i] = cached
        return cached

    def pair_distance(self, i: int, j: int) -> float:
        """Exact distance between candidates ``i`` and ``j``."""
        row = self._rows.get(i)
        if row is not None:
            return row[j]
        row = self._rows.get(j)
        if row is not None:
            return row[i]
        return self.row(i)[j]

    def any_pair_beyond(self, i: int, others: Sequence[int], cap: float) -> bool:
        """Whether candidate ``i`` is farther than ``cap`` from any of ``others``."""
        row = self.row(i)
        for j in others:
            if row[j] > cap:
                return True
        return False

    def max_anchor_distance(self) -> float:
        """``max_i d(anchor, candidate_i)`` (0.0 with no candidates)."""
        best = 0.0
        for d in self.anchor_d:
            if d > best:
                best = d
        return best

    def diameter_with_anchor(self, indices: Sequence[int]) -> float:
        """Diameter of ``{anchor} ∪ {candidates[i] for i in indices}``.

        A max over exact stored hypot values, hence equal to
        :func:`repro.cost.base.pairwise_max_distance` over the same
        objects (max of identical floats is order-independent).
        """
        best = 0.0
        anchor_d = self.anchor_d
        for i in indices:
            d = anchor_d[i]
            if d > best:
                best = d
        for a in range(len(indices)):
            row = self.row(indices[a])
            for b in range(a + 1, len(indices)):
                d = row[indices[b]]
                if d > best:
                    best = d
        return best

    # -- cover tables ---------------------------------------------------------

    def cover_tables(
        self, uncovered: FrozenSet[int]
    ) -> Optional[Dict[int, List[int]]]:
        """Cap-independent per-keyword candidate index tables.

        Mirrors ``cover._candidates_by_keyword`` with the anchor filter
        factored out: candidates are deduplicated by exact location plus
        relevant keyword trace, and each keyword's list is sorted
        richest-trace-first with oid tie-break.  Returns None when some
        keyword of ``uncovered`` has no candidate at all (no cap can
        make a cover exist).  Cached per ``uncovered`` set, so all
        bisection probes of one owner share a single construction.
        """
        cached = self._tables.get(uncovered)
        if cached is not None or uncovered in self._tables:
            return cached
        by_keyword: Dict[int, List[int]] = {t: [] for t in uncovered}
        seen_traces: set = set()
        for i, obj in enumerate(self.objects):
            trace = obj.keywords & uncovered
            if not trace:
                continue
            key = (self.xs[i], self.ys[i], trace)
            if key in seen_traces:
                continue
            seen_traces.add(key)
            for t in trace:
                by_keyword[t].append(i)
        objects = self.objects
        result: Optional[Dict[int, List[int]]] = by_keyword
        for t, lst in by_keyword.items():
            if not lst:
                result = None
                break
            lst.sort(key=lambda i: (-len(objects[i].keywords & uncovered), objects[i].oid))
        self._tables[uncovered] = result
        return result
