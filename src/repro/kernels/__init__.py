"""Flat-array distance kernels and per-owner distance memoization.

The single-query fast path of the reproduction (docs/PERFORMANCE.md):
:mod:`repro.kernels.flat` provides stdlib ``array('d')`` struct-of-arrays
kernels whose guarded squared-distance fast paths are bit-identical to
the scalar ``math.hypot`` loops they replace, and
:mod:`repro.kernels.oracle` memoizes the owner↔candidate and
candidate↔candidate distances the owner-driven exact search re-asks on
every bisection probe.

The whole layer sits below :mod:`repro.geometry` in the dependency
stack (it imports nothing from the rest of the package) and can be
switched off with ``REPRO_KERNELS=0`` or
:func:`~repro.kernels.flat.set_enabled` — the differential test suite
runs every solver both ways and requires identical answers.
"""

from repro.kernels.flat import (
    any_beyond,
    cap_bands,
    distances_from,
    farthest_pair,
    kernels_enabled,
    lens_gather,
    lens_lower_bound,
    max_distance_from,
    pack_objects,
    pack_points,
    pairwise_max,
    select_within_indices,
    select_within,
    set_enabled,
)
from repro.kernels.oracle import DistanceOracle

__all__ = [
    "DistanceOracle",
    "any_beyond",
    "cap_bands",
    "distances_from",
    "farthest_pair",
    "kernels_enabled",
    "lens_gather",
    "lens_lower_bound",
    "max_distance_from",
    "pack_objects",
    "pack_points",
    "pairwise_max",
    "select_within_indices",
    "select_within",
    "set_enabled",
]
