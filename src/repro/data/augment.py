"""Dataset augmentation — the paper's synthetic scaling recipes.

Two transformations the evaluation needs:

- :func:`scale_dataset` mirrors the paper's scalability datasets: new
  objects take the location of a randomly drawn existing object (with a
  small jitter, so the spatial distribution is followed rather than
  duplicated) and the keyword document of another randomly drawn object.
  The paper grows GN from 2M to 10M objects this way.
- :func:`densify_keywords` mirrors the follow-up experiment on the
  average ``|o.ψ|``: each object's keyword set is unioned with the
  keyword sets of randomly drawn objects until the requested average is
  reached (the published recipe doubles the average per augmentation
  round; the target-based form here subsumes that).
"""

from __future__ import annotations

from typing import List

from repro.geometry.point import Point
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.utils.rng import substream

__all__ = ["scale_dataset", "densify_keywords"]


def scale_dataset(
    dataset: Dataset,
    target_size: int,
    seed: int = 0,
    jitter: float = 1.0,
) -> Dataset:
    """Grow ``dataset`` to ``target_size`` objects, paper-style.

    Existing objects are kept verbatim; each added object samples its
    location near a random existing object (Gaussian jitter with standard
    deviation ``jitter``) and copies the keyword set of another random
    object.  Shrinking is refused — truncate with slicing yourself if you
    really mean it.
    """
    if target_size < len(dataset):
        raise ValueError(
            "scale_dataset grows datasets; target %d < current %d"
            % (target_size, len(dataset))
        )
    if target_size == len(dataset):
        return dataset
    rng = substream(seed, "scale/%s/%d" % (dataset.name, target_size))
    originals = dataset.objects
    objects: List[SpatialObject] = list(originals)
    for oid in range(len(originals), target_size):
        donor_location = rng.choice(originals).location
        donor_keywords = rng.choice(originals).keywords
        location = Point(
            donor_location.x + rng.gauss(0.0, jitter),
            donor_location.y + rng.gauss(0.0, jitter),
        )
        objects.append(SpatialObject(oid, location, donor_keywords))
    return Dataset(objects, dataset.vocabulary, name="%s-x%d" % (dataset.name, target_size))


def densify_keywords(
    dataset: Dataset,
    target_mean_keywords: float,
    seed: int = 0,
) -> Dataset:
    """Raise the average ``|o.ψ|`` to roughly ``target_mean_keywords``.

    Each object repeatedly unions in the keyword set of a uniformly drawn
    object until its own size reaches its (randomly rounded) share of the
    target.  Locations and object count are untouched, so spatial effects
    are held constant — exactly what the |o.ψ| sensitivity experiment
    wants.
    """
    current_mean = (
        sum(len(o.keywords) for o in dataset.objects) / len(dataset)
        if len(dataset)
        else 0.0
    )
    if target_mean_keywords <= current_mean:
        return dataset
    rng = substream(seed, "densify/%s/%g" % (dataset.name, target_mean_keywords))
    originals = dataset.objects
    objects: List[SpatialObject] = []
    for obj in originals:
        target = len(obj.keywords) * target_mean_keywords / max(current_mean, 1e-9)
        keywords = set(obj.keywords)
        guard = 0
        while len(keywords) < target and guard < 64:
            keywords |= rng.choice(originals).keywords
            guard += 1
        objects.append(SpatialObject(obj.oid, obj.location, frozenset(keywords)))
    return Dataset(
        objects,
        dataset.vocabulary,
        name="%s-k%g" % (dataset.name, target_mean_keywords),
    )
