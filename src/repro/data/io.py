"""Loaders for external geo-textual data files.

The paper's real datasets (Hotel, GN, Web) circulate in ad-hoc delimited
formats; this module lets a user who *has* such files run the library on
them without reformatting: :func:`load_delimited` parses any
line-oriented file given a delimiter and the column positions of x, y and
the keywords, and :func:`from_coordinate_keyword_pairs` ingests already
parsed records.

Rows that fail to parse can either abort (default — silent data loss is
worse than a loud stop) or be counted and skipped (``on_error="skip"``)
for the dirty files real corpora tend to be.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DatasetFormatError, InvalidParameterError
from repro.model.dataset import Dataset

__all__ = ["DelimitedFormat", "load_delimited", "from_coordinate_keyword_pairs"]


@dataclass(frozen=True)
class DelimitedFormat:
    """Column layout of a delimited geo-textual file.

    ``keyword_column`` of None means "every column after the coordinate
    columns is a keyword"; otherwise that single column holds the
    keywords joined by ``keyword_separator``.
    """

    delimiter: str = "\t"
    x_column: int = 0
    y_column: int = 1
    keyword_column: Optional[int] = 2
    keyword_separator: str = " "
    skip_header_lines: int = 0
    comment_prefix: str = "#"
    lowercase_keywords: bool = True

    def __post_init__(self) -> None:
        if self.x_column == self.y_column:
            raise InvalidParameterError("x and y columns must differ")
        if self.skip_header_lines < 0:
            raise InvalidParameterError("skip_header_lines must be non-negative")


def _parse_line(
    line: str, fmt: DelimitedFormat, lineno: int
) -> Tuple[float, float, List[str]]:
    parts = line.split(fmt.delimiter)
    try:
        x = float(parts[fmt.x_column])
        y = float(parts[fmt.y_column])
    except (ValueError, IndexError) as exc:
        raise DatasetFormatError("line %d: bad coordinates (%s)" % (lineno, exc)) from exc
    if fmt.keyword_column is None:
        used = {fmt.x_column, fmt.y_column}
        raw = [p for i, p in enumerate(parts) if i not in used]
    else:
        try:
            raw = parts[fmt.keyword_column].split(fmt.keyword_separator)
        except IndexError as exc:
            raise DatasetFormatError(
                "line %d: missing keyword column %d" % (lineno, fmt.keyword_column)
            ) from exc
    words = [w.strip() for w in raw if w.strip()]
    if fmt.lowercase_keywords:
        words = [w.lower() for w in words]
    if not words:
        raise DatasetFormatError("line %d: object has no keywords" % lineno)
    return x, y, words


def load_delimited(
    path: str | Path,
    fmt: DelimitedFormat = DelimitedFormat(),
    name: Optional[str] = None,
    on_error: str = "raise",
    limit: Optional[int] = None,
) -> Dataset:
    """Parse a delimited geo-textual file into a :class:`Dataset`.

    ``on_error`` is ``"raise"`` (default) or ``"skip"``; ``limit`` caps
    the number of objects read (handy for sampling huge corpora).
    """
    if on_error not in ("raise", "skip"):
        raise InvalidParameterError("on_error must be 'raise' or 'skip'")
    path = Path(path)

    def records() -> Iterator[Tuple[float, float, List[str]]]:
        loaded = 0
        with open(path, "r", encoding="utf-8") as stream:
            for lineno, line in enumerate(stream, start=1):
                if lineno <= fmt.skip_header_lines:
                    continue
                line = line.rstrip("\n")
                if not line or (
                    fmt.comment_prefix and line.startswith(fmt.comment_prefix)
                ):
                    continue
                if limit is not None and loaded >= limit:
                    return
                try:
                    yield _parse_line(line, fmt, lineno)
                except DatasetFormatError:
                    if on_error == "raise":
                        raise
                    continue
                loaded += 1

    dataset = Dataset.from_records(
        records(), name=name if name is not None else path.stem
    )
    if not len(dataset):
        raise DatasetFormatError("no parsable objects in %s" % path)
    return dataset


def from_coordinate_keyword_pairs(
    pairs: Iterable[Tuple[Tuple[float, float], Sequence[str]]],
    name: str = "imported",
) -> Dataset:
    """Build a dataset from ``((x, y), keywords)`` records.

    The adapter for data already living in Python structures (API
    results, dataframes iterated row-wise, …).
    """
    return Dataset.from_records(
        ((x, y, list(words)) for (x, y), words in pairs), name=name
    )
