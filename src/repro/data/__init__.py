"""Workload substrate: generators, query workloads and augmentation."""

from repro.data.augment import densify_keywords, scale_dataset
from repro.data.io import DelimitedFormat, from_coordinate_keyword_pairs, load_delimited
from repro.data.generators import (
    GeneratorProfile,
    clustered_dataset,
    generate_profile,
    gn_like,
    hotel_like,
    uniform_dataset,
    web_like,
)
from repro.data.queries import QueryWorkload, generate_queries
from repro.data.zipf import ZipfSampler

__all__ = [
    "ZipfSampler",
    "DelimitedFormat",
    "load_delimited",
    "from_coordinate_keyword_pairs",
    "GeneratorProfile",
    "generate_profile",
    "uniform_dataset",
    "clustered_dataset",
    "hotel_like",
    "gn_like",
    "web_like",
    "QueryWorkload",
    "generate_queries",
    "scale_dataset",
    "densify_keywords",
]
