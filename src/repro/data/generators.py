"""Synthetic dataset generators calibrated to the paper's real datasets.

The paper evaluates on three real corpora that are not redistributable
(and not fetchable offline), so this module builds synthetic stand-ins
that match the properties the CoSKQ algorithms are sensitive to — object
count, vocabulary size, keywords-per-object, keyword-frequency skew and
spatial clumping (see DESIGN.md §4 for the substitution argument):

- :func:`hotel_like`   — ~20,790 objects, small vocabulary (~600 words),
  ~3 keywords/object; US-hotel-style mixture of uniform spread and urban
  clusters.
- :func:`gn_like`      — the GeoNames profile: huge object count (scaled
  by default), larger vocabulary, ~4 keywords/object, strong skew.
- :func:`web_like`     — the web-document profile: large vocabulary and
  *many* keywords per object (~32), the regime that stresses keyword
  containment tests.
- :func:`uniform_dataset` / :func:`clustered_dataset` — plain primitives
  for tests and examples.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.data.zipf import ZipfSampler
from repro.geometry.point import Point
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.vocabulary import Vocabulary
from repro.utils.rng import substream

__all__ = [
    "uniform_dataset",
    "clustered_dataset",
    "hotel_like",
    "gn_like",
    "web_like",
    "GeneratorProfile",
    "generate_profile",
]

#: Side length of the unit square all datasets live in.  The paper's maps
#: are lat/lon degree boxes; the absolute scale is irrelevant to every
#: algorithm (costs are relative), so a [0, 1000]² world keeps the numbers
#: readable.
WORLD_SIZE = 1000.0


class GeneratorProfile:
    """Recipe for a synthetic corpus (see module docstring)."""

    def __init__(
        self,
        name: str,
        num_objects: int,
        vocabulary_size: int,
        mean_keywords: float,
        zipf_exponent: float = 1.0,
        cluster_fraction: float = 0.5,
        cluster_count: int = 40,
        cluster_sigma: float = WORLD_SIZE / 80.0,
    ):
        if num_objects <= 0 or vocabulary_size <= 0:
            raise ValueError("object count and vocabulary size must be positive")
        if mean_keywords < 1.0:
            raise ValueError("objects need at least one keyword on average")
        if not 0.0 <= cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        self.name = name
        self.num_objects = num_objects
        self.vocabulary_size = vocabulary_size
        self.mean_keywords = mean_keywords
        self.zipf_exponent = zipf_exponent
        self.cluster_fraction = cluster_fraction
        self.cluster_count = cluster_count
        self.cluster_sigma = cluster_sigma


def generate_profile(profile: GeneratorProfile, seed: int = 0) -> Dataset:
    """Materialize a profile into a dataset (deterministic in ``seed``)."""
    spatial_rng = substream(seed, "%s/spatial" % profile.name)
    text_rng = substream(seed, "%s/text" % profile.name)

    vocabulary = Vocabulary(
        "w%04d" % i for i in range(profile.vocabulary_size)
    )
    sampler = ZipfSampler(profile.vocabulary_size, profile.zipf_exponent)
    locations = _locations(profile, spatial_rng)

    objects: List[SpatialObject] = []
    for oid, location in enumerate(locations):
        count = _keyword_count(profile.mean_keywords, text_rng)
        keyword_ids = frozenset(sampler.sample_distinct(text_rng, count))
        objects.append(SpatialObject(oid, location, keyword_ids))
    return Dataset(objects, vocabulary, name=profile.name)


def _keyword_count(mean: float, rng: random.Random) -> int:
    """Keywords per object: 1 + Poisson(mean − 1), capped sanely."""
    lam = mean - 1.0
    # Knuth's Poisson sampler; lam is small for every profile we use.
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            break
        k += 1
    return 1 + k


def _locations(profile: GeneratorProfile, rng: random.Random) -> List[Point]:
    """Uniform background plus Gaussian urban clusters."""
    centers = [
        Point(rng.uniform(0.0, WORLD_SIZE), rng.uniform(0.0, WORLD_SIZE))
        for _ in range(max(profile.cluster_count, 1))
    ]
    out: List[Point] = []
    for _ in range(profile.num_objects):
        if rng.random() < profile.cluster_fraction:
            center = rng.choice(centers)
            x = min(max(rng.gauss(center.x, profile.cluster_sigma), 0.0), WORLD_SIZE)
            y = min(max(rng.gauss(center.y, profile.cluster_sigma), 0.0), WORLD_SIZE)
        else:
            x = rng.uniform(0.0, WORLD_SIZE)
            y = rng.uniform(0.0, WORLD_SIZE)
        out.append(Point(x, y))
    return out


# -- plain primitives -----------------------------------------------------------


def uniform_dataset(
    num_objects: int,
    vocabulary_size: int,
    mean_keywords: float = 3.0,
    seed: int = 0,
    name: str = "uniform",
) -> Dataset:
    """Uniform locations, Zipf keywords — the tests' workhorse."""
    profile = GeneratorProfile(
        name=name,
        num_objects=num_objects,
        vocabulary_size=vocabulary_size,
        mean_keywords=mean_keywords,
        cluster_fraction=0.0,
    )
    return generate_profile(profile, seed=seed)


def clustered_dataset(
    num_objects: int,
    vocabulary_size: int,
    mean_keywords: float = 3.0,
    cluster_count: int = 10,
    seed: int = 0,
    name: str = "clustered",
) -> Dataset:
    """Fully clustered locations (every object in some Gaussian blob)."""
    profile = GeneratorProfile(
        name=name,
        num_objects=num_objects,
        vocabulary_size=vocabulary_size,
        mean_keywords=mean_keywords,
        cluster_fraction=1.0,
        cluster_count=cluster_count,
    )
    return generate_profile(profile, seed=seed)


# -- the paper's three corpora ----------------------------------------------------

#: Published sizes of the paper's real datasets (objects).  The default
#: `scale` shrinks GN and Web to Python-friendly sizes while preserving
#: vocabulary skew and keyword density; pass scale=1.0 for paper scale.
HOTEL_OBJECTS = 20_790
GN_OBJECTS = 1_868_821
WEB_OBJECTS = 579_727


def hotel_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """The Hotel profile: small vocabulary, sparse keywords."""
    profile = GeneratorProfile(
        name="hotel",
        num_objects=max(100, int(HOTEL_OBJECTS * scale)),
        vocabulary_size=602,
        mean_keywords=3.9,
        zipf_exponent=0.9,
        cluster_fraction=0.6,
        cluster_count=50,
    )
    return generate_profile(profile, seed=seed)


def gn_like(scale: float = 0.05, seed: int = 0) -> Dataset:
    """The GN (GeoNames) profile; default scale 0.05 → ~93k objects."""
    profile = GeneratorProfile(
        name="gn",
        num_objects=max(1_000, int(GN_OBJECTS * scale)),
        vocabulary_size=20_000,
        mean_keywords=4.0,
        zipf_exponent=1.1,
        cluster_fraction=0.5,
        cluster_count=200,
    )
    return generate_profile(profile, seed=seed)


def web_like(scale: float = 0.05, seed: int = 0) -> Dataset:
    """The Web profile; many keywords per object (default ~29k objects)."""
    profile = GeneratorProfile(
        name="web",
        num_objects=max(1_000, int(WEB_OBJECTS * scale)),
        vocabulary_size=50_000,
        mean_keywords=32.0,
        zipf_exponent=1.0,
        cluster_fraction=0.4,
        cluster_count=100,
    )
    return generate_profile(profile, seed=seed)
