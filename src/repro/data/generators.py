"""Synthetic dataset generators calibrated to the paper's real datasets.

The paper evaluates on three real corpora that are not redistributable
(and not fetchable offline), so this module builds synthetic stand-ins
that match the properties the CoSKQ algorithms are sensitive to — object
count, vocabulary size, keywords-per-object, keyword-frequency skew and
spatial clumping (see DESIGN.md §4 for the substitution argument):

- :func:`hotel_like`   — ~20,790 objects, small vocabulary (~600 words),
  ~3 keywords/object; US-hotel-style mixture of uniform spread and urban
  clusters.
- :func:`gn_like`      — the GeoNames profile: huge object count (scaled
  by default), larger vocabulary, ~4 keywords/object, strong skew.
- :func:`web_like`     — the web-document profile: large vocabulary and
  *many* keywords per object (~32), the regime that stresses keyword
  containment tests.
- :func:`uniform_dataset` / :func:`clustered_dataset` — plain primitives
  for tests and examples.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.data.zipf import ZipfSampler
from repro.geometry.point import Point
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.vocabulary import Vocabulary
from repro.utils.rng import substream

__all__ = [
    "uniform_dataset",
    "clustered_dataset",
    "hotel_like",
    "gn_like",
    "web_like",
    "ladder_dataset",
    "ladder_keywords",
    "GeneratorProfile",
    "generate_profile",
]

#: Side length of the unit square all datasets live in.  The paper's maps
#: are lat/lon degree boxes; the absolute scale is irrelevant to every
#: algorithm (costs are relative), so a [0, 1000]² world keeps the numbers
#: readable.
WORLD_SIZE = 1000.0


class GeneratorProfile:
    """Recipe for a synthetic corpus (see module docstring)."""

    def __init__(
        self,
        name: str,
        num_objects: int,
        vocabulary_size: int,
        mean_keywords: float,
        zipf_exponent: float = 1.0,
        cluster_fraction: float = 0.5,
        cluster_count: int = 40,
        cluster_sigma: float = WORLD_SIZE / 80.0,
    ):
        if num_objects <= 0 or vocabulary_size <= 0:
            raise ValueError("object count and vocabulary size must be positive")
        if mean_keywords < 1.0:
            raise ValueError("objects need at least one keyword on average")
        if not 0.0 <= cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        self.name = name
        self.num_objects = num_objects
        self.vocabulary_size = vocabulary_size
        self.mean_keywords = mean_keywords
        self.zipf_exponent = zipf_exponent
        self.cluster_fraction = cluster_fraction
        self.cluster_count = cluster_count
        self.cluster_sigma = cluster_sigma


def generate_profile(profile: GeneratorProfile, seed: int = 0) -> Dataset:
    """Materialize a profile into a dataset (deterministic in ``seed``)."""
    spatial_rng = substream(seed, "%s/spatial" % profile.name)
    text_rng = substream(seed, "%s/text" % profile.name)

    vocabulary = Vocabulary(
        "w%04d" % i for i in range(profile.vocabulary_size)
    )
    sampler = ZipfSampler(profile.vocabulary_size, profile.zipf_exponent)
    locations = _locations(profile, spatial_rng)

    objects: List[SpatialObject] = []
    for oid, location in enumerate(locations):
        count = _keyword_count(profile.mean_keywords, text_rng)
        keyword_ids = frozenset(sampler.sample_distinct(text_rng, count))
        objects.append(SpatialObject(oid, location, keyword_ids))
    return Dataset(objects, vocabulary, name=profile.name)


def _keyword_count(mean: float, rng: random.Random) -> int:
    """Keywords per object: 1 + Poisson(mean − 1), capped sanely."""
    lam = mean - 1.0
    # Knuth's Poisson sampler; lam is small for every profile we use.
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            break
        k += 1
    return 1 + k


def _locations(profile: GeneratorProfile, rng: random.Random) -> List[Point]:
    """Uniform background plus Gaussian urban clusters."""
    centers = [
        Point(rng.uniform(0.0, WORLD_SIZE), rng.uniform(0.0, WORLD_SIZE))
        for _ in range(max(profile.cluster_count, 1))
    ]
    out: List[Point] = []
    for _ in range(profile.num_objects):
        if rng.random() < profile.cluster_fraction:
            center = rng.choice(centers)
            x = min(max(rng.gauss(center.x, profile.cluster_sigma), 0.0), WORLD_SIZE)
            y = min(max(rng.gauss(center.y, profile.cluster_sigma), 0.0), WORLD_SIZE)
        else:
            x = rng.uniform(0.0, WORLD_SIZE)
            y = rng.uniform(0.0, WORLD_SIZE)
        out.append(Point(x, y))
    return out


# -- plain primitives -----------------------------------------------------------


def uniform_dataset(
    num_objects: int,
    vocabulary_size: int,
    mean_keywords: float = 3.0,
    seed: int = 0,
    name: str = "uniform",
) -> Dataset:
    """Uniform locations, Zipf keywords — the tests' workhorse."""
    profile = GeneratorProfile(
        name=name,
        num_objects=num_objects,
        vocabulary_size=vocabulary_size,
        mean_keywords=mean_keywords,
        cluster_fraction=0.0,
    )
    return generate_profile(profile, seed=seed)


def clustered_dataset(
    num_objects: int,
    vocabulary_size: int,
    mean_keywords: float = 3.0,
    cluster_count: int = 10,
    seed: int = 0,
    name: str = "clustered",
) -> Dataset:
    """Fully clustered locations (every object in some Gaussian blob)."""
    profile = GeneratorProfile(
        name=name,
        num_objects=num_objects,
        vocabulary_size=vocabulary_size,
        mean_keywords=mean_keywords,
        cluster_fraction=1.0,
        cluster_count=cluster_count,
    )
    return generate_profile(profile, seed=seed)


# -- the adversarial seeding ladder ------------------------------------------------


def ladder_dataset(
    num_keywords: int = 9,
    rungs: int = 10,
    choices: int = 10,
    radius: float = 200.0,
    arm_start: float = 120.0,
    arm_end: float = 20.0,
    arm_final: float = 6.0,
    seed: int = 7,
    name: str = "ladder",
) -> Dataset:
    """The seeding-adversarial "ladder": a staircase of near-optimal traps.

    Built for the adaptive-planner benchmark (docs/ADAPTIVE.md §5): a
    query at the world center asking for ``k0..k{m-1}`` forces the
    owner-driven exact search down a staircase of ``rungs`` trap groups
    whose costs decrease slowly, each triggering an expensive diameter
    bisection — unless a feasible upper bound from the appro counterpart
    prunes the staircase up front.

    Geometry (all deliberate, all load-bearing):

    - Each rung ``i`` sits at a golden-angle direction, distance
      ``radius + 0.01·i`` from the center — the ``+0.01·i`` jitter makes
      the *widest* (most expensive) rung enumerate first.
    - The rung's **bait** is the sole carrier of ``k0``, so every
      feasible set pays the bait's distance and owner enumeration walks
      exactly one bait per rung; members tilted toward the query are
      never tried as owners (their furthest member is the bait).
    - The other keywords live in two wedges ±1.40 rad off the inward
      direction (near side for ``k1..k{m-2}``, far side for
      ``k{m-1}``), ``choices`` candidates each, spread over an arm
      whose length shrinks linearly ``arm_start → arm_end`` across
      rungs — so rung costs strictly decrease and every rung improves
      the incumbent just enough to force the next bisection.
    - One candidate per wedge is pinned at ``0.4·arm`` so the diameter
      lower bound stays loose (the bisection cannot shortcut).
    - A final trivial rung (``arm_final``, one choice per keyword)
      holds the optimum, cheap to verify for seeded and unseeded runs
      alike.

    Deterministic in ``seed``.  Roughly ``(rungs+1)·(1 + (m-1)·choices)``
    objects.
    """
    if num_keywords < 3:
        raise ValueError("the ladder needs at least 3 keywords (bait + 2 wedges)")
    if rungs < 1 or choices < 1:
        raise ValueError("rungs and choices must be >= 1")
    rng = substream(seed, "%s/wedges" % name)
    records: List[Tuple[float, float, List[str]]] = []
    cx = cy = WORLD_SIZE / 2.0
    golden = math.pi * (3 - math.sqrt(5))

    def rung(index: int, arm: float, wedge_choices: int) -> None:
        phi = index * golden
        ring = radius + 0.01 * index
        bait_x = cx + ring * math.cos(phi)
        bait_y = cy + ring * math.sin(phi)
        records.append((bait_x, bait_y, ["k0"]))
        inward = phi + math.pi
        for keyword in range(1, num_keywords):
            base = inward - 1.40 if keyword < num_keywords - 1 else inward + 1.40
            for choice in range(wedge_choices):
                reach = 0.4 * arm if choice == 0 else rng.uniform(0.45, 0.9) * arm
                angle = base + rng.uniform(-0.25, 0.25)
                x = bait_x + reach * math.cos(angle)
                y = bait_y + reach * math.sin(angle)
                # Keep every member strictly inside C(q, ring) so the
                # bait stays the rung's distance owner.
                centered = math.hypot(x - cx, y - cy)
                if centered >= ring:
                    shrink = (ring - 0.5) / centered
                    x = cx + (x - cx) * shrink
                    y = cy + (y - cy) * shrink
                records.append((x, y, ["k%d" % keyword]))

    for index in range(rungs):
        blend = index / (rungs - 1) if rungs > 1 else 0.0
        rung(index, arm_start + (arm_end - arm_start) * blend, choices)
    rung(rungs, arm_final, 1)
    return Dataset.from_records(records, name=name)


def ladder_keywords(dataset: Dataset, num_keywords: int):
    """The ladder query's keyword-id set (``k0..k{m-1}``) for ``dataset``."""
    return frozenset(
        dataset.vocabulary.id_of("k%d" % keyword) for keyword in range(num_keywords)
    )


# -- the paper's three corpora ----------------------------------------------------

#: Published sizes of the paper's real datasets (objects).  The default
#: `scale` shrinks GN and Web to Python-friendly sizes while preserving
#: vocabulary skew and keyword density; pass scale=1.0 for paper scale.
HOTEL_OBJECTS = 20_790
GN_OBJECTS = 1_868_821
WEB_OBJECTS = 579_727


def hotel_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """The Hotel profile: small vocabulary, sparse keywords."""
    profile = GeneratorProfile(
        name="hotel",
        num_objects=max(100, int(HOTEL_OBJECTS * scale)),
        vocabulary_size=602,
        mean_keywords=3.9,
        zipf_exponent=0.9,
        cluster_fraction=0.6,
        cluster_count=50,
    )
    return generate_profile(profile, seed=seed)


def gn_like(scale: float = 0.05, seed: int = 0) -> Dataset:
    """The GN (GeoNames) profile; default scale 0.05 → ~93k objects."""
    profile = GeneratorProfile(
        name="gn",
        num_objects=max(1_000, int(GN_OBJECTS * scale)),
        vocabulary_size=20_000,
        mean_keywords=4.0,
        zipf_exponent=1.1,
        cluster_fraction=0.5,
        cluster_count=200,
    )
    return generate_profile(profile, seed=seed)


def web_like(scale: float = 0.05, seed: int = 0) -> Dataset:
    """The Web profile; many keywords per object (default ~29k objects)."""
    profile = GeneratorProfile(
        name="web",
        num_objects=max(1_000, int(WEB_OBJECTS * scale)),
        vocabulary_size=50_000,
        mean_keywords=32.0,
        zipf_exponent=1.0,
        cluster_fraction=0.4,
        cluster_count=100,
    )
    return generate_profile(profile, seed=seed)
