"""Zipf-distributed sampling over a finite vocabulary.

Real geo-textual corpora (hotel amenity words, geographic feature names,
web vocabularies) have strongly skewed keyword frequencies; the synthetic
datasets reproduce that skew with a Zipf law over keyword ranks, which is
what makes the paper's percentile-based query-keyword sampling meaningful
on generated data.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Samples ranks ``0..n-1`` with ``P(rank k) ∝ 1 / (k+1)^s``.

    Uses an inverse-CDF table, so sampling is ``O(log n)`` and the
    distribution is exact for the finite support (no rejection).
    """

    def __init__(self, n: int, exponent: float = 1.0):
        if n <= 0:
            raise ValueError("support size must be positive")
        if exponent < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / ((k + 1) ** exponent) for k in range(n)]
        self._cdf: List[float] = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self, rng: random.Random) -> int:
        """One rank drawn from the Zipf law."""
        u = rng.random() * self._total
        return bisect.bisect_left(self._cdf, u)

    def sample_distinct(self, rng: random.Random, count: int) -> List[int]:
        """``count`` distinct ranks (count capped at the support size)."""
        count = min(count, self.n)
        seen: set[int] = set()
        # Rejection on duplicates; the tail is long so this terminates
        # quickly except when count approaches n, where we fall back to a
        # full shuffle.
        attempts = 0
        while len(seen) < count and attempts < 50 * count:
            seen.add(self.sample(rng))
            attempts += 1
        if len(seen) < count:
            remaining = [k for k in range(self.n) if k not in seen]
            rng.shuffle(remaining)
            seen.update(remaining[: count - len(seen)])
        return sorted(seen)

    def probability(self, rank: int) -> float:
        """The exact probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise ValueError("rank out of range")
        return (1.0 / ((rank + 1) ** self.exponent)) / self._total

    def expected_frequencies(self, draws: int) -> Sequence[float]:
        """Expected counts per rank after ``draws`` samples."""
        return [draws * self.probability(k) for k in range(self.n)]
