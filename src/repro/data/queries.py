"""Query workload generation following the paper's recipe.

For a dataset ``O`` and a requested keyword count ``k`` the paper
generates a query by

- drawing ``q.λ`` uniformly at random from the MBR of the objects, and
- ranking all keywords by descending frequency and drawing ``k`` distinct
  keywords from a percentile band of that ranking (the paper uses the
  most frequent 40%: percentile range [0, 0.4]).

:class:`QueryWorkload` reproduces this and adds a guard the real
experiments need too: every generated query is checked coverable (a
keyword no object carries would make the query trivially infeasible).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple

from repro.errors import DatasetFormatError, InvalidParameterError
from repro.model.dataset import Dataset
from repro.model.query import Query
from repro.model.vocabulary import Vocabulary
from repro.utils.rng import substream

__all__ = ["QueryWorkload", "generate_queries", "load_query_file"]


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible stream of queries against one dataset."""

    dataset: Dataset
    num_keywords: int
    percentile_range: Tuple[float, float] = (0.0, 0.4)
    seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.percentile_range
        if not (0.0 <= lo < hi <= 1.0):
            raise InvalidParameterError(
                "percentile range must satisfy 0 ≤ lo < hi ≤ 1, got %r"
                % (self.percentile_range,)
            )
        if self.num_keywords < 1:
            raise InvalidParameterError("queries need at least one keyword")

    def _keyword_pool(self) -> List[int]:
        """Keyword ids in the requested frequency-percentile band."""
        ranked = self.dataset.keywords_by_frequency()
        lo, hi = self.percentile_range
        start = int(lo * len(ranked))
        stop = max(start + 1, int(hi * len(ranked)))
        pool = ranked[start:stop]
        if len(pool) < self.num_keywords:
            raise InvalidParameterError(
                "percentile band holds %d keywords; query needs %d"
                % (len(pool), self.num_keywords)
            )
        return pool

    def generate(self, count: int) -> List[Query]:
        """``count`` queries, deterministic in the workload seed."""
        rng = substream(self.seed, "queries/%s/%d" % (self.dataset.name, self.num_keywords))
        pool = self._keyword_pool()
        mbr = self.dataset.mbr()
        out: List[Query] = []
        for _ in range(count):
            out.append(self._one(rng, pool, mbr))
        return out

    def __iter__(self) -> Iterator[Query]:
        """An endless deterministic query stream."""
        rng = substream(self.seed, "queries/%s/%d" % (self.dataset.name, self.num_keywords))
        pool = self._keyword_pool()
        mbr = self.dataset.mbr()
        while True:
            yield self._one(rng, pool, mbr)

    def _one(self, rng: random.Random, pool: Sequence[int], mbr) -> Query:
        x = rng.uniform(mbr.min_x, mbr.max_x)
        y = rng.uniform(mbr.min_y, mbr.max_y)
        keywords = rng.sample(list(pool), self.num_keywords)
        return Query.create(x, y, keywords)


def generate_queries(
    dataset: Dataset,
    num_keywords: int,
    count: int,
    percentile_range: Tuple[float, float] = (0.0, 0.4),
    seed: int = 0,
) -> List[Query]:
    """One-shot convenience wrapper around :class:`QueryWorkload`."""
    workload = QueryWorkload(
        dataset=dataset,
        num_keywords=num_keywords,
        percentile_range=percentile_range,
        seed=seed,
    )
    return workload.generate(count)


def load_query_file(path: str | Path, vocabulary: Vocabulary) -> List[Query]:
    """Read a query batch from a text file (``coskq-query --batch``).

    Same shape as the dataset format: one query per line,
    ``x<TAB>y<TAB>word word ...``; blank lines and ``#`` comments are
    skipped.  Words resolve against ``vocabulary`` (unknown words raise
    the usual :class:`~repro.errors.UnknownKeywordError`).
    """
    queries: List[Query] = []
    with open(Path(path), "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise DatasetFormatError(
                    "query line %d: expected 3 tab-separated fields, got %d"
                    % (lineno, len(parts))
                )
            try:
                x = float(parts[0])
                y = float(parts[1])
            except ValueError as exc:
                raise DatasetFormatError(
                    "query line %d: bad coordinates: %s" % (lineno, exc)
                ) from exc
            words = [w for w in parts[2].split(" ") if w]
            if not words:
                raise DatasetFormatError(
                    "query line %d: query has no keywords" % lineno
                )
            queries.append(Query.from_words(x, y, words, vocabulary))
    if not queries:
        raise DatasetFormatError("query file %s holds no queries" % path)
    return queries
