"""User-facing command-line tools."""

from repro.tools.query_cli import main as query_main

__all__ = ["query_main"]
