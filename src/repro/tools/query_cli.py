"""The ``coskq-query`` command line: ad-hoc CoSKQ over a dataset file.

Usage::

    coskq-query data.tsv --at 500 500 --keywords museum shopping restaurant
    coskq-query data.tsv --at 500 500 --keywords spa gym \
        --algorithm maxsum-appro --cost dia
    coskq-query data.tsv --at 500 500 --keywords spa gym --top 3
    coskq-query data.tsv --at 500 500 --keywords spa gym \
        --fallback "maxsum-exact -> maxsum-appro -> nn-set" \
        --deadline-ms 200 --budget 100000
    coskq-query --demo --at 500 500 --keywords w0001 w0002   # demo dataset
    coskq-query data.tsv --batch queries.tsv --workers 4 --cache full

The dataset file uses the library's text format — one object per line,
``x<TAB>y<TAB>word word ...`` (see :meth:`repro.model.Dataset.load`).
``--batch`` files use the same shape per query
(:func:`repro.data.queries.load_query_file`); the batch runs on the
process-parallel engine (:mod:`repro.parallel`) with per-query failure
isolation — the exit code is 0 only when every query answered.

Exit codes (scriptable; also tabulated in ``docs/ROBUSTNESS.md``):

====  ==========================================================
code  meaning
====  ==========================================================
0     answered
1     library error outside the execution taxonomy (bad dataset,
      infeasible query, unknown keyword, I/O failure)
2     usage error (bad flag combination)
3     ``SearchAbortedError`` — a solver stopped mid-search
4     ``DeadlineExceededError`` — the wall-clock deadline expired
5     ``BudgetExceededError`` — the work budget ran out
6     ``InjectedFaultError`` — a chaos fault surfaced uncaught
7     ``ExecutionFailedError`` — every fallback stage failed
====  ==========================================================

Subclass checks run most-specific-first, so a deadline abort exits 4
even though it is also a ``SearchAbortedError``.  With the default
``always_answer`` policy the resilient path degrades instead of
failing; ``--hard-deadline`` makes the envelope a hard wall for every
stage, which is how the non-zero taxonomy exits become reachable.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algorithms.base import SearchContext
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.algorithms.topk import TopKCoSKQ
from repro.cost.functions import ALL_COSTS, cost_by_name
from repro.errors import (
    BudgetExceededError,
    CoSKQError,
    DeadlineExceededError,
    ExecutionError,
    ExecutionFailedError,
    InjectedFaultError,
    SearchAbortedError,
)
from repro.model.dataset import Dataset
from repro.model.query import Query
from repro.parallel.spec import CACHE_MODES

__all__ = ["main", "exit_code_for", "EXIT_CODES"]

#: The documented exit-code table (module docstring / docs/ROBUSTNESS.md).
EXIT_CODES = {
    "ok": 0,
    "error": 1,
    "usage": 2,
    SearchAbortedError.__name__: 3,
    DeadlineExceededError.__name__: 4,
    BudgetExceededError.__name__: 5,
    InjectedFaultError.__name__: 6,
    ExecutionFailedError.__name__: 7,
}


def exit_code_for(error: BaseException) -> int:
    """The documented exit code of an execution-taxonomy failure.

    Most-specific-first: the deadline/budget subclasses win over their
    ``SearchAbortedError`` base; anything outside the taxonomy is the
    generic failure exit.
    """
    if isinstance(error, DeadlineExceededError):
        return EXIT_CODES[DeadlineExceededError.__name__]
    if isinstance(error, BudgetExceededError):
        return EXIT_CODES[BudgetExceededError.__name__]
    if isinstance(error, SearchAbortedError):
        return EXIT_CODES[SearchAbortedError.__name__]
    if isinstance(error, InjectedFaultError):
        return EXIT_CODES[InjectedFaultError.__name__]
    if isinstance(error, ExecutionFailedError):
        return EXIT_CODES[ExecutionFailedError.__name__]
    return EXIT_CODES["error"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-query",
        description="Run a collective spatial keyword query over a dataset file.",
    )
    parser.add_argument("dataset", nargs="?", help="dataset file (text format)")
    parser.add_argument(
        "--demo",
        action="store_true",
        help="use a generated demo dataset instead of a file",
    )
    parser.add_argument(
        "--at",
        nargs=2,
        type=float,
        metavar=("X", "Y"),
        default=None,
        help="query location (required unless --batch)",
    )
    parser.add_argument(
        "--keywords",
        nargs="+",
        default=None,
        help="query keywords (words, not ids; required unless --batch)",
    )
    parser.add_argument(
        "--batch",
        default=None,
        metavar="FILE",
        help=(
            "run a whole query file (x<TAB>y<TAB>word word ...) through "
            "the parallel batch engine instead of one --at/--keywords query"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --batch (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache",
        default="none",
        choices=CACHE_MODES,
        help="memoization for --batch: index lookups, whole results, or both",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "query a sharded index with N STR shards through the "
            "scatter-gather engine (0 = single IR-tree); answers are "
            "bit-identical either way"
        ),
    )
    parser.add_argument(
        "--algorithm",
        default="maxsum-exact",
        choices=sorted(ALGORITHM_NAMES),
        help="solver to run (default: maxsum-exact)",
    )
    parser.add_argument(
        "--cost",
        default=None,
        choices=sorted(ALL_COSTS),
        help="override the solver's default cost function",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="K",
        help="report the K cheapest sets instead of one (monotone costs)",
    )
    parser.add_argument(
        "--fallback",
        default=None,
        metavar="CHAIN",
        help=(
            "run a resilient fallback chain instead of --algorithm, e.g. "
            "'maxsum-exact -> maxsum-appro -> nn-set' (also accepts commas)"
        ),
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock deadline for the whole fallback chain",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="per-attempt work budget (search-state expansions etc.)",
    )
    parser.add_argument(
        "--hard-deadline",
        action="store_true",
        help=(
            "make --deadline-ms/--budget a hard wall for every stage "
            "(disables the always-answer exemption of the last stage)"
        ),
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "plan the query with the feature-driven hardness planner: "
            "predicted-hard queries run the appro counterpart first and "
            "the exact solver seeded with its cost (answers unchanged)"
        ),
    )
    parser.add_argument(
        "--model",
        default=None,
        metavar="FILE",
        help="trained hardness model for --adaptive (coskq-adaptive train)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help=(
            "with --adaptive: print the extracted features, the planner "
            "decision and the seed bound before the answer"
        ),
    )
    return parser


def _print_result(result, dataset: Dataset, query: Query, rank: Optional[int]) -> None:
    prefix = "" if rank is None else "#%d " % rank
    print("%s%s: cost %.6g" % (prefix, result.algorithm, result.cost))
    for obj in result.objects:
        words = sorted(dataset.vocabulary.word_of(k) for k in obj.keywords)
        print(
            "  object %d at (%.6g, %.6g), distance %.6g: %s"
            % (
                obj.oid,
                obj.location.x,
                obj.location.y,
                query.location.distance_to(obj.location),
                " ".join(words),
            )
        )


def _print_explain(planner: dict) -> None:
    """The --explain block: features, decision, seed bound."""
    shape = (
        "hard (appro-seeded exact)" if planner.get("hard") else "easy (direct exact)"
    )
    print("plan: %s" % shape)
    print(
        "  hardness %.4f  solver %s  seeder %s"
        % (
            planner.get("hardness", float("nan")),
            planner.get("solver"),
            planner.get("seeder") or "-",
        )
    )
    seed_cost = planner.get("seed_cost")
    if seed_cost is not None:
        print(
            "  seed bound %.6g (feasible appro cost; prunes, never answers)"
            % seed_cost
        )
    features = planner.get("features") or {}
    print(
        "  features: %s"
        % "  ".join(
            "%s=%.6g" % (name, value) for name, value in sorted(features.items())
        )
    )


def _run_batch(args: argparse.Namespace, dataset: Dataset) -> int:
    """--batch mode: the whole file through the parallel engine."""
    from repro.data.queries import load_query_file
    from repro.parallel import (
        CacheSpec,
        ParallelBatchExecutor,
        SolverSpec,
        WorkerEnv,
    )

    queries = load_query_file(args.batch, dataset.vocabulary)
    model_json = None
    if args.model is not None:
        with open(args.model, "r", encoding="utf-8") as handle:
            model_json = handle.read()
    spec = SolverSpec(
        algorithm=args.algorithm,
        chain=args.fallback,
        cost=args.cost,
        deadline_ms=args.deadline_ms,
        work_budget=args.budget,
        always_answer=not args.hard_deadline,
        adaptive=args.adaptive,
        model_json=model_json,
    )
    env = WorkerEnv(
        dataset=dataset, cache=CacheSpec(mode=args.cache), shards=args.shards
    )
    with ParallelBatchExecutor(env, spec, workers=args.workers) as engine:
        report = engine.run(queries)
    print(report.summary())
    for index, result in enumerate(report.results):
        if result is not None:
            objects = " ".join(str(obj.oid) for obj in result.objects)
            print(
                "query #%d: cost %.6g, objects [%s]" % (index, result.cost, objects)
            )
    for failure in report.failures:
        print(str(failure), file=sys.stderr)
    if report.cache_stats is not None:
        stats = " ".join(
            "%s=%d" % (key, value)
            for key, value in sorted(report.cache_stats.items())
        )
        print("cache: %s" % stats)
    return 0 if report.ok() else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.demo == (args.dataset is not None):
        print("provide a dataset file or --demo (not both)", file=sys.stderr)
        return 2
    if args.shards < 0:
        print("--shards must be >= 0", file=sys.stderr)
        return 2
    if (args.model is not None or args.explain) and not args.adaptive:
        print("--model/--explain require --adaptive", file=sys.stderr)
        return 2
    if args.adaptive:
        if args.fallback is not None:
            print(
                "--adaptive plans its own chains; drop --fallback", file=sys.stderr
            )
            return 2
        if args.top is not None:
            print("--top cannot be combined with --adaptive", file=sys.stderr)
            return 2
        if args.explain and args.batch is not None:
            print("--explain is per-query; drop --batch", file=sys.stderr)
            return 2
    if args.batch is not None:
        if args.at is not None or args.keywords is not None:
            print("--batch replaces --at/--keywords", file=sys.stderr)
            return 2
        if args.top is not None:
            print("--top cannot be combined with --batch", file=sys.stderr)
            return 2
        if args.workers < 1:
            print("--workers must be >= 1", file=sys.stderr)
            return 2
    else:
        if args.at is None or args.keywords is None:
            print("--at and --keywords are required without --batch", file=sys.stderr)
            return 2
        if args.workers != 1 or args.cache != "none":
            print("--workers/--cache only apply to --batch runs", file=sys.stderr)
            return 2
    try:
        if args.demo:
            from repro.data.generators import hotel_like

            dataset = hotel_like(scale=0.1, seed=0)
        else:
            dataset = Dataset.load(args.dataset)
        if args.batch is not None:
            return _run_batch(args, dataset)
        if args.shards > 0:
            from repro.shard import ShardedIndexFactory

            context = SearchContext(
                dataset, index_cls=ShardedIndexFactory(args.shards)
            )
        else:
            context = SearchContext(dataset)
        x, y = args.at
        query = Query.from_words(x, y, args.keywords, dataset.vocabulary)
        cost = cost_by_name(args.cost) if args.cost else None
        if args.adaptive:
            from repro.adaptive import AdaptivePlanner
            from repro.adaptive.model import HardnessModel
            from repro.exec import ExecutionPolicy

            model = None
            if args.model is not None:
                with open(args.model, "r", encoding="utf-8") as handle:
                    model = HardnessModel.from_json(handle.read())
            policy = ExecutionPolicy(
                deadline_ms=args.deadline_ms,
                work_budget=args.budget,
                always_answer=not args.hard_deadline,
            )
            planner = AdaptivePlanner(
                context, algorithm=args.algorithm, cost=cost,
                model=model, policy=policy,
            )
            result = planner.solve(query)
            provenance = result.provenance
            if args.explain and provenance is not None and provenance.planner:
                _print_explain(provenance.planner)
            _print_result(result, dataset, query, None)
            if provenance is not None:
                print("  [%s]" % provenance.describe())
            return 0
        resilient = (
            args.fallback is not None
            or args.deadline_ms is not None
            or args.budget is not None
            or args.hard_deadline
        )
        if resilient and args.top is not None:
            print(
                "--top cannot be combined with --fallback/--deadline-ms/--budget",
                file=sys.stderr,
            )
            return 2
        if resilient:
            from repro.exec import (
                ExecutionPolicy,
                FallbackChain,
                ResilientExecutor,
            )

            spec = args.fallback if args.fallback is not None else args.algorithm
            chain = FallbackChain.parse(spec, context, cost=cost)
            policy = ExecutionPolicy(
                deadline_ms=args.deadline_ms,
                work_budget=args.budget,
                always_answer=not args.hard_deadline,
            )
            result = ResilientExecutor(chain, policy).solve(query)
            _print_result(result, dataset, query, None)
            provenance = result.provenance
            if provenance is not None:
                print("  [%s]" % provenance.describe())
            return 0
        if args.top is not None:
            topk = TopKCoSKQ(
                context,
                cost if cost is not None else cost_by_name("maxsum"),
                k=args.top,
            )
            for rank, result in enumerate(topk.solve_topk(query), start=1):
                _print_result(result, dataset, query, rank)
        else:
            if args.shards > 0:
                from repro.shard import ScatterGather

                algorithm = ScatterGather(context, args.algorithm, cost=cost)
            else:
                algorithm = make_algorithm(args.algorithm, context, cost=cost)
            result = algorithm.solve(query)
            _print_result(result, dataset, query, None)
            if args.shards > 0:
                print(
                    "  [shards: scanned %d of %d]"
                    % (
                        result.counters.get("shards_scanned", 0),
                        result.counters.get("shards_total", 0),
                    )
                )
        return 0
    except ExecutionError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return exit_code_for(exc)
    except CoSKQError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
