"""The ``coskq-query`` command line: ad-hoc CoSKQ over a dataset file.

Usage::

    coskq-query data.tsv --at 500 500 --keywords museum shopping restaurant
    coskq-query data.tsv --at 500 500 --keywords spa gym \
        --algorithm maxsum-appro --cost dia
    coskq-query data.tsv --at 500 500 --keywords spa gym --top 3
    coskq-query data.tsv --at 500 500 --keywords spa gym \
        --fallback "maxsum-exact -> maxsum-appro -> nn-set" \
        --deadline-ms 200 --budget 100000
    coskq-query --demo --keywords w0001 w0002   # generated demo dataset

The dataset file uses the library's text format — one object per line,
``x<TAB>y<TAB>word word ...`` (see :meth:`repro.model.Dataset.load`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algorithms.base import SearchContext
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.algorithms.topk import TopKCoSKQ
from repro.cost.functions import ALL_COSTS, cost_by_name
from repro.errors import CoSKQError
from repro.model.dataset import Dataset
from repro.model.query import Query

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-query",
        description="Run a collective spatial keyword query over a dataset file.",
    )
    parser.add_argument("dataset", nargs="?", help="dataset file (text format)")
    parser.add_argument(
        "--demo",
        action="store_true",
        help="use a generated demo dataset instead of a file",
    )
    parser.add_argument(
        "--at",
        nargs=2,
        type=float,
        metavar=("X", "Y"),
        required=True,
        help="query location",
    )
    parser.add_argument(
        "--keywords",
        nargs="+",
        required=True,
        help="query keywords (words, not ids)",
    )
    parser.add_argument(
        "--algorithm",
        default="maxsum-exact",
        choices=sorted(ALGORITHM_NAMES),
        help="solver to run (default: maxsum-exact)",
    )
    parser.add_argument(
        "--cost",
        default=None,
        choices=sorted(ALL_COSTS),
        help="override the solver's default cost function",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="K",
        help="report the K cheapest sets instead of one (monotone costs)",
    )
    parser.add_argument(
        "--fallback",
        default=None,
        metavar="CHAIN",
        help=(
            "run a resilient fallback chain instead of --algorithm, e.g. "
            "'maxsum-exact -> maxsum-appro -> nn-set' (also accepts commas)"
        ),
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock deadline for the whole fallback chain",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="per-attempt work budget (search-state expansions etc.)",
    )
    return parser


def _print_result(result, dataset: Dataset, query: Query, rank: Optional[int]) -> None:
    prefix = "" if rank is None else "#%d " % rank
    print("%s%s: cost %.6g" % (prefix, result.algorithm, result.cost))
    for obj in result.objects:
        words = sorted(dataset.vocabulary.word_of(k) for k in obj.keywords)
        print(
            "  object %d at (%.6g, %.6g), distance %.6g: %s"
            % (
                obj.oid,
                obj.location.x,
                obj.location.y,
                query.location.distance_to(obj.location),
                " ".join(words),
            )
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.demo == (args.dataset is not None):
        print("provide a dataset file or --demo (not both)", file=sys.stderr)
        return 2
    try:
        if args.demo:
            from repro.data.generators import hotel_like

            dataset = hotel_like(scale=0.1, seed=0)
        else:
            dataset = Dataset.load(args.dataset)
        context = SearchContext(dataset)
        x, y = args.at
        query = Query.from_words(x, y, args.keywords, dataset.vocabulary)
        cost = cost_by_name(args.cost) if args.cost else None
        resilient = (
            args.fallback is not None
            or args.deadline_ms is not None
            or args.budget is not None
        )
        if resilient and args.top is not None:
            print(
                "--top cannot be combined with --fallback/--deadline-ms/--budget",
                file=sys.stderr,
            )
            return 2
        if resilient:
            from repro.exec import (
                ExecutionPolicy,
                FallbackChain,
                ResilientExecutor,
            )

            spec = args.fallback if args.fallback is not None else args.algorithm
            chain = FallbackChain.parse(spec, context, cost=cost)
            policy = ExecutionPolicy(
                deadline_ms=args.deadline_ms, work_budget=args.budget
            )
            result = ResilientExecutor(chain, policy).solve(query)
            _print_result(result, dataset, query, None)
            provenance = result.provenance
            if provenance is not None:
                print("  [%s]" % provenance.describe())
            return 0
        if args.top is not None:
            topk = TopKCoSKQ(
                context,
                cost if cost is not None else cost_by_name("maxsum"),
                k=args.top,
            )
            for rank, result in enumerate(topk.solve_topk(query), start=1):
                _print_result(result, dataset, query, rank)
        else:
            algorithm = make_algorithm(args.algorithm, context, cost=cost)
            _print_result(algorithm.solve(query), dataset, query, None)
        return 0
    except CoSKQError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
