"""The macro-benchmark command line (``coskq-bench run`` / ``diff``).

Installed standalone as ``coskq-bench-macro`` and reachable through the
main ``coskq-bench`` entry point, which forwards its ``run`` / ``diff``
/ ``profiles`` subcommands here (the experiment ids of the paper-figure
CLI never collide with these words).

Exit codes follow the repo convention: 0 success / no regression,
1 regression detected by ``diff``, 2 usage or input error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.macro.diffmode import (
    DEFAULT_MIN_DELTA_MS,
    DEFAULT_MIN_DELTA_QPS,
    DEFAULT_REL_THRESHOLD,
    diff_summaries,
)
from repro.bench.macro.runner import run_profile
from repro.bench.macro.schema import (
    SchemaVersionMismatchError,
    SummarySchemaError,
    canonical_summary,
)
from repro.bench.macro.workloads import PROFILES
from repro.errors import CoSKQError

__all__ = ["main", "build_parser"]

MACRO_COMMANDS = ("run", "diff", "profiles")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-bench-macro",
        description="System-level CoSKQ macro benchmarks (docs/BENCHMARKS.md).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="execute a pinned profile and write one summary JSON"
    )
    run.add_argument(
        "--profile",
        default="smoke",
        choices=sorted(PROFILES),
        help="which pinned profile to run (default: smoke)",
    )
    run.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the summary JSON here (default: print to stdout)",
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="dataset cache directory (default: $COSKQ_BENCH_CACHE or "
        ".coskq_bench_cache)",
    )
    run.add_argument(
        "--canonical-out",
        metavar="PATH",
        default=None,
        help="additionally write the timing-free golden projection "
        "(regenerates tests/fixtures/bench_macro_smoke.golden.json)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )

    diff = subparsers.add_parser(
        "diff", help="compare two run summaries; exit 1 on regression"
    )
    diff.add_argument("baseline", help="baseline summary JSON")
    diff.add_argument("candidate", help="candidate summary JSON")
    diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REL_THRESHOLD,
        help="relative noise threshold (default: %(default)s)",
    )
    diff.add_argument(
        "--min-delta-ms",
        type=float,
        default=DEFAULT_MIN_DELTA_MS,
        help="absolute latency floor in ms (default: %(default)s)",
    )
    diff.add_argument(
        "--min-delta-qps",
        type=float,
        default=DEFAULT_MIN_DELTA_QPS,
        help="absolute throughput floor in q/s (default: %(default)s)",
    )

    subparsers.add_parser("profiles", help="list the pinned profiles")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    echo = None if args.quiet else (lambda line: print(line, file=sys.stderr))
    summary = run_profile(
        args.profile, cache_dir=args.cache_dir, out=args.out, echo=echo
    )
    if args.canonical_out is not None:
        Path(args.canonical_out).write_text(
            json.dumps(canonical_summary(summary), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.out is None:
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _load_summary(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise SummarySchemaError("cannot read summary %s: %s" % (path, exc)) from exc
    except json.JSONDecodeError as exc:
        raise SummarySchemaError("summary %s is not JSON: %s" % (path, exc)) from exc


def _cmd_diff(args: argparse.Namespace) -> int:
    report = diff_summaries(
        _load_summary(args.baseline),
        _load_summary(args.candidate),
        rel_threshold=args.threshold,
        min_delta_ms=args.min_delta_ms,
        min_delta_qps=args.min_delta_qps,
    )
    print(report.format())
    return report.exit_code


def _cmd_profiles() -> int:
    for name in sorted(PROFILES):
        profile = PROFILES[name]
        print(
            "%-8s %d datasets, %d workloads — %s"
            % (name, len(profile.datasets), len(profile.workloads), profile.description)
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "diff":
            return _cmd_diff(args)
        return _cmd_profiles()
    except (SummarySchemaError, SchemaVersionMismatchError, CoSKQError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
