"""Batch execution with per-query isolation.

A benchmark sweep or a bulk serving endpoint runs hundreds of queries;
before this layer, one poisoned query (a pathological instance, a chaos
fault, a solver bug) killed the whole batch with whatever exception
happened to escape.  :class:`BatchExecutor` isolates each query: the
answerable ones answer, the failures are captured as structured
:class:`QueryFailure` records, and the :class:`BatchReport` keeps the
positional alignment (``results[i]`` is the answer to ``queries[i]`` or
None) so downstream aggregation stays index-safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionFailedError
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["QueryFailure", "BatchReport", "BatchExecutor"]


@dataclass(frozen=True)
class QueryFailure:
    """One query's failure inside an otherwise surviving batch."""

    index: int
    query: Query
    error_type: str
    message: str
    #: Per-stage causes when the solver was a resilient executor whose
    #: whole chain died; empty for direct solver failures.
    stage_failures: Tuple[object, ...] = ()

    def __str__(self) -> str:
        return "query #%d: %s (%s)" % (self.index, self.error_type, self.message)


@dataclass
class BatchReport:
    """The structured outcome of one isolated batch run."""

    solver: str
    results: List[Optional[CoSKQResult]] = field(default_factory=list)
    failures: List[QueryFailure] = field(default_factory=list)
    #: Merged cache counters when the batch ran with memoization (the
    #: parallel engine fills this in); None for uncached runs.
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def answered(self) -> int:
        return sum(1 for r in self.results if r is not None)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def degraded(self) -> int:
        """Answers produced by a fallback stage, not the primary solver."""
        return sum(
            1
            for r in self.results
            if r is not None and getattr(r.provenance, "degraded", False)
        )

    def error_counts(self) -> Dict[str, int]:
        """Failure histogram by error type (for failure reports)."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.error_type] = counts.get(failure.error_type, 0) + 1
        return counts

    def summary(self) -> str:
        """One line: ``solver: 97/100 answered (3 degraded, 3 failed)``."""
        return "%s: %d/%d answered (%d degraded, %d failed)" % (
            self.solver,
            self.answered,
            self.total,
            self.degraded,
            self.failed,
        )

    def ok(self) -> bool:
        return not self.failures


class BatchExecutor:
    """Run a solver over a workload without letting one query kill it.

    ``solver`` is anything with ``solve(query) -> CoSKQResult`` — a bare
    algorithm or (typically) a
    :class:`~repro.exec.executor.ResilientExecutor`, in which case each
    query additionally gets the executor's retry/fallback treatment
    before it can count as failed.
    """

    def __init__(self, solver: object, validate: bool = True):
        self.solver = solver
        #: Whether to assert feasibility of every answer (a solver bug
        #: then registers as that query's failure, not a poisoned batch).
        self.validate = validate

    def run(self, queries: Sequence[Query]) -> BatchReport:
        report = BatchReport(
            solver=str(getattr(self.solver, "name", type(self.solver).__name__))
        )
        for index, query in enumerate(queries):
            try:
                result = self.solver.solve(query)
                if self.validate and not result.is_feasible_for(query):
                    raise AssertionError(
                        "%s returned an infeasible set for %r"
                        % (report.solver, query)
                    )
            except Exception as err:  # KeyboardInterrupt et al. still propagate
                report.results.append(None)
                stage_failures: Tuple[object, ...] = ()
                if isinstance(err, ExecutionFailedError):
                    stage_failures = err.failures
                report.failures.append(
                    QueryFailure(
                        index=index,
                        query=query,
                        error_type=type(err).__name__,
                        message=str(err),
                        stage_failures=stage_failures,
                    )
                )
            else:
                report.results.append(result)
        return report
