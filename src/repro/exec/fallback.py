"""Declarative degradation chains and their provenance records.

The paper pairs every exact CoSKQ search with a constant-ratio
approximation precisely because unbounded exact search is unacceptable
at query time.  :class:`FallbackChain` turns that pairing into a serving
primitive: an ordered list of solvers, best answer first, cheapest last
— e.g. ``maxsum-exact → maxsum-appro → nn-set``.  When a stage aborts
(budget, deadline, injected fault), the executor degrades to the next
stage and stamps the eventual :class:`~repro.model.result.CoSKQResult`
with an :class:`ExecutionProvenance`: which solver answered, why each
predecessor failed (:class:`StageFailure`), and the answering solver's
guaranteed approximation ratio — so a degraded answer is still an
*audited* answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.algorithms.base import SearchContext
from repro.algorithms.registry import make_algorithm
from repro.cost.base import CostFunction
from repro.errors import InvalidParameterError, SearchAbortedError

__all__ = ["StageFailure", "ExecutionProvenance", "FallbackChain"]


@dataclass(frozen=True)
class StageFailure:
    """Why one stage of a fallback chain did not answer."""

    stage: str
    error_type: str
    message: str
    attempts: int = 1
    counters: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_exception(
        cls, stage: str, error: BaseException, attempts: int = 1
    ) -> "StageFailure":
        counters: Dict[str, int] = {}
        if isinstance(error, SearchAbortedError):
            counters = dict(error.counters)
        return cls(
            stage=stage,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
            counters=counters,
        )

    def __str__(self) -> str:
        suffix = " after %d attempts" % self.attempts if self.attempts > 1 else ""
        return "%s: %s (%s)%s" % (self.stage, self.error_type, self.message, suffix)


@dataclass(frozen=True)
class ExecutionProvenance:
    """How an answer was produced: who answered, who failed, what holds.

    ``guaranteed_ratio`` is the answering solver's proven approximation
    ratio (1.0 for exact solvers, None when no published bound exists) —
    the quantitative meaning of "degraded but still useful".
    """

    answered_by: str
    degraded: bool
    guaranteed_ratio: Optional[float]
    failures: Tuple[StageFailure, ...] = ()
    attempts: int = 1
    elapsed_ms: Optional[float] = None
    #: Adaptive-planner decision record (the JSON-ready dict from
    #: ``repro.adaptive.planner.PlanDecision.as_dict``: extracted
    #: features, predicted hardness, chosen solver, seed cost), or None
    #: when no planner was involved.  Typed loosely so the exec layer
    #: stays independent of :mod:`repro.adaptive`.
    planner: Optional[Dict[str, object]] = None

    def describe(self) -> str:
        """One line for CLIs and logs."""
        if not self.degraded:
            return "answered by %s" % self.answered_by
        ratio = (
            "ratio<=%.4g" % self.guaranteed_ratio
            if self.guaranteed_ratio is not None
            else "no ratio bound"
        )
        return "degraded to %s (%s); failed: %s" % (
            self.answered_by,
            ratio,
            "; ".join(str(f) for f in self.failures),
        )


class FallbackChain:
    """An ordered, declarative list of solvers, strongest first.

    Stages are any objects with ``solve(query)`` and a ``name`` — the
    Euclidean :class:`~repro.algorithms.base.CoSKQAlgorithm` family, the
    network solvers, or test doubles.  Build from instances, or
    declaratively from registry names with :meth:`of` / :meth:`parse`.
    """

    def __init__(self, stages: Sequence[object]):
        stages = list(stages)
        if not stages:
            raise InvalidParameterError("a fallback chain needs at least one stage")
        for stage in stages:
            if not callable(getattr(stage, "solve", None)):
                raise InvalidParameterError(
                    "fallback stage %r has no solve() method" % (stage,)
                )
        self.stages: Tuple[object, ...] = tuple(stages)

    @classmethod
    def of(
        cls,
        context: SearchContext,
        *names: str,
        cost: Optional[CostFunction] = None,
    ) -> "FallbackChain":
        """A chain of registered algorithms over one shared context.

        ``cost`` (when given) is applied to every cost-generic stage, so
        the chain degrades *within the same objective* — e.g.
        ``FallbackChain.of(ctx, "maxsum-exact", "maxsum-appro", "nn-set")``.
        """
        return cls([make_algorithm(name, context, cost=cost) for name in names])

    @classmethod
    def parse(
        cls,
        spec: str,
        context: SearchContext,
        cost: Optional[CostFunction] = None,
    ) -> "FallbackChain":
        """A chain from a comma/arrow-separated spec string.

        Accepts ``"maxsum-exact,maxsum-appro,nn-set"`` (the CLI form) and
        the arrow form used in docs (``"maxsum-exact->nn-set"``).
        """
        names = [
            part.strip()
            for part in spec.replace("->", ",").split(",")
            if part.strip()
        ]
        if not names:
            raise InvalidParameterError("empty fallback chain spec %r" % (spec,))
        return cls.of(context, *names, cost=cost)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(
            str(getattr(stage, "name", type(stage).__name__))
            for stage in self.stages
        )

    def describe(self) -> str:
        return " -> ".join(self.names)

    def __iter__(self) -> Iterator[object]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return "FallbackChain(%s)" % self.describe()


def stage_ratio(stage: object) -> Optional[float]:
    """The guaranteed ratio a stage's answer carries (1.0 when exact)."""
    if getattr(stage, "exact", False):
        return 1.0
    ratio = getattr(stage, "ratio", None)
    return float(ratio) if ratio is not None else None
