"""The deadline/budget-aware resilient query executor.

:class:`ResilientExecutor` sits between callers and solvers: it runs a
:class:`~repro.exec.fallback.FallbackChain` under an
:class:`~repro.exec.policy.ExecutionPolicy`, attaching a fresh
:class:`~repro.exec.policy.Budget` to each solve attempt so exponential
searches abort promptly, retrying transient faults, degrading to the
next stage on typed aborts, and stamping the answer with
:class:`~repro.exec.fallback.ExecutionProvenance`.

Semantics, precisely:

- the **deadline** is global: one allowance shared by every stage and
  retry (a slow exact stage eats into the approximation's time);
- the **work budget** is per attempt: every stage/retry gets a fresh
  counter (work limits exist to bound one search, not to ration the
  chain);
- **transient** errors (``policy.retry_on``, e.g. injected chaos
  faults) are retried up to ``max_retries`` times on the same stage;
- **deterministic** aborts (budget, deadline) and other library errors
  degrade immediately — retrying a deterministic blow-up cannot help;
- :class:`~repro.errors.InfeasibleQueryError` propagates untouched: no
  amount of fallback covers a keyword no object carries;
- when every stage fails, the executor raises one
  :class:`~repro.errors.ExecutionFailedError` aggregating the per-stage
  causes — callers never see a raw stage exception, let alone a bare
  ``RuntimeError``.

The executor duck-types the solver interface (``solve(query)`` plus a
``name``), so it can be dropped anywhere an algorithm is expected — the
benchmark runner times executors exactly like bare solvers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import (
    CoSKQError,
    DeadlineExceededError,
    ExecutionFailedError,
    InfeasibleQueryError,
    SearchAbortedError,
)
from repro.exec.clock import Clock, MonotonicClock
from repro.exec.fallback import (
    ExecutionProvenance,
    FallbackChain,
    StageFailure,
    stage_ratio,
)
from repro.exec.policy import Budget, ExecutionPolicy
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["ResilientExecutor"]


class ResilientExecutor:
    """Run a fallback chain of solvers inside an execution policy."""

    def __init__(
        self,
        chain: FallbackChain,
        policy: Optional[ExecutionPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        self.chain = chain
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        #: Solver-compatible identity for reports and benchmarks.
        self.name = "exec[%s]" % "|".join(chain.names)

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        """The first stage's answer, degraded along the chain as needed.

        ``initial_upper_bound`` (a feasible cost for this query, e.g. an
        approximation's answer) is forwarded to every stage that runs —
        exact stages prune with it, approximate ones ignore it.  When
        ``None`` (the default) stages are called with the legacy
        single-argument form, so duck-typed stages that never learned
        the keyword keep working.

        Returns a :class:`CoSKQResult` stamped with
        :class:`ExecutionProvenance`; raises
        :class:`~repro.errors.ExecutionFailedError` when the whole chain
        fails and :class:`~repro.errors.InfeasibleQueryError` when the
        query is uncoverable.
        """
        policy = self.policy
        started = self.clock.now()
        deadline_at = (
            started + policy.deadline_ms / 1000.0
            if policy.deadline_ms is not None
            else None
        )
        failures: List[StageFailure] = []
        last_index = len(self.chain) - 1
        for index, stage in enumerate(self.chain):
            exempt = policy.always_answer and index == last_index
            attempts = 0
            while True:
                attempts += 1
                outcome = self._attempt(
                    stage, query, started, deadline_at, exempt, initial_upper_bound
                )
                if isinstance(outcome, CoSKQResult):
                    return outcome.with_provenance(
                        ExecutionProvenance(
                            answered_by=str(getattr(stage, "name", type(stage).__name__)),
                            degraded=bool(failures),
                            guaranteed_ratio=stage_ratio(stage),
                            failures=tuple(failures),
                            attempts=attempts,
                            elapsed_ms=(self.clock.now() - started) * 1000.0,
                        )
                    )
                if policy.is_transient(outcome) and attempts <= policy.max_retries:
                    continue  # same stage, fresh budget
                failures.append(
                    StageFailure.from_exception(
                        str(getattr(stage, "name", type(stage).__name__)),
                        outcome,
                        attempts=attempts,
                    )
                )
                break
        raise ExecutionFailedError(failures)

    # -- one solve attempt -----------------------------------------------------

    def _attempt(
        self,
        stage: object,
        query: Query,
        started: float,
        deadline_at: Optional[float],
        exempt: bool = False,
        initial_upper_bound: Optional[float] = None,
    ):
        """One budgeted solve; returns the result or the failure.

        ``exempt`` (the ``always_answer`` last stage) lifts both the
        deadline and the work budget: the last resort exists to answer,
        and it is cheap by construction.  Returning (not raising) the
        exception keeps the retry/degrade decision in one place in
        :meth:`solve`.
        """
        if exempt:
            budget = Budget(
                clock=self.clock,
                started=started,
                checkpoint_interval=self.policy.checkpoint_interval,
            )
        else:
            budget = self.policy.budget(self.clock, started, deadline_at)
        try:
            # A stage whose deadline already passed must not even start:
            # its setup work (index walks, N(q)) is outside tick coverage.
            budget.checkpoint()
        except DeadlineExceededError as err:
            return err
        had_budget_attr = hasattr(stage, "budget")
        previous = getattr(stage, "budget", None)
        if had_budget_attr:
            stage.budget = budget
        try:
            if initial_upper_bound is None:
                result = stage.solve(query)
            else:
                result = stage.solve(query, initial_upper_bound=initial_upper_bound)
            if not isinstance(result, CoSKQResult):
                raise TypeError(
                    "stage %r returned %r, not a CoSKQResult"
                    % (getattr(stage, "name", stage), type(result).__name__)
                )
            return result
        except InfeasibleQueryError:
            raise  # semantic, not operational: fallback cannot fix coverage
        except SearchAbortedError as err:
            return err
        except CoSKQError as err:
            return err
        finally:
            if had_budget_attr:
                stage.budget = previous

    def __repr__(self) -> str:
        return "ResilientExecutor(%s, policy=%r)" % (
            self.chain.describe(),
            self.policy,
        )
